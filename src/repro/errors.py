"""Exception hierarchy for the PowerChief reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "ClusterError",
    "FrequencyError",
    "PowerBudgetExceeded",
    "NoCoreAvailable",
    "ServiceError",
    "StageError",
    "InstanceStateError",
    "ConfigurationError",
    "ExperimentError",
    "ProtocolError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled or cancelled incorrectly.

    Typical causes are scheduling an event in the simulated past or
    cancelling an event that has already fired.
    """


class ClusterError(ReproError):
    """Base class for errors in the CMP cluster substrate."""


class FrequencyError(ClusterError):
    """Raised when a frequency is outside the DVFS ladder of the machine."""


class PowerBudgetExceeded(ClusterError):
    """Raised when an action would push total draw above the power budget."""

    def __init__(self, requested: float, available: float) -> None:
        super().__init__(
            f"requested {requested:.3f} W but only {available:.3f} W "
            f"of the budget is available"
        )
        self.requested = requested
        self.available = available


class NoCoreAvailable(ClusterError):
    """Raised when an instance launch cannot find a free physical core."""


class ServiceError(ReproError):
    """Base class for errors in the multi-stage service substrate."""


class StageError(ServiceError):
    """Raised for invalid stage operations (e.g. removing the last instance)."""


class InstanceStateError(ServiceError):
    """Raised when a service instance is driven through an illegal transition."""


class ConfigurationError(ReproError):
    """Raised when an experiment or controller configuration is invalid."""


class ExperimentError(ReproError):
    """Raised when an experiment cannot be run or produced no usable data."""


class ProtocolError(ReproError):
    """Raised when a ``reprod`` control-socket message is malformed."""


class ServeError(ReproError):
    """Raised when a ``reprod`` daemon command cannot be honoured."""
