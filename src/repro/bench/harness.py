"""The microbenchmark harness: time the pinned cells, gate regressions.

One measurement runs one :class:`~repro.bench.scenarios.BenchScenario`
through the ordinary :class:`~repro.scenario.builder.StackBuilder`
lifecycle — the benchmark exercises exactly the code a campaign cell
does — and reports four throughput views of the same run:

* ``wall_s`` — wall-clock seconds for the whole cell (build to collect);
* ``sim_seconds_per_wall_s`` — simulated seconds advanced per wall
  second ("how much faster than real time the simulator runs");
* ``events_per_wall_s`` — simulator events fired per wall second (the
  per-event overhead view);
* ``queries_per_wall_s`` — completed queries per wall second (the
  campaign-throughput view).

With ``repeats > 1`` the fastest repetition wins: scheduler noise only
ever slows a run down, so the minimum is the best estimate of the code's
true cost.  Repetitions are interleaved across cells (round-robin, not
cell-by-cell) so minutes-scale load drift on the host biases every cell
equally instead of systematically penalising whichever cell ran last —
this matters when two cells are compared against each other, as the
supervised-headline overhead gate does.  Event and query counts are
asserted identical across repetitions — a discrepancy means
nondeterminism, which is a bug worth crashing on.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.errors import ConfigurationError, ReproError
from repro.bench.scenarios import (
    HEADLINE_SCENARIO,
    SERVE_TICK_QUANTUM_S,
    BenchScenario,
    bench_scenarios,
)
from repro.scenario.builder import StackBuilder

__all__ = [
    "BENCH_FORMAT",
    "BENCH_VERSION",
    "ScenarioMeasurement",
    "BenchReport",
    "Regression",
    "run_bench",
    "compare_reports",
    "load_report",
    "trajectory_from_prior",
]

#: Artifact format marker; consumers key on this before parsing.
BENCH_FORMAT = "repro-bench"

#: Bumped when the artifact's layout changes; the ``v10`` in
#: ``BENCH_v10.json``.
BENCH_VERSION = 10

#: Versions :meth:`BenchReport.from_dict` can still parse.  v6 artifacts
#: lack the ``trajectory`` section, v7 artifacts predate the
#: supervised-headline cell and v9 artifacts predate the serve-headline
#: cell, but the cells they do carry read identically, so committed
#: baselines keep gating.
COMPATIBLE_VERSIONS = frozenset({6, 7, 9, 10})


@dataclass(frozen=True)
class ScenarioMeasurement:
    """The timing of one benchmark cell (fastest of ``repeats`` runs)."""

    name: str
    spec_digest: str
    repeats: int
    wall_s: float
    simulated_s: float
    events: int
    queries_completed: int

    @property
    def sim_seconds_per_wall_s(self) -> float:
        return self.simulated_s / self.wall_s

    @property
    def events_per_wall_s(self) -> float:
        return self.events / self.wall_s

    @property
    def queries_per_wall_s(self) -> float:
        return self.queries_completed / self.wall_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "spec_digest": self.spec_digest,
            "repeats": self.repeats,
            "wall_s": self.wall_s,
            "simulated_s": self.simulated_s,
            "events": self.events,
            "queries_completed": self.queries_completed,
            "sim_seconds_per_wall_s": self.sim_seconds_per_wall_s,
            "events_per_wall_s": self.events_per_wall_s,
            "queries_per_wall_s": self.queries_per_wall_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioMeasurement":
        return cls(
            name=data["name"],
            spec_digest=data["spec_digest"],
            repeats=data["repeats"],
            wall_s=data["wall_s"],
            simulated_s=data["simulated_s"],
            events=data["events"],
            queries_completed=data["queries_completed"],
        )


@dataclass(frozen=True)
class BenchReport:
    """One full harness run: every measured cell, plus the run's mode."""

    quick: bool
    measurements: tuple[ScenarioMeasurement, ...]

    def measurement(self, name: str) -> ScenarioMeasurement:
        for entry in self.measurements:
            if entry.name == name:
                return entry
        known = ", ".join(entry.name for entry in self.measurements)
        raise ConfigurationError(
            f"report has no scenario {name!r} (has: {known})"
        )

    def has(self, name: str) -> bool:
        return any(entry.name == name for entry in self.measurements)

    def to_dict(
        self,
        baseline: Optional["BenchReport"] = None,
        trajectory: Optional[Sequence[dict]] = None,
    ) -> dict:
        """The artifact payload; ``baseline`` embeds the pre-PR numbers.

        With a baseline, the payload also carries per-cell wall-clock
        speedups and the headline-cell speedup.  ``trajectory`` (built by
        :func:`trajectory_from_prior`) chains the lineage further back:
        each entry summarises one earlier artifact's cells, so a single
        ``BENCH_v7.json`` shows how the pinned cells moved across every
        release that carried the chain forward.
        """
        payload: dict = {
            "format": BENCH_FORMAT,
            "version": BENCH_VERSION,
            "quick": self.quick,
            "scenarios": {m.name: m.to_dict() for m in self.measurements},
        }
        if trajectory is not None:
            payload["trajectory"] = [dict(entry) for entry in trajectory]
        if baseline is not None:
            speedups = {}
            for entry in self.measurements:
                if not baseline.has(entry.name):
                    continue
                before = baseline.measurement(entry.name)
                speedups[entry.name] = {
                    "wall_clock": before.wall_s / entry.wall_s,
                    "events_per_wall_s": (
                        entry.events_per_wall_s / before.events_per_wall_s
                    ),
                }
            payload["pre_pr_baseline"] = {
                "quick": baseline.quick,
                "scenarios": {
                    m.name: m.to_dict() for m in baseline.measurements
                },
            }
            payload["speedup_vs_pre_pr"] = speedups
            if HEADLINE_SCENARIO in speedups:
                payload["headline_speedup"] = speedups[HEADLINE_SCENARIO][
                    "wall_clock"
                ]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        if data.get("format") != BENCH_FORMAT:
            raise ConfigurationError(
                f"not a {BENCH_FORMAT} artifact: format="
                f"{data.get('format')!r}"
            )
        if data.get("version") not in COMPATIBLE_VERSIONS:
            supported = ", ".join(str(v) for v in sorted(COMPATIBLE_VERSIONS))
            raise ConfigurationError(
                f"unsupported bench artifact version {data.get('version')!r} "
                f"(this build speaks {supported})"
            )
        return cls(
            quick=bool(data["quick"]),
            measurements=tuple(
                ScenarioMeasurement.from_dict(entry)
                for entry in data["scenarios"].values()
            ),
        )

    def write(
        self,
        path: Union[str, Path],
        baseline: Optional["BenchReport"] = None,
        trajectory: Optional[Sequence[dict]] = None,
    ) -> Path:
        target = Path(path)
        target.write_text(
            json.dumps(self.to_dict(baseline, trajectory), indent=2, sort_keys=True)
            + "\n"
        )
        return target


def load_report(path: Union[str, Path]) -> BenchReport:
    """Read a ``BENCH_*.json`` artifact back into a report."""
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ReproError(f"cannot read bench report {path}: {error}") from error
    try:
        return BenchReport.from_dict(json.loads(text))
    except (ValueError, KeyError, TypeError) as error:
        raise ConfigurationError(
            f"malformed bench report {path}: {error!r}"
        ) from error


def trajectory_from_prior(prior: dict) -> list[dict]:
    """Trajectory entries for the next artifact, from a prior one's payload.

    The prior artifact's own ``trajectory`` rides along verbatim (so the
    chain never truncates) and the prior's cells join as one new entry.
    ``prior`` is the raw JSON payload — any compatible version works,
    including v6 artifacts that predate the trajectory section.
    """
    if prior.get("format") != BENCH_FORMAT:
        raise ConfigurationError(
            f"not a {BENCH_FORMAT} artifact: format={prior.get('format')!r}"
        )
    entries = [dict(entry) for entry in prior.get("trajectory", ())]
    entries.append(
        {
            "version": prior.get("version"),
            "quick": prior.get("quick"),
            "cells": {
                name: {
                    "wall_s": cell.get("wall_s"),
                    "events_per_wall_s": cell.get("events_per_wall_s"),
                    "queries_per_wall_s": cell.get("queries_per_wall_s"),
                }
                for name, cell in prior.get("scenarios", {}).items()
            },
        }
    )
    return entries


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _measure_once(scenario: BenchScenario, quick: bool) -> tuple[float, float, int, int]:
    spec = scenario.quick_spec if quick else scenario.spec
    started = time.perf_counter()
    builder = StackBuilder(spec)
    if scenario.driver == "serve":
        # The reprod --turbo loop: arm the stack, then advance it in
        # fixed tick quanta until the drain window closes.
        builder.build().arm().start()
        while not builder.finished:
            builder.tick(builder.sim.now + SERVE_TICK_QUANTUM_S)
        result = builder.collect()
    else:
        result = builder.execute()
    wall = time.perf_counter() - started
    sim = builder.sim
    assert sim is not None
    return wall, spec.duration_s + spec.drain_s, sim.events_processed, result.queries_completed


def run_bench(
    quick: bool = False,
    repeats: int = 1,
    names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Measure the pinned cells; the fastest of ``repeats`` runs wins."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    chosen = bench_scenarios()
    if names is not None:
        wanted = set(names)
        known = {scenario.name for scenario in chosen}
        unknown = sorted(wanted - known)
        if unknown:
            raise ConfigurationError(
                f"unknown bench scenarios: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        chosen = tuple(s for s in chosen if s.name in wanted)
    best_wall: dict[str, float] = {}
    counts: dict[str, tuple[int, int]] = {}
    simulated: dict[str, float] = {}
    for repeat in range(repeats):
        for scenario in chosen:
            if progress is not None:
                suffix = f" (repeat {repeat + 1}/{repeats})" if repeats > 1 else ""
                progress(f"running {scenario.name}{suffix} ...")
            wall, sim_s, events, queries = _measure_once(scenario, quick)
            simulated[scenario.name] = sim_s
            seen = counts.setdefault(scenario.name, (events, queries))
            if seen != (events, queries):
                raise ReproError(
                    f"bench cell {scenario.name} is nondeterministic: "
                    f"repeat {repeat + 1} fired {events} events / "
                    f"{queries} queries, first run {seen[0]} / {seen[1]}"
                )
            best_wall[scenario.name] = min(
                best_wall.get(scenario.name, wall), wall
            )
    measurements = []
    for scenario in chosen:
        spec = scenario.quick_spec if quick else scenario.spec
        measurements.append(
            ScenarioMeasurement(
                name=scenario.name,
                spec_digest=spec.digest(),
                repeats=repeats,
                wall_s=best_wall[scenario.name],
                simulated_s=simulated[scenario.name],
                events=counts[scenario.name][0],
                queries_completed=counts[scenario.name][1],
            )
        )
        if progress is not None:
            entry = measurements[-1]
            progress(
                f"{scenario.name}: {entry.wall_s:.2f}s wall, "
                f"{entry.sim_seconds_per_wall_s:.0f} sim-s/s, "
                f"{entry.events_per_wall_s:.0f} events/s, "
                f"{entry.queries_per_wall_s:.0f} queries/s"
            )
    return BenchReport(quick=quick, measurements=tuple(measurements))


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One cell that got slower than the gate allows."""

    name: str
    baseline_wall_s: float
    current_wall_s: float
    threshold: float

    @property
    def slowdown(self) -> float:
        return self.current_wall_s / self.baseline_wall_s

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.current_wall_s:.2f}s vs baseline "
            f"{self.baseline_wall_s:.2f}s ({self.slowdown:.2f}x, gate "
            f"allows {1.0 + self.threshold:.2f}x)"
        )


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = 0.15,
) -> list[Regression]:
    """Cells of ``current`` that are >``threshold`` slower than baseline.

    Comparing a quick run against a full baseline (or vice versa) is an
    error, not a pass: the durations differ, so every number would.
    """
    if threshold <= 0.0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    if current.quick != baseline.quick:
        raise ConfigurationError(
            f"mode mismatch: current run quick={current.quick} but "
            f"baseline quick={baseline.quick}; gate runs must match the "
            f"baseline's mode"
        )
    regressions = []
    for entry in current.measurements:
        if not baseline.has(entry.name):
            continue
        before = baseline.measurement(entry.name)
        if entry.wall_s > before.wall_s * (1.0 + threshold):
            regressions.append(
                Regression(
                    name=entry.name,
                    baseline_wall_s=before.wall_s,
                    current_wall_s=entry.wall_s,
                    threshold=threshold,
                )
            )
    return regressions
