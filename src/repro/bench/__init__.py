"""The performance-measurement layer: microbenchmarks and speed gates.

ROADMAP's first open item: the simulator had never been profiled or
speed-gated — "as fast as the hardware allows" was unmeasured.  This
package is the instrument: a set of pinned benchmark scenarios
(:mod:`repro.bench.scenarios`), a harness that times them and computes
throughput metrics (:mod:`repro.bench.harness`), and a regression gate
that compares a fresh run against a committed baseline
(:func:`repro.bench.harness.compare_reports`).

``repro bench`` emits the canonical ``BENCH_v7.json`` artifact (whose
``trajectory`` section chains prior artifacts' cells forward); CI runs
``repro bench --quick --check benchmarks/micro/baseline_quick.json`` and
fails on a >15% wall-clock regression.  See the "Performance" section of
``docs/architecture.md`` for the artifact schema and how to read a gate
failure.
"""

from repro.bench.harness import (
    BENCH_FORMAT,
    BENCH_VERSION,
    BenchReport,
    ScenarioMeasurement,
    compare_reports,
    load_report,
    run_bench,
    trajectory_from_prior,
)
from repro.bench.scenarios import BenchScenario, bench_scenarios

__all__ = [
    "BENCH_FORMAT",
    "BENCH_VERSION",
    "BenchReport",
    "BenchScenario",
    "ScenarioMeasurement",
    "bench_scenarios",
    "compare_reports",
    "load_report",
    "run_bench",
    "trajectory_from_prior",
]
