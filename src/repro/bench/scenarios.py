"""The pinned benchmark scenarios.

Three cells, chosen to bound every campaign the parallel engine fans
out:

* ``headline-large`` — the stress cell: 64 service instances (22/21/21
  across Sirius's three stages) on a 64-core machine with an effectively
  unlimited budget, driven at 40 qps for 2500 simulated seconds — about
  10^5 completed queries.  This is the cell the >=3x speedup claim is
  measured on.
* ``supervised-headline`` — the same cell with the guard supervision
  stack armed (monitors, ladder, clamping actuator) and nothing going
  wrong: the measured distance between the two cells *is* the guard's
  overhead, and the gate holds it under a few percent of wall.
* ``serve-headline`` — the headline cell advanced through the serve-mode
  incremental lifecycle (repeated ``StackBuilder.tick`` quanta, the loop
  the ``reprod`` daemon runs in ``--turbo``) instead of one one-shot
  ``run``: the measured distance between this and ``headline-large`` is
  the tick-loop overhead, and the gate holds it under 5% of wall.
* ``table2-standard`` — the paper's own Table-2 deployment (one instance
  per stage, 16 cores, the 13.56 W budget) under high load: what one
  ordinary campaign cell costs.
* ``websearch-qos`` — a Table-3 QoS-mode run over the scatter-gather
  Web-Search deployment: exercises the conserve controller, the
  per-shard fan-out serving path and the QoS sampling loop.

Every scenario is a frozen :class:`~repro.scenario.spec.ScenarioSpec`
value, so the benchmark's identity is content-addressed exactly like a
campaign cell's; ``--quick`` only scales the duration, never the shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scenario.spec import ScenarioSpec, StageAllocation

__all__ = [
    "BenchScenario",
    "bench_scenarios",
    "HEADLINE_SCENARIO",
    "SUPERVISED_SCENARIO",
    "SERVE_SCENARIO",
    "SERVE_TICK_QUANTUM_S",
]

#: The cell the headline speedup number is measured on.
HEADLINE_SCENARIO = "headline-large"

#: The headline cell with supervision armed; headline vs this is the
#: guard's wall-clock overhead.
SUPERVISED_SCENARIO = "supervised-headline"

#: The headline cell driven through the incremental tick loop; headline
#: vs this is the serve-mode (run-loop inversion) overhead.
SERVE_SCENARIO = "serve-headline"

#: Simulated seconds per tick in the serve cell — the daemon's default
#: ``--turbo`` quantum, so the cell measures the loop CI actually runs.
SERVE_TICK_QUANTUM_S = 10.0


@dataclass(frozen=True)
class BenchScenario:
    """One pinned benchmark cell: a name plus its full/quick specs.

    ``driver`` selects how the harness advances the stack: ``"batch"``
    walks :meth:`StackBuilder.execute` in one shot; ``"serve"`` arms the
    stack and advances it in :data:`SERVE_TICK_QUANTUM_S` tick quanta,
    the way the ``reprod`` daemon does in ``--turbo`` mode.
    """

    name: str
    description: str
    spec: ScenarioSpec
    quick_spec: ScenarioSpec
    driver: str = "batch"


def _headline_large(duration_s: float, supervised: bool = False) -> ScenarioSpec:
    from repro.guard import GuardConfig

    return ScenarioSpec.latency(
        "sirius",
        "powerchief",
        ("constant", 40.0),
        duration_s,
        seed=3,
        budget_watts=1000.0,
        allocation={
            "ASR": StageAllocation(count=22, level=1),
            "IMM": StageAllocation(count=21, level=1),
            "QA": StageAllocation(count=21, level=1),
        },
        n_cores=64,
        guard=GuardConfig() if supervised else None,
    )


def _table2_standard(duration_s: float) -> ScenarioSpec:
    return ScenarioSpec.latency(
        "sirius",
        "powerchief",
        ("constant", 1.95),
        duration_s,
        seed=3,
    )


def _websearch_qos(duration_s: float) -> ScenarioSpec:
    return ScenarioSpec.qos("websearch", "powerchief", 8.0, duration_s, seed=3)


def bench_scenarios() -> tuple[BenchScenario, ...]:
    """The pinned benchmark cells, in reporting order."""
    return (
        BenchScenario(
            name=HEADLINE_SCENARIO,
            description=(
                "64 instances / 64 cores, 40 qps x 2500 s (~1e5 queries): "
                "the hot-path stress cell"
            ),
            spec=_headline_large(2500.0),
            quick_spec=_headline_large(150.0),
        ),
        BenchScenario(
            name=SUPERVISED_SCENARIO,
            description=(
                "the headline cell with the guard supervision stack armed "
                "and nothing going wrong: pure supervision overhead"
            ),
            spec=_headline_large(2500.0, supervised=True),
            quick_spec=_headline_large(150.0, supervised=True),
        ),
        BenchScenario(
            name=SERVE_SCENARIO,
            description=(
                "the headline cell advanced in 10 s tick quanta (the "
                "reprod --turbo loop) instead of one one-shot run: pure "
                "incremental-lifecycle overhead"
            ),
            spec=_headline_large(2500.0),
            quick_spec=_headline_large(150.0),
            driver="serve",
        ),
        BenchScenario(
            name="table2-standard",
            description=(
                "Table-2 deployment (one instance per stage, 16 cores, "
                "13.56 W) at high load: one ordinary campaign cell"
            ),
            spec=_table2_standard(600.0),
            quick_spec=_table2_standard(150.0),
        ),
        BenchScenario(
            name="websearch-qos",
            description=(
                "Table-3 Web-Search QoS run (scatter-gather leaves, "
                "conserve controller) at 8 qps"
            ),
            spec=_websearch_qos(400.0),
            quick_spec=_websearch_qos(120.0),
        ),
    )


def scenario_by_name(name: str) -> BenchScenario:
    """Look up one pinned scenario; raises on an unknown name."""
    for scenario in bench_scenarios():
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in bench_scenarios())
    raise ConfigurationError(
        f"unknown bench scenario {name!r} (known: {known})"
    )
