"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``figures`` — regenerate a paper figure/table (or ``all``) and print
  its ASCII rendering.
* ``latency`` — one latency-mitigation run (Table-2 scenario) with a
  chosen application, policy and load level.
* ``qos`` — one power-conservation run (Table-3 scenario) with a chosen
  deployment and policy.
* ``campaign`` — the whole evaluation; ``--workers N`` fans the
  artefacts across processes and ``--cache-dir`` memoizes finished cells
  so re-runs only recompute what changed.
* ``headline`` — the abstract's four claims, measured through the
  parallel cell engine (same ``--workers`` / ``--cache-dir`` knobs).
* ``trace`` — one fully observed run: writes the query trace (JSONL +
  Chrome trace-event JSON for Perfetto), a Prometheus-style metrics
  dump, the controller decision audit log and the accounting-plane
  artifacts (latency attribution, SLO burn, energy split; with
  ``--stream`` also live JSONL snapshots) to a directory.
* ``explain`` — read a trace directory's artifacts back and print the
  postmortem: why was the latency high, where did the power go.
* ``chaos`` — one latency run under a fault plan (built-in name or a
  plan JSON file), with the resilience stack armed; prints the goodput
  report and the P99/QPS/power deltas against the fault-free baseline.
  ``--fail-on-goodput-delta PCT`` turns the goodput drop into a gate
  (exit 1 when the faulty run completes more than PCT percent fewer of
  its admitted queries than the baseline).
* ``guard`` — a supervised chaos run: the controller is wrapped in the
  :mod:`repro.guard` supervision stack (invariant monitors, degradation
  ladder, safe mode) with an SLO tracker armed, and the goodput report
  grows the guard section (violations, ladder transitions, time in each
  mode).  ``--json`` archives the report with the guard summary for CI
  assertions.
* ``run`` — execute one scenario spec file (``--scenario spec.json``)
  through the staged stack builder: latency, QoS, sharded and
  chaos-armed runs all drive off the same declarative JSON, with an
  optional content-addressed cache keyed on the scenario digest.
* ``scenario`` — spec tooling: ``validate`` checks spec files and prints
  their digests; ``dump`` prints a spec's canonical JSON form.
* ``lint`` — the domain-aware static-analysis pass (:mod:`repro.lint`)
  over source trees; exits 0 when clean, 1 on findings, 2 on a crash in
  the tool itself.
* ``bench`` — the microbenchmark harness (:mod:`repro.bench`): times the
  pinned cells, emits the canonical ``BENCH_v10.json`` artifact, embeds
  the committed pre-PR baseline's speedup trajectory plus the prior
  artifact's cells as a cross-PR trajectory, and with ``--check`` gates
  against a committed baseline (exit 1 on a >15% wall-clock regression).
* ``serve`` — the ``reprod`` control-plane daemon: hosts armed stacks,
  paces them against the wall clock (``--rate`` sim-seconds per real
  second, or ``--turbo``), takes live commands over a line-delimited
  JSON control socket and streams metrics snapshots to watchers.
* ``ctl`` — the client for a running daemon: submit specs, check
  status, move the power budget or SLO target live (guarded and
  audited), pause/resume/drain/stop runs, fetch results, watch streams.

Both single-run commands can archive their full result with ``--json``.
The global ``--log-level`` flag configures one shared structured-logging
setup (module, simulated time, wall time) for every subcommand.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import ReproError
from repro.obs import Observability, setup_logging
from repro.experiments.config import TABLE3_SIRIUS, TABLE3_WEBSEARCH
from repro.experiments.export import (
    qos_result_to_dict,
    run_result_to_dict,
    write_json,
)
from repro.experiments.runner import (
    LATENCY_POLICIES,
    QOS_POLICIES,
    run_latency_experiment,
    run_qos_experiment,
)
from repro.workloads.levels import LoadLevel
from repro.workloads.loadgen import ConstantLoad
from repro.workloads.nlp import nlp_load_levels
from repro.workloads.sirius import sirius_load_levels

__all__ = ["main", "build_parser"]


def _positive_float(text: str) -> float:
    """Argparse type: a strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonnegative_float(text: str) -> float:
    """Argparse type: a float >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value < 0.0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _named_plan_names() -> tuple[str, ...]:
    from repro.faults.plan import named_plans

    return named_plans()


def _figure_registry() -> dict[str, Callable[[], str]]:
    from repro.experiments import figures as fig

    return {
        "fig02": lambda: fig.render_fig02(fig.run_fig02()),
        "fig04": lambda: fig.render_fig04(fig.run_fig04()),
        "fig10": lambda: fig.render_improvement_figure(fig.run_fig10()),
        "fig11": lambda: fig.render_fig11(fig.run_fig11()),
        "fig12": lambda: fig.render_fig12(fig.run_fig12()),
        "fig13": lambda: fig.render_fig13(fig.run_fig13()),
        "fig14": lambda: fig.render_fig14(fig.run_fig14()),
        "table1": fig.render_table1,
        "table4": fig.render_table4,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PowerChief (ISCA 2017) reproduction harness",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default="warning",
        help="shared structured-logging level for every subcommand "
        "(default: warning)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figures = commands.add_parser(
        "figures", help="regenerate a paper figure/table and print it"
    )
    figures.add_argument(
        "which",
        choices=sorted(_figure_registry()) + ["all"],
        help="figure/table id, or 'all'",
    )

    latency = commands.add_parser(
        "latency", help="one Table-2 latency-mitigation run"
    )
    latency.add_argument("app", choices=("sirius", "nlp"))
    latency.add_argument("policy", choices=LATENCY_POLICIES)
    latency.add_argument(
        "--load",
        choices=tuple(level.value for level in LoadLevel),
        default="high",
        help="load level relative to baseline saturation (default: high)",
    )
    latency.add_argument("--rate", type=float, help="explicit arrival rate (qps)")
    latency.add_argument("--duration", type=float, default=600.0)
    latency.add_argument("--seed", type=int, default=3)
    latency.add_argument(
        "--budget-watts",
        type=_positive_float,
        help="power budget ceiling (default: the Table-2 13.56 W)",
    )
    latency.add_argument(
        "--cores",
        type=_positive_int,
        help="CMP core count (default: 16)",
    )
    latency.add_argument(
        "--drain",
        type=_nonnegative_float,
        default=0.0,
        help="extra simulated seconds past the last arrival for in-flight "
        "queries to settle (default: 0)",
    )
    latency.add_argument("--json", help="write the full result to this path")

    run = commands.add_parser(
        "run",
        help="execute one scenario spec file through the stack builder",
    )
    run.add_argument(
        "--scenario",
        required=True,
        help="path to a ScenarioSpec .json (see docs/scenarios.md)",
    )
    run.add_argument(
        "--cache-dir",
        help="content-addressed result cache keyed on the scenario digest; "
        "a warm hit skips the simulation entirely",
    )
    run.add_argument("--json", help="write the full result to this path")

    scenario = commands.add_parser(
        "scenario", help="scenario spec tooling (validate, dump)"
    )
    scenario_actions = scenario.add_subparsers(dest="action", required=True)
    validate = scenario_actions.add_parser(
        "validate", help="check spec files and print their digests"
    )
    validate.add_argument("paths", nargs="+", help="spec .json files")
    dump = scenario_actions.add_parser(
        "dump", help="print a spec's canonical JSON form"
    )
    dump.add_argument("paths", nargs="+", help="spec .json files")

    campaign = commands.add_parser(
        "campaign", help="run the whole evaluation and archive the renders"
    )
    campaign.add_argument(
        "--output", help="directory for per-figure .txt files and report.md"
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the artefact fan-out (default: 1, serial)",
    )
    campaign.add_argument(
        "--cache-dir",
        help="content-addressed result cache; re-runs only recompute "
        "changed artefacts",
    )

    headline = commands.add_parser(
        "headline",
        help="measure the paper's abstract numbers via the parallel cell engine",
    )
    headline.add_argument("--duration", type=float, default=600.0)
    headline.add_argument("--qos-duration", type=float, default=800.0)
    headline.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the cell fan-out (default: 1, serial)",
    )
    headline.add_argument(
        "--cache-dir",
        help="content-addressed result cache; re-runs only recompute "
        "changed cells",
    )

    trace = commands.add_parser(
        "trace",
        help="one fully observed run: query trace (JSONL + Perfetto), "
        "metrics dump and controller audit log",
    )
    trace.add_argument("app", choices=("sirius", "nlp"))
    trace.add_argument(
        "policy", choices=LATENCY_POLICIES, nargs="?", default="powerchief"
    )
    trace.add_argument(
        "--load",
        choices=tuple(level.value for level in LoadLevel),
        default="high",
        help="load level relative to baseline saturation (default: high)",
    )
    trace.add_argument("--rate", type=float, help="explicit arrival rate (qps)")
    trace.add_argument("--duration", type=float, default=300.0)
    trace.add_argument("--seed", type=int, default=3)
    trace.add_argument(
        "--output",
        default="trace-out",
        help="directory for trace.jsonl, trace.chrome.json, metrics.prom "
        "and audit.jsonl (default: trace-out)",
    )
    trace.add_argument(
        "--max-spans",
        type=int,
        default=200_000,
        help="trace buffer bound; earliest spans are kept (default: 200000)",
    )
    trace.add_argument(
        "--slo-target",
        type=_positive_float,
        default=2.0,
        help="latency objective for the SLO burn tracker in seconds "
        "(default: 2.0)",
    )
    trace.add_argument(
        "--slo-attainment",
        type=_positive_float,
        default=0.99,
        help="attainment goal the error budget is sized from "
        "(default: 0.99)",
    )
    trace.add_argument(
        "--stream",
        action="store_true",
        help="also write incremental stream.jsonl snapshots during the run",
    )
    trace.add_argument(
        "--stream-interval",
        type=_positive_float,
        default=5.0,
        help="simulated seconds between stream snapshots (default: 5)",
    )

    explain = commands.add_parser(
        "explain",
        help="read a trace directory back and print the postmortem "
        "(latency attribution, SLO burn, energy split)",
    )
    explain.add_argument(
        "directory",
        help="artifact directory written by 'repro trace'",
    )
    explain.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )

    lint = commands.add_parser(
        "lint",
        help="run the domain-aware static-analysis pass over source trees",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-debt file: matched findings no longer fail the run",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current findings as the accepted-debt baseline and exit",
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanically fixable subset, then re-lint",
    )
    lint.add_argument(
        "--callgraph-cache",
        metavar="FILE",
        help="JSON cache for the cross-module call graph, reused across runs",
    )

    bench = commands.add_parser(
        "bench",
        help="time the pinned microbenchmark cells and emit BENCH_v10.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="short durations for CI (same cell shapes, scaled down)",
    )
    bench.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        help="repetitions per cell; the fastest wins (default: 1)",
    )
    bench.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only the named cell (repeatable; default: all)",
    )
    bench.add_argument(
        "--output",
        default="BENCH_v10.json",
        help="artifact path (default: BENCH_v10.json)",
    )
    bench.add_argument(
        "--prior",
        default="BENCH_v9.json",
        help="prior bench artifact whose cells join the trajectory "
        "section when it exists (default: BENCH_v9.json)",
    )
    bench.add_argument(
        "--pre-pr-baseline",
        default="benchmarks/micro/baseline_pre_pr.json",
        help="committed pre-PR measurement embedded as the speedup "
        "reference when it exists and matches the run's mode "
        "(default: benchmarks/micro/baseline_pre_pr.json)",
    )
    bench.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against this committed baseline artifact and exit 1 "
        "on a regression past the threshold",
    )
    bench.add_argument(
        "--threshold",
        type=_positive_float,
        default=0.15,
        help="allowed fractional wall-clock slowdown for --check "
        "(default: 0.15)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="one latency run under a fault plan, with goodput report",
    )
    chaos.add_argument("app", choices=("sirius", "nlp"))
    chaos.add_argument(
        "policy", choices=LATENCY_POLICIES, nargs="?", default="powerchief"
    )
    chaos.add_argument(
        "--plan",
        default="all-faults",
        help="built-in plan name or a path to a plan .json "
        f"(built-ins: {', '.join(_named_plan_names())}; default: all-faults)",
    )
    chaos.add_argument(
        "--load",
        choices=tuple(level.value for level in LoadLevel),
        default="high",
        help="load level relative to baseline saturation (default: high)",
    )
    chaos.add_argument("--rate", type=float, help="explicit arrival rate (qps)")
    chaos.add_argument("--duration", type=float, default=300.0)
    chaos.add_argument("--seed", type=int, default=3)
    chaos.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the fault-free baseline run (no delta section)",
    )
    chaos.add_argument(
        "--fail-on-goodput-delta",
        type=_positive_float,
        metavar="PCT",
        help="exit 1 when the faulty run's goodput fraction falls more "
        "than PCT percent below the fault-free baseline's "
        "(requires the baseline run)",
    )
    chaos.add_argument("--json", help="write the full report to this path")

    guard = commands.add_parser(
        "guard",
        help="one supervised chaos run: monitors, degradation ladder and "
        "safe mode armed; prints the goodput report with guard section",
    )
    guard.add_argument("app", choices=("sirius", "nlp"))
    guard.add_argument(
        "policy", choices=LATENCY_POLICIES, nargs="?", default="powerchief"
    )
    guard.add_argument(
        "--plan",
        default="telemetry-dark",
        help="built-in plan name or a path to a plan .json "
        f"(built-ins: {', '.join(_named_plan_names())}; "
        "default: telemetry-dark)",
    )
    guard.add_argument(
        "--load",
        choices=tuple(level.value for level in LoadLevel),
        default="high",
        help="load level relative to baseline saturation (default: high)",
    )
    guard.add_argument("--rate", type=float, help="explicit arrival rate (qps)")
    guard.add_argument("--duration", type=float, default=600.0)
    guard.add_argument("--seed", type=int, default=3)
    guard.add_argument(
        "--slo-target",
        type=_positive_float,
        default=20.0,
        help="latency objective in seconds for the SLO tracker the "
        "storm monitor watches (default: 20)",
    )
    guard.add_argument(
        "--ladder",
        default="conserve,safe",
        help="comma-separated fallback rungs walked on demotion "
        "(default: conserve,safe)",
    )
    guard.add_argument(
        "--demote-after",
        type=_positive_int,
        default=2,
        help="violations within the window that trigger one demotion "
        "(default: 2)",
    )
    guard.add_argument(
        "--window",
        type=_positive_float,
        default=75.0,
        help="sliding violation window in seconds (default: 75)",
    )
    guard.add_argument(
        "--probation",
        type=_positive_float,
        default=150.0,
        help="violation-free seconds required before one re-promotion "
        "(default: 150)",
    )
    guard.add_argument(
        "--burn-threshold",
        type=_positive_float,
        default=2.0,
        help="SLO burn rate the storm monitor tolerates (default: 2.0)",
    )
    guard.add_argument(
        "--storm-ticks",
        type=_positive_int,
        default=3,
        help="consecutive over-threshold ticks before the storm monitor "
        "fires (default: 3)",
    )
    guard.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the fault-free baseline run (no delta section)",
    )
    guard.add_argument("--json", help="write the full report to this path")

    qos = commands.add_parser("qos", help="one Table-3 QoS-mode run")
    qos.add_argument("app", choices=("sirius", "websearch"))
    qos.add_argument("policy", choices=QOS_POLICIES)
    qos.add_argument("--rate", type=float, help="arrival rate (qps)")
    qos.add_argument("--duration", type=float, default=400.0)
    qos.add_argument("--seed", type=int, default=3)
    qos.add_argument("--json", help="write the full result to this path")

    serve = commands.add_parser(
        "serve",
        help="run the reprod control-plane daemon: host armed stacks, "
        "pace them against the wall clock, take live commands",
    )
    serve.add_argument(
        "--socket",
        default="reprod.sock",
        help="unix control socket path (default: reprod.sock)",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="additionally listen on a TCP address",
    )
    serve.add_argument(
        "--rate",
        type=_positive_float,
        default=1.0,
        help="simulated seconds advanced per real second (default: 1.0)",
    )
    serve.add_argument(
        "--turbo",
        action="store_true",
        help="ignore the wall clock: advance a fixed quantum per loop "
        "iteration, as fast as the host allows",
    )
    serve.add_argument(
        "--quantum",
        type=_positive_float,
        default=10.0,
        help="simulated seconds per --turbo chunk (default: 10)",
    )
    serve.add_argument(
        "--poll",
        type=_positive_float,
        default=0.05,
        help="socket poll interval in real seconds (default: 0.05)",
    )
    serve.add_argument(
        "--spec",
        action="append",
        dest="specs",
        metavar="FILE",
        help="scenario spec file to submit at boot (repeatable)",
    )
    serve.add_argument(
        "--paused",
        action="store_true",
        help="boot-submitted specs start paused (resume via repro ctl)",
    )

    ctl = commands.add_parser(
        "ctl",
        help="drive a running reprod daemon over its control socket",
    )
    ctl.add_argument(
        "--socket",
        default="reprod.sock",
        help="unix control socket path (default: reprod.sock)",
    )
    ctl.add_argument(
        "--tcp", metavar="HOST:PORT", help="connect over TCP instead"
    )
    ctl.add_argument(
        "--timeout",
        type=_positive_float,
        default=30.0,
        help="socket timeout in seconds (default: 30)",
    )
    ctl_actions = ctl.add_subparsers(dest="action", required=True)
    ctl_actions.add_parser("ping", help="liveness check")
    ctl_submit = ctl_actions.add_parser(
        "submit", help="submit a scenario spec file as a hosted run"
    )
    ctl_submit.add_argument("spec", help="scenario spec .json")
    ctl_submit.add_argument("--name", help="run name (default: assigned)")
    ctl_submit.add_argument(
        "--paused", action="store_true", help="submit paused"
    )
    ctl_status = ctl_actions.add_parser(
        "status", help="one run's status, or every run's"
    )
    ctl_status.add_argument("run", nargs="?", help="run name (default: all)")
    ctl_budget = ctl_actions.add_parser(
        "budget", help="move a run's power budget live (guarded + audited)"
    )
    ctl_budget.add_argument("run")
    ctl_budget.add_argument("watts", type=_positive_float)
    ctl_slo = ctl_actions.add_parser(
        "slo", help="retarget a run's SLO live (audited)"
    )
    ctl_slo.add_argument("run")
    ctl_slo.add_argument("target_s", type=_positive_float)
    for simple in ("pause", "resume", "drain", "stop", "result"):
        ctl_simple = ctl_actions.add_parser(
            simple,
            help={
                "pause": "freeze a run's simulated clock",
                "resume": "unfreeze a paused run",
                "drain": "fast-forward a run to the end of its drain "
                "window and collect",
                "stop": "abort a run, releasing its resources",
                "result": "print a finished run's result payload",
            }[simple],
        )
        ctl_simple.add_argument("run")
    ctl_audit = ctl_actions.add_parser(
        "audit", help="print a run's audit log entries"
    )
    ctl_audit.add_argument("run")
    ctl_audit.add_argument(
        "--kind", help="only entries of this kind (e.g. budget-change)"
    )
    ctl_audit.add_argument(
        "--tail", type=_positive_int, help="only the last N entries"
    )
    ctl_watch = ctl_actions.add_parser(
        "watch", help="subscribe to a run's stream and print event lines"
    )
    ctl_watch.add_argument("run")
    ctl_watch.add_argument(
        "--count",
        type=_positive_int,
        default=1,
        help="stop after this many events (default: 1)",
    )
    ctl_actions.add_parser("shutdown", help="stop the daemon")

    return parser


def _cmd_figures(args: argparse.Namespace) -> int:
    registry = _figure_registry()
    names = sorted(registry) if args.which == "all" else [args.which]
    for name in names:
        print(registry[name]())
        print()
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    if args.rate is not None:
        rate = args.rate
    else:
        levels = sirius_load_levels() if args.app == "sirius" else nlp_load_levels()
        rate = levels.rate(LoadLevel(args.load))
    kwargs = {}
    if args.budget_watts is not None:
        kwargs["budget_watts"] = args.budget_watts
    if args.cores is not None:
        kwargs["n_cores"] = args.cores
    result = run_latency_experiment(
        args.app,
        args.policy,
        ConstantLoad(rate),
        args.duration,
        seed=args.seed,
        drain_s=args.drain,
        **kwargs,
    )
    print(
        f"{result.app}/{result.policy}: {result.queries_completed} queries, "
        f"mean {result.latency.mean:.3f}s, p99 {result.latency.p99:.3f}s, "
        f"avg power {result.average_power_watts:.2f} W"
    )
    if args.json:
        path = write_json(args.json, run_result_to_dict(result))
        print(f"result written to {path}")
    return 0


def _load_scenario(path: str) -> "ScenarioSpec":
    from repro.scenario import ScenarioSpec

    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ReproError(f"cannot read scenario {path}: {error}") from error
    return ScenarioSpec.from_json(text)


def _describe_scenario_result(result: object) -> str:
    from repro.scenario import QosRunResult, RunResult, ShardedRunResult

    if isinstance(result, ShardedRunResult):
        per_shard = ", ".join(
            f"shard{shard.index}={shard.queries_completed}"
            for shard in result.shards
        )
        return (
            f"{result.app}/{result.policy} x{result.n_shards} "
            f"({result.splitter}): {result.queries_completed} queries "
            f"({per_shard}), pooled mean {result.latency.mean:.3f}s, "
            f"p99 {result.latency.p99:.3f}s, "
            f"avg power {result.average_power_watts:.2f} W"
        )
    if isinstance(result, QosRunResult):
        return (
            f"{result.app}/{result.policy}: latency {result.latency.mean:.3f}s "
            f"({result.latency.mean / result.qos_target_s:.2f}x QoS), "
            f"power {result.average_power_fraction:.3f} of peak, "
            f"violations {result.violation_fraction * 100:.1f}%"
        )
    assert isinstance(result, RunResult)
    return (
        f"{result.app}/{result.policy}: {result.queries_completed} queries, "
        f"mean {result.latency.mean:.3f}s, p99 {result.latency.p99:.3f}s, "
        f"avg power {result.average_power_watts:.2f} W"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    import json as json_module
    import time

    from repro.experiments.export import scenario_result_from_payload
    from repro.experiments.parallel import ResultCache
    from repro.scenario import run_scenario

    spec = _load_scenario(args.scenario)
    digest = spec.digest()
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    payload = None
    source = "computed"
    if cache is not None:
        record = cache.get(digest)
        if record is not None:
            payload = record["payload"]
            source = "cache"
    if payload is None:
        from repro.experiments.export import scenario_payload

        started = time.perf_counter()
        result = run_scenario(spec)
        elapsed = time.perf_counter() - started
        # The JSON round trip normalises the payload so a computed run
        # and a cached one compare byte-identical.
        payload = json_module.loads(json_module.dumps(scenario_payload(result)))
        if cache is not None:
            cache.put(spec, digest, {"payload": payload, "elapsed_s": elapsed})
    print(f"scenario {spec.label}")
    print(f"digest={digest[:16]} source={source}")
    print(_describe_scenario_result(scenario_result_from_payload(payload)))
    if args.json:
        path = write_json(args.json, payload)
        print(f"result written to {path}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.paths:
        if args.action == "validate":
            try:
                spec = _load_scenario(path)
            except ReproError as error:
                print(f"invalid {path}: {error}")
                failures += 1
                continue
            print(f"ok {path}: {spec.label} digest={spec.digest()[:16]}")
        else:
            spec = _load_scenario(path)
            print(spec.to_json(indent=2))
    return 1 if failures else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import run_campaign

    result = run_campaign(
        output_dir=args.output,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    )
    for name in result.artefacts:
        print(result.render(name))
        print()
    print(result.timing_report())
    if result.output_dir is not None:
        print(f"campaign archived to {result.output_dir}")
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from repro.experiments.headline import format_headline, run_headline

    headline = run_headline(
        duration_s=args.duration,
        qos_duration_s=args.qos_duration,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(format_headline(headline))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs import (
        AttributionCollector,
        EnergyAttributor,
        SloTracker,
        StreamExporter,
    )
    from repro.obs.audit import BoostEntry, BottleneckEntry, WithdrawEntry

    logger = logging.getLogger("repro.cli")
    if args.rate is not None:
        rate = args.rate
    else:
        levels = sirius_load_levels() if args.app == "sirius" else nlp_load_levels()
        rate = levels.rate(LoadLevel(args.load))
    target = Path(args.output)
    target.mkdir(parents=True, exist_ok=True)
    observability = Observability.enabled(max_spans=args.max_spans)
    observability.attribution = AttributionCollector(
        registry=observability.metrics
    )
    observability.slo = SloTracker(
        target_s=args.slo_target,
        attainment_goal=args.slo_attainment,
        registry=observability.metrics,
    )
    observability.energy = EnergyAttributor(registry=observability.metrics)
    if args.stream:
        observability.stream = StreamExporter(
            path=target / "stream.jsonl", interval_s=args.stream_interval
        )
    logger.info(
        "tracing %s/%s at %.2f qps for %.0fs", args.app, args.policy,
        rate, args.duration,
    )
    result = run_latency_experiment(
        args.app,
        args.policy,
        ConstantLoad(rate),
        args.duration,
        seed=args.seed,
        observability=observability,
    )
    tracer, metrics, audit = (
        observability.tracer,
        observability.metrics,
        observability.audit,
    )
    assert tracer is not None and metrics is not None and audit is not None
    attribution, slo, energy = (
        observability.attribution,
        observability.slo,
        observability.energy,
    )
    assert attribution is not None and slo is not None and energy is not None
    tracer.write_jsonl(target / "trace.jsonl")
    tracer.write_chrome_trace(target / "trace.chrome.json")
    (target / "metrics.prom").write_text(metrics.render_prometheus())
    audit.write_jsonl(target / "audit.jsonl")
    (target / "attribution.json").write_text(
        json_module.dumps(
            {
                "report": attribution.report().to_dict(),
                "dropped": attribution.dropped,
                "queries": [qa.to_dict() for qa in attribution.attributions],
            },
            sort_keys=True,
        )
    )
    (target / "slo.json").write_text(
        json_module.dumps(slo.to_dict(), sort_keys=True)
    )
    (target / "energy.json").write_text(
        json_module.dumps(
            energy.to_dict(result.queries_completed), sort_keys=True
        )
    )
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(
        f"{result.app}/{result.policy}: {result.queries_completed} queries, "
        f"mean {result.latency.mean:.3f}s, p99 {result.latency.p99:.3f}s, "
        f"avg power {result.average_power_watts:.2f} W"
    )
    print(
        f"trace: {len(tracer)} spans{dropped}; audit: "
        f"{len(audit.of_kind(BottleneckEntry))} bottleneck / "
        f"{len(audit.of_kind(BoostEntry))} boost / "
        f"{len(audit.of_kind(WithdrawEntry))} withdraw entries; "
        f"metrics: {len(metrics)} instruments"
    )
    print(
        f"accounting: {attribution.report().count} queries attributed, "
        f"SLO attainment {slo.attainment() * 100.0:.1f}% at "
        f"{slo.target_s}s, {energy.total_joules():.1f} J split over "
        f"{len(energy.stage_names)} stages"
    )
    streamed = ", stream.jsonl" if args.stream else ""
    print(
        f"artifacts in {target}/: trace.jsonl, trace.chrome.json "
        f"(open at ui.perfetto.dev), metrics.prom, audit.jsonl, "
        f"attribution.json, slo.json, energy.json{streamed}"
    )
    print(f"read it back with: repro explain {target}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs import build_explain_report, render_explain

    report = build_explain_report(args.directory)
    if args.format == "json":
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_explain(report))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Exit codes: 0 clean, 1 findings, 2 the linter itself crashed."""
    import json as json_module

    from repro.lint import (
        Baseline,
        LintReport,
        apply_baseline,
        apply_fixes,
        default_registry,
        lint_paths,
        report_to_sarif,
        write_baseline,
    )

    try:
        registry = default_registry()
        if args.list_rules:
            for rule, description, scope in registry.describe():
                scoped = f" [{', '.join(scope)}]" if scope else ""
                print(f"{rule}{scoped}: {description}")
            return 0

        def run() -> LintReport:
            return lint_paths(
                args.paths,
                registry=registry,
                select=args.select,  # None = all; "" must error, not pass
                callgraph_cache=args.callgraph_cache,
            )

        report = run()
        if args.write_baseline:
            count = write_baseline(report, args.write_baseline)
            print(
                f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
                f"to {args.write_baseline}"
            )
            return 0
        if args.fix:
            fixed = apply_fixes(report)
            if fixed.files_changed:
                report = run()  # line numbers moved; re-lint is the truth
            print(fixed.summary(), file=sys.stderr)
        stale = []
        if args.baseline:
            stale = apply_baseline(report, Baseline.load(args.baseline))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:  # a crash must never read as "clean"
        print(f"repro-lint internal error: {error!r}", file=sys.stderr)
        return 2
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer match "
            f"anything — regenerate with --write-baseline",
            file=sys.stderr,
        )
    if args.format == "json":
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(
            json_module.dumps(
                report_to_sarif(report, registry), indent=2, sort_keys=True
            )
        )
    else:
        print(report.format_text())
    return 1 if report.findings else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.bench import (
        compare_reports,
        load_report,
        run_bench,
        trajectory_from_prior,
    )

    report = run_bench(
        quick=args.quick,
        repeats=args.repeat,
        names=args.scenarios,
        progress=print,
    )
    baseline = None
    pre_pr_path = Path(args.pre_pr_baseline)
    if pre_pr_path.exists():
        pre_pr = load_report(pre_pr_path)
        if pre_pr.quick == report.quick:
            baseline = pre_pr
        else:
            print(
                f"note: {pre_pr_path} is a "
                f"{'quick' if pre_pr.quick else 'full'} baseline; this is a "
                f"{'quick' if report.quick else 'full'} run, so no speedup "
                f"trajectory is embedded"
            )
    trajectory = None
    prior_path = Path(args.prior)
    if prior_path.exists():
        try:
            prior_payload = json_module.loads(prior_path.read_text())
        except ValueError as error:
            raise ReproError(
                f"prior bench artifact {prior_path} is not valid JSON: {error}"
            ) from error
        trajectory = trajectory_from_prior(prior_payload)
        print(
            f"trajectory: carrying {len(trajectory)} prior artifact "
            f"generation(s) forward from {prior_path}"
        )
    path = report.write(args.output, baseline=baseline, trajectory=trajectory)
    print(f"bench artifact written to {path}")
    if baseline is not None:
        payload = report.to_dict(baseline)
        headline = payload.get("headline_speedup")
        if headline is not None:
            print(f"headline-cell speedup vs pre-PR baseline: {headline:.2f}x")
    if args.check:
        gate = load_report(args.check)
        regressions = compare_reports(
            report, gate, threshold=args.threshold
        )
        if regressions:
            for regression in regressions:
                print(f"REGRESSION {regression}", file=sys.stderr)
            return 1
        print(
            f"gate ok: no cell more than {args.threshold * 100:.0f}% slower "
            f"than {args.check}"
        )
    return 0


def _resolve_rate(args: argparse.Namespace) -> float:
    if args.rate is not None:
        return args.rate
    levels = sirius_load_levels() if args.app == "sirius" else nlp_load_levels()
    return levels.rate(LoadLevel(args.load))


def _chaos_payload(
    args: argparse.Namespace, plan: object, chaos_result: object
) -> dict:
    import dataclasses

    return {
        "app": args.app,
        "policy": args.policy,
        "seed": args.seed,
        "plan": plan.to_dict(),
        "report": dataclasses.asdict(chaos_result.report),
        "events": [dataclasses.asdict(event) for event in chaos_result.events],
    }


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import load_plan, run_chaos_experiment

    if args.fail_on_goodput_delta is not None and args.no_baseline:
        raise ReproError(
            "--fail-on-goodput-delta needs the fault-free baseline; "
            "drop --no-baseline"
        )
    plan = load_plan(args.plan, args.duration)
    chaos_result = run_chaos_experiment(
        args.app,
        args.policy,
        ConstantLoad(_resolve_rate(args)),
        args.duration,
        plan,
        seed=args.seed,
        with_baseline=not args.no_baseline,
    )
    print(f"{args.app}/{args.policy} under plan {plan.name!r}:")
    print()
    print(chaos_result.report.render(chaos_result.baseline))
    if args.json:
        path = write_json(args.json, _chaos_payload(args, plan, chaos_result))
        print(f"report written to {path}")
    if args.fail_on_goodput_delta is not None:
        baseline = chaos_result.baseline
        assert baseline is not None  # guarded above
        base_fraction = baseline.completion_fraction
        faulty_fraction = chaos_result.report.goodput_fraction
        if base_fraction <= 0.0:
            raise ReproError(
                "baseline completed no queries; goodput delta is undefined"
            )
        delta_pct = (base_fraction - faulty_fraction) / base_fraction * 100.0
        print()
        print(
            f"goodput delta vs baseline: {delta_pct:+.2f}% "
            f"(gate: {args.fail_on_goodput_delta:.2f}%)"
        )
        if delta_pct > args.fail_on_goodput_delta:
            print(
                f"goodput gate breached: faulty run completed "
                f"{delta_pct:.2f}% fewer admitted queries than the "
                f"baseline (allowed {args.fail_on_goodput_delta:.2f}%)",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_guard(args: argparse.Namespace) -> int:
    from repro.faults import load_plan, run_chaos_experiment
    from repro.guard import GuardConfig

    guard_config = GuardConfig(
        ladder=args.ladder,
        demote_after=args.demote_after,
        violation_window_s=args.window,
        probation_s=args.probation,
        burn_threshold=args.burn_threshold,
        storm_ticks=args.storm_ticks,
    )
    plan = load_plan(args.plan, args.duration)
    chaos_result = run_chaos_experiment(
        args.app,
        args.policy,
        ConstantLoad(_resolve_rate(args)),
        args.duration,
        plan,
        seed=args.seed,
        with_baseline=not args.no_baseline,
        guard=guard_config,
        slo_target_s=args.slo_target,
    )
    print(
        f"{args.app}/{args.policy} under plan {plan.name!r}, supervised "
        f"(ladder {args.ladder}, SLO target {args.slo_target:g}s):"
    )
    print()
    print(chaos_result.report.render(chaos_result.baseline))
    if args.json:
        path = write_json(args.json, _chaos_payload(args, plan, chaos_result))
        print(f"report written to {path}")
    return 0


def _cmd_qos(args: argparse.Namespace) -> int:
    setup = TABLE3_SIRIUS if args.app == "sirius" else TABLE3_WEBSEARCH
    rate = args.rate if args.rate is not None else (7.0 if args.app == "sirius" else 8.0)
    result = run_qos_experiment(
        setup, args.policy, rate_qps=rate, duration_s=args.duration, seed=args.seed
    )
    print(
        f"{result.app}/{result.policy}: latency {result.latency.mean:.3f}s "
        f"({result.latency.mean / result.qos_target_s:.2f}x QoS), "
        f"power {result.average_power_fraction:.3f} of peak "
        f"(saving {result.power_saving_fraction * 100:.1f}%), "
        f"violations {result.violation_fraction * 100:.1f}%"
    )
    if args.json:
        path = write_json(args.json, qos_result_to_dict(result))
        print(f"result written to {path}")
    return 0


def _parse_tcp(text: Optional[str]) -> tuple[Optional[str], Optional[int]]:
    if text is None:
        return None, None
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ReproError(f"--tcp takes HOST:PORT, got {text!r}")
    return host, int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproDaemon

    host, port = _parse_tcp(args.tcp)
    daemon = ReproDaemon(
        args.socket,
        host=host,
        port=port,
        rate=args.rate,
        turbo=args.turbo,
        quantum_s=args.quantum,
        poll_interval_s=args.poll,
    )
    for path in args.specs or ():
        spec = _load_scenario(path)
        run = daemon.submit(spec, paused=args.paused)
        print(f"submitted {path} as {run.name} (end_s={run.end_s:g})")
    where = args.socket if args.tcp is None else f"{args.socket} and {args.tcp}"
    pacing = "turbo" if args.turbo else f"rate {args.rate:g} sim-s/s"
    print(f"reprod listening on {where} ({pacing})", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.shutdown()
    print("reprod stopped")
    return 0


def _cmd_ctl(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import CtlClient

    host, port = _parse_tcp(args.tcp)
    client = CtlClient(
        None if host is not None else args.socket,
        host=host,
        port=port,
        timeout_s=args.timeout,
    )
    with client as ctl:
        if args.action == "watch":
            ctl.call("watch", run=args.run)
            for event in ctl.events(max_events=args.count):
                print(_json.dumps(event, sort_keys=True))
            return 0
        call_args: dict[str, object] = {}
        if args.action == "submit":
            spec = _load_scenario(args.spec)
            call_args["spec"] = spec.to_dict()
            if args.name:
                call_args["name"] = args.name
            if args.paused:
                call_args["paused"] = True
        elif args.action == "status":
            if args.run:
                call_args["run"] = args.run
        elif args.action == "budget":
            call_args = {"run": args.run, "watts": args.watts}
        elif args.action == "slo":
            call_args = {"run": args.run, "target_s": args.target_s}
        elif args.action == "audit":
            call_args = {"run": args.run}
            if args.kind:
                call_args["kind"] = args.kind
            if args.tail is not None:
                call_args["tail"] = args.tail
        elif args.action in ("pause", "resume", "drain", "stop", "result"):
            call_args = {"run": args.run}
        result = ctl.call(args.action, **call_args)
        print(_json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    handlers = {
        "figures": _cmd_figures,
        "latency": _cmd_latency,
        "qos": _cmd_qos,
        "campaign": _cmd_campaign,
        "headline": _cmd_headline,
        "trace": _cmd_trace,
        "explain": _cmd_explain,
        "bench": _cmd_bench,
        "chaos": _cmd_chaos,
        "guard": _cmd_guard,
        "run": _cmd_run,
        "scenario": _cmd_scenario,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "ctl": _cmd_ctl,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
