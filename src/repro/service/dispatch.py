"""Dispatch policies: which instance in a stage receives the next query.

The paper load-balances queries across the service instances of a stage
(Figure 3) without prescribing a policy; shortest-queue is the default
here because it is what a Thrift-style connection pool with backpressure
approximates.  Round-robin and random are provided for ablations and
tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import StageError
from repro.service.instance import ServiceInstance
from repro.sim.rng import SeededStream

__all__ = [
    "Dispatcher",
    "ShortestQueueDispatcher",
    "RoundRobinDispatcher",
    "RandomDispatcher",
]


class Dispatcher(ABC):
    """Chooses one instance out of a stage's running pool."""

    @abstractmethod
    def select(self, instances: Sequence[ServiceInstance]) -> ServiceInstance:
        """Pick the instance for the next query; ``instances`` is non-empty."""

    def _require_instances(self, instances: Sequence[ServiceInstance]) -> None:
        if not instances:
            raise StageError("cannot dispatch: stage has no running instances")


class ShortestQueueDispatcher(Dispatcher):
    """Join-the-shortest-queue; ties go to the earlier instance."""

    def select(self, instances: Sequence[ServiceInstance]) -> ServiceInstance:
        self._require_instances(instances)
        # Manual argmin over (queue_length, iid).  This runs once per
        # query per stage; reading the queue fields directly instead of
        # building a key tuple through the queue_length property keeps
        # the whole scan in one bytecode loop.  Tie-break: strictly
        # smaller iid wins, matching min()'s first-of-equals.
        best = instances[0]
        best_len = best._qlen
        best_iid = best.iid
        for index in range(1, len(instances)):
            inst = instances[index]
            length = inst._qlen
            if length < best_len or (length == best_len and inst.iid < best_iid):
                best = inst
                best_len = length
                best_iid = inst.iid
        return best


class RoundRobinDispatcher(Dispatcher):
    """Cycle through instances in order, skipping none.

    The cursor is kept in ``[0, len(instances))`` at every call rather
    than growing unbounded: an ever-increasing counter taken modulo the
    pool size silently re-skews the rotation whenever the pool shrinks
    (withdraw or crash), because the old count is reinterpreted against
    the new length.  Clamping resets the rotation to the head of the
    surviving pool — deterministic, and identical to the unbounded
    counter whenever the pool size is stable.
    """

    def __init__(self) -> None:
        self._next = 0

    def select(self, instances: Sequence[ServiceInstance]) -> ServiceInstance:
        self._require_instances(instances)
        if self._next >= len(instances):
            self._next = 0
        choice = instances[self._next]
        self._next = (self._next + 1) % len(instances)
        return choice


class RandomDispatcher(Dispatcher):
    """Uniform random choice from a dedicated stream (for ablations)."""

    def __init__(self, rng: SeededStream) -> None:
        self._rng = rng

    def select(self, instances: Sequence[ServiceInstance]) -> ServiceInstance:
        self._require_instances(instances)
        return instances[self._rng.randrange(len(instances))]
