"""The command center: latency-statistics aggregation across stages.

"After the query completes the last stage of the processing pipeline,
these latency statistics are sent to the command center.  The bottleneck
identifier then calculates the latency metrics such as average and 99%
percentile queuing and serving delay of each service instance using the
latency statistics." (Section 4.1)

The command center keeps a moving :class:`LatencyWindow` per instance and
per stage.  A freshly launched instance has no history, so lookups fall
back from the instance window to its stage's pooled window and finally to
the offline profile's expectation — without the fallback a new instance
would report a zero latency metric and immediately be chosen as a power
recycling victim.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.service.application import Application
from repro.service.instance import ServiceInstance
from repro.service.query import Query
from repro.service.window import LatencyWindow
from repro.sim.engine import Simulator
from repro.util.percentile import LatencySummary, summarize

__all__ = ["CommandCenter"]


class CommandCenter:
    """Ingests completed-query records and serves latency statistics."""

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        window_s: float = 60.0,
        e2e_window_s: float = 30.0,
        retain_queries: bool = False,
    ) -> None:
        if window_s <= 0.0:
            raise ConfigurationError(f"window must be > 0 s, got {window_s}")
        if e2e_window_s <= 0.0:
            raise ConfigurationError(
                f"e2e window must be > 0 s, got {e2e_window_s}"
            )
        self.sim = sim
        self.application = application
        self.window_s = float(window_s)
        self.e2e_window_s = float(e2e_window_s)
        self._instance_windows: dict[str, LatencyWindow] = {}
        self._stage_windows: dict[str, LatencyWindow] = {}
        self._all_latencies: list[float] = []
        self._recent_e2e: deque[tuple[float, float]] = deque()
        self.retain_queries = retain_queries
        self._completed_queries: list[Query] = []
        self._stats_messages = 0
        self._records_ingested = 0
        application.add_completion_listener(self.ingest)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, query: Query) -> None:
        """Record a completed query's latency statistics.

        One ingest call is one statistics message: the query carried every
        instance's record along, so the command center hears from the
        pipeline exactly once per query.
        """
        self._stats_messages += 1
        instance_windows = self._instance_windows
        stage_windows = self._stage_windows
        for record in query.records:
            start = record.start_time
            finish = record.finish_time
            if start is None or finish is None:
                continue
            self._records_ingested += 1
            queuing = start - record.enqueue_time
            serving = finish - start
            window = instance_windows.get(record.instance_name)
            if window is None:
                window = LatencyWindow(self.window_s)
                instance_windows[record.instance_name] = window
            window.add(finish, queuing, serving)
            stage_window = stage_windows.get(record.stage_name)
            if stage_window is None:
                stage_window = LatencyWindow(self.window_s)
                stage_windows[record.stage_name] = stage_window
            stage_window.add(finish, queuing, serving)
        latency = query.end_to_end_latency
        self._all_latencies.append(latency)
        if self.retain_queries:
            self._completed_queries.append(query)
        self._recent_e2e.append((self.sim.now, latency))
        cutoff = self.sim.now - self.e2e_window_s
        while self._recent_e2e and self._recent_e2e[0][0] < cutoff:
            self._recent_e2e.popleft()

    # ------------------------------------------------------------------
    # Per-instance statistics (with fallbacks for fresh instances)
    # ------------------------------------------------------------------
    def avg_queuing(self, instance: ServiceInstance) -> float:
        """Windowed average queuing time ``q_i`` of an instance."""
        now = self.sim.now
        window = self._instance_windows.get(instance.name)
        if window is not None:
            value = window.avg_queuing(now)
            if value is not None:
                return value
        stage_window = self._stage_windows.get(instance.stage_name)
        if stage_window is not None:
            value = stage_window.avg_queuing(now)
            if value is not None:
                return value
        return 0.0

    def avg_serving(self, instance: ServiceInstance) -> float:
        """Windowed average serving time ``s_i`` of an instance.

        Falls back to the stage's pooled window and finally to the offline
        profile's expected serving time at the instance's current
        frequency.
        """
        now = self.sim.now
        window = self._instance_windows.get(instance.name)
        if window is not None:
            value = window.avg_serving(now)
            if value is not None:
                return value
        stage_window = self._stage_windows.get(instance.stage_name)
        if stage_window is not None:
            value = stage_window.avg_serving(now)
            if value is not None:
                return value
        return instance.profile.mean_serving_time(instance.frequency_ghz)

    def p99_queuing(self, instance: ServiceInstance) -> float:
        window = self._instance_windows.get(instance.name)
        if window is not None:
            value = window.p99_queuing(self.sim.now)
            if value is not None:
                return value
        return self.avg_queuing(instance)

    def p99_serving(self, instance: ServiceInstance) -> float:
        window = self._instance_windows.get(instance.name)
        if window is not None:
            value = window.p99_serving(self.sim.now)
            if value is not None:
                return value
        return self.avg_serving(instance)

    def p99_processing(self, instance: ServiceInstance) -> float:
        """99th percentile of per-query processing time ``q + s``.

        Computed over the joint distribution: each sample is one record's
        queuing *plus* serving time.  This is *not* ``p99(q) + p99(s)`` —
        queuing and serving delays are typically anti-correlated (a query
        that waited long often hits a recently-drained, fast instance), so
        summing the marginal percentiles overstates the tail.
        """
        window = self._instance_windows.get(instance.name)
        if window is not None:
            value = window.p99_processing(self.sim.now)
            if value is not None:
                return value
        return self.avg_queuing(instance) + self.avg_serving(instance)

    def sample_count(self, instance: ServiceInstance) -> int:
        """Windowed sample count for the instance (0 if fresh)."""
        window = self._instance_windows.get(instance.name)
        if window is None:
            return 0
        return window.count(self.sim.now)

    def has_fresh_records(self, instance: ServiceInstance) -> bool:
        """Whether the instance produced any record inside the window.

        The controller's stale-metric guard distinguishes *fresh* clones
        (no history yet — served by the fallback chain) from *sick*
        veterans (served queries before, now silent with work queued);
        both report ``sample_count == 0`` but only the latter should be
        excluded from Eq-1 ranking.
        """
        return self.sample_count(instance) > 0

    # ------------------------------------------------------------------
    # End-to-end statistics
    # ------------------------------------------------------------------
    @property
    def all_latencies(self) -> list[float]:
        """End-to-end latency of every completed query (run-lifetime)."""
        return list(self._all_latencies)

    @property
    def stats_messages(self) -> int:
        """Statistics messages received: one per completed query.

        The service/query joint design "eliminates the large amount of
        communications between service instances and the command center"
        (Section 4.1): compare with :attr:`naive_stats_messages`, what a
        per-instance reporting scheme would have sent.
        """
        return self._stats_messages

    @property
    def naive_stats_messages(self) -> int:
        """Messages a report-per-instance-visit design would have sent."""
        return self._records_ingested

    @property
    def completed_queries(self) -> list[Query]:
        """Completed queries, if ``retain_queries`` was enabled.

        Feeds :func:`repro.analysis.analyze_queries` for latency
        breakdowns; off by default to keep long runs memory-bounded.
        """
        return list(self._completed_queries)

    def summary(self) -> LatencySummary:
        """Run-lifetime end-to-end latency summary."""
        return summarize(self._all_latencies)

    def recent_latency_avg(self) -> Optional[float]:
        """Windowed average end-to-end latency (None if no recent queries)."""
        self._trim_recent()
        if not self._recent_e2e:
            return None
        return sum(latency for _, latency in self._recent_e2e) / len(
            self._recent_e2e
        )

    def recent_latency_max(self) -> Optional[float]:
        """Windowed max end-to-end latency (what a QoS guard watches)."""
        self._trim_recent()
        if not self._recent_e2e:
            return None
        return max(latency for _, latency in self._recent_e2e)

    def recent_count(self) -> int:
        self._trim_recent()
        return len(self._recent_e2e)

    def _trim_recent(self) -> None:
        cutoff = self.sim.now - self.e2e_window_s
        while self._recent_e2e and self._recent_e2e[0][0] < cutoff:
            self._recent_e2e.popleft()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommandCenter(app={self.application.name!r}, "
            f"{len(self._all_latencies)} queries ingested)"
        )
