"""A service instance: one worker process pinned to one core.

"Each service instance is running on an individual processor core and
maintains its own queue structure to smooth load burst.  In the meanwhile,
each service instance can adjust its processing speed through manipulating
the core frequency." (Section 2.1)

The instance implements the timing side of the service/query joint design:
it stamps enqueue / start / finish times into a :class:`StageRecord` and
appends the record to the query when serving completes.  It also keeps the
busy-time accounting that the withdraw mechanism's 20 %-utilisation rule
reads (Section 6.2).

Serving is work-based: a job carries ``work`` seconds of execution at the
slowest ladder frequency; the wall-clock serving time is that work
divided by the instance's current *work rate* — the speedup curve at the
core's frequency, further divided by the machine's contention slowdown
when a :class:`~repro.cluster.contention.ContentionModel` is active.  If
DVFS retunes the core (or machine occupancy shifts the contention)
mid-service, the remaining work is rescaled and the completion event
rescheduled — frequency boosting therefore accelerates the query already
on the core, not just future ones.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from typing import TYPE_CHECKING

from repro.errors import InstanceStateError
from repro.units import exactly
from repro.cluster.core import Core
from repro.service.profile import ServiceProfile

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cluster.machine import Machine
    from repro.obs.trace import TraceBuffer
from repro.service.query import Query
from repro.service.records import StageRecord
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventPriority

__all__ = ["Job", "InstanceState", "ServiceInstance"]


@dataclass(slots=True)
class Job:
    """One unit of work submitted to an instance.

    ``on_done`` is invoked with the query when serving finishes; the stage
    uses it to route the query onward (or to count scatter-gather shards).
    ``enqueue_time`` is normally stamped by the instance; work stealing and
    withdraw redirection preserve the original stamp so processing-delay
    accounting spans the whole time the query spent waiting.
    """

    query: Query
    work: float
    on_done: Callable[[Query], None]
    enqueue_time: Optional[float] = None
    record: Optional[StageRecord] = field(default=None, repr=False)
    #: Set when the submitting layer abandoned the job (attempt timed out
    #: or was re-dispatched after a crash); a cancelled job may still sit
    #: in a queue, but serving it produces no record and fires no
    #: ``on_done``.
    cancelled: bool = False
    #: Back-reference for the resilience layer (opaque to the instance).
    attempt: Optional[object] = field(default=None, repr=False)


class InstanceState(enum.Enum):
    """Lifecycle of a service instance."""

    RUNNING = "running"
    DRAINING = "draining"
    CRASHED = "crashed"
    WITHDRAWN = "withdrawn"


#: The only legal lifecycle transitions.  RUNNING instances drain (the
#: withdraw mechanism) or crash (fault injection); DRAINING instances
#: finish the drain or crash mid-drain; CRASHED and WITHDRAWN are
#: terminal.  Every state write funnels through
#: :meth:`ServiceInstance._transition`, which enforces this table — a
#: crash during a drain, for example, must never *also* complete the
#: drain and double-fire ``on_drained``.
_ALLOWED_TRANSITIONS: dict[InstanceState, frozenset[InstanceState]] = {
    InstanceState.RUNNING: frozenset(
        {InstanceState.DRAINING, InstanceState.CRASHED}
    ),
    InstanceState.DRAINING: frozenset(
        {InstanceState.WITHDRAWN, InstanceState.CRASHED}
    ),
    InstanceState.CRASHED: frozenset(),
    InstanceState.WITHDRAWN: frozenset(),
}


class ServiceInstance:
    """A single-core worker with a private FIFO queue."""

    __slots__ = (
        "iid",
        "name",
        "stage_name",
        "profile",
        "core",
        "sim",
        "_machine",
        "_tracer",
        "_state",
        "_queue",
        "_qlen",
        "_current",
        "_remaining_work",
        "_segment_start",
        "_segment_rate",
        "_completion",
        "_hung",
        "_degrade_factor",
        "_degraded",
        "_crash_level",
        "_on_drained",
        "_on_state_change",
        "_busy_accumulated",
        "_busy_since",
        "_queries_served",
        "_speedup_by_level",
    )

    def __init__(
        self,
        iid: int,
        name: str,
        stage_name: str,
        profile: ServiceProfile,
        core: Core,
        sim: Simulator,
        machine: Optional["Machine"] = None,
        tracer: Optional["TraceBuffer"] = None,
    ) -> None:
        self.iid = iid
        self.name = name
        self.stage_name = stage_name
        self.profile = profile
        self.core = core
        self.sim = sim
        self._machine = machine
        self._tracer = tracer
        self._state = InstanceState.RUNNING
        self._queue: deque[Job] = deque()
        # Maintained realtime queue length L_i (waiting + in service).
        # The dispatcher's argmin scan reads this once per instance per
        # query; every queue/current mutation below keeps it exact.
        self._qlen = 0
        self._current: Optional[Job] = None
        self._remaining_work = 0.0
        self._segment_start = 0.0
        self._segment_rate = 1.0
        self._completion: Optional[Event] = None
        self._hung = False
        self._degrade_factor = 1.0
        self._degraded = False
        self._crash_level: Optional[int] = None
        self._on_drained: Optional[Callable[["ServiceInstance"], None]] = None
        self._on_state_change: Optional[Callable[["ServiceInstance"], None]] = None
        # Speedup is a pure function of the ladder level; memoising per
        # level returns the *same* float the curve would produce, so
        # cached and uncached runs stay byte-identical.
        self._speedup_by_level: dict[int, float] = {}
        self._busy_accumulated = 0.0
        self._busy_since: Optional[float] = None
        self._queries_served = 0
        core.add_observer(self._on_frequency_change)
        if machine is not None:
            machine.add_occupancy_listener(self._on_occupancy_change)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> InstanceState:
        return self._state

    @property
    def running(self) -> bool:
        return self._state is InstanceState.RUNNING

    @property
    def hung(self) -> bool:
        """Whether the instance is hung (accepts work, serves nothing)."""
        return self._hung

    @property
    def degrade_factor(self) -> float:
        """Work-rate multiplier applied by fault injection (1.0 = healthy)."""
        return self._degrade_factor

    @property
    def crash_level(self) -> Optional[int]:
        """Ladder level held at crash time (``None`` before any crash).

        Read this instead of :attr:`level` after a crash: releasing the
        core resets its frequency, so by the time crash listeners run the
        live level no longer says what the victim was worth.
        """
        return self._crash_level

    @property
    def busy(self) -> bool:
        """Whether a job is currently being served."""
        return self._current is not None

    @property
    def waiting_count(self) -> int:
        """Jobs waiting in the queue (excluding the one in service)."""
        return len(self._queue)

    @property
    def queue_length(self) -> int:
        """Realtime queue length ``L_i``: waiting jobs plus the one in service.

        This is the ``L`` of Equation 1 — with a single query on the core
        and nothing waiting, the expected delay for a newcomer is one
        queuing term plus its own serving time.
        """
        return self._qlen

    @property
    def frequency_ghz(self) -> float:
        return self.core.frequency_ghz

    @property
    def level(self) -> int:
        return self.core.level

    @property
    def power_watts(self) -> float:
        return self.core.power_watts

    @property
    def queries_served(self) -> int:
        return self._queries_served

    def busy_seconds(self) -> float:
        """Cumulative time this instance has spent serving queries."""
        total = self._busy_accumulated
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    def current_service_elapsed(self, now: float) -> Optional[float]:
        """How long the job currently in service has been on the core.

        ``None`` when idle.  The health monitor uses this to spot hung
        instances: a job that has been "in service" far longer than any
        plausible serving time means the instance stopped making progress.
        """
        job = self._current
        if job is None or job.record is None or job.record.start_time is None:
            return None
        return now - job.record.start_time

    # ------------------------------------------------------------------
    # Work submission
    # ------------------------------------------------------------------
    def enqueue(self, job: Job) -> None:
        """Accept a job; only RUNNING instances take new work."""
        if self._state is not InstanceState.RUNNING:
            raise InstanceStateError(
                f"instance {self.name} is {self._state.value}; cannot enqueue"
            )
        if job.work < 0.0:
            raise InstanceStateError(f"job work must be >= 0, got {job.work}")
        enqueue_time = self.sim.now if job.enqueue_time is None else job.enqueue_time
        job.enqueue_time = enqueue_time
        job.record = StageRecord(
            instance_id=self.iid,
            instance_name=self.name,
            stage_name=self.stage_name,
            enqueue_time=enqueue_time,
            queue_at_arrival=self.queue_length,
        )
        self._queue.append(job)
        self._qlen += 1
        if self._current is None and not self._hung:
            self._start_next()

    # ------------------------------------------------------------------
    # Boosting support
    # ------------------------------------------------------------------
    def steal_half(self) -> list[Job]:
        """Remove the back half of the waiting queue for a cloned instance.

        Instance boosting offloads "half of the queries queued at the
        bottleneck instance" to the new clone (Section 5.1, Figure 7(a)).
        The in-service job is never stolen.  The jobs keep their original
        enqueue stamps so their eventual records cover the full wait.
        """
        steal_count = len(self._queue) // 2
        stolen: list[Job] = []
        for _ in range(steal_count):
            job = self._queue.pop()
            job.record = None
            stolen.append(job)
        self._qlen -= steal_count
        stolen.reverse()
        return stolen

    def take_all_waiting(self) -> list[Job]:
        """Remove every waiting job (withdraw redirects them elsewhere)."""
        taken = list(self._queue)
        self._queue.clear()
        self._qlen -= len(taken)
        for job in taken:
            job.record = None
        return taken

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def _transition(self, target: InstanceState) -> None:
        """Move to ``target``, enforcing the lifecycle transition table."""
        allowed = _ALLOWED_TRANSITIONS[self._state]
        if target not in allowed:
            raise InstanceStateError(
                f"instance {self.name}: illegal transition "
                f"{self._state.value} -> {target.value}"
            )
        self._state = target
        if self._on_state_change is not None:
            self._on_state_change(self)

    def set_state_listener(
        self, listener: Optional[Callable[["ServiceInstance"], None]]
    ) -> None:
        """Register the single lifecycle listener (the owning stage).

        The stage caches its running-instance list and must hear about
        every state flip to invalidate it; a listener slot (rather than a
        list) keeps the per-transition cost at one comparison.
        """
        self._on_state_change = listener

    # ------------------------------------------------------------------
    # Withdraw lifecycle
    # ------------------------------------------------------------------
    def drain(self, on_drained: Callable[["ServiceInstance"], None]) -> None:
        """Stop accepting work and call back once fully idle.

        The withdraw mechanism "assur[es] there is no query waiting or
        running on the underutilized service instance" before the core is
        released (Section 6.2).
        """
        if self._state is not InstanceState.RUNNING:
            raise InstanceStateError(
                f"instance {self.name} is {self._state.value}; cannot drain"
            )
        self._transition(InstanceState.DRAINING)
        self._on_drained = on_drained
        if self._current is None and not self._queue:
            self._finish_drain()

    def _finish_drain(self) -> None:
        self._transition(InstanceState.WITHDRAWN)
        self.core.remove_observer(self._on_frequency_change)
        if self._machine is not None:
            self._machine.remove_occupancy_listener(self._on_occupancy_change)
        callback = self._on_drained
        self._on_drained = None
        if callback is not None:
            callback(self)

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def crash(self) -> list[Job]:
        """Kill the instance immediately; return every orphaned job.

        The in-flight job (if any) is dropped mid-service and returned
        first, followed by the waiting queue in FIFO order.  Crashing is
        legal from RUNNING or DRAINING; a crash during a drain clears the
        pending ``on_drained`` callback so the drain can never *also*
        complete — the callback fires at most once per instance, ever.
        """
        self._transition(InstanceState.CRASHED)
        self._crash_level = self.core.level
        # A crash mid-drain must not later fire the drain callback.
        self._on_drained = None
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        orphans: list[Job] = []
        if self._current is not None:
            job = self._current
            job.record = None
            orphans.append(job)
            self._current = None
            self._remaining_work = 0.0
        for job in self._queue:
            job.record = None
            orphans.append(job)
        self._queue.clear()
        self._qlen = 0
        if self._busy_since is not None:
            self._busy_accumulated += self.sim.now - self._busy_since
            self._busy_since = None
        self._hung = False
        self.core.remove_observer(self._on_frequency_change)
        if self._machine is not None:
            self._machine.remove_occupancy_listener(self._on_occupancy_change)
        return orphans

    def hang(self) -> None:
        """Stop making progress without dying: serve nothing until repaired.

        The in-flight job's consumed work up to now is banked (the segment
        closes); new arrivals queue up behind it.  From the outside the
        instance looks alive — state stays RUNNING, the dispatcher may
        still route to it — which is exactly what makes hangs nastier
        than crashes.
        """
        if self._state is not InstanceState.RUNNING:
            raise InstanceStateError(
                f"instance {self.name} is {self._state.value}; cannot hang"
            )
        if self._hung:
            return
        self._hung = True
        if self._current is not None:
            elapsed = self.sim.now - self._segment_start
            consumed = elapsed * self._segment_rate
            self._remaining_work = max(0.0, self._remaining_work - consumed)
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None

    def repair(self) -> None:
        """Undo :meth:`hang`: resume serving from the banked progress."""
        if not self._hung:
            return
        self._hung = False
        if self._state is not InstanceState.RUNNING:
            return
        if self._current is not None:
            self._start_segment()
        elif self._queue:
            self._start_next()

    def degrade(self, factor: float) -> None:
        """Apply a work-rate multiplier (``factor < 1`` slows the instance).

        Models a sick-but-alive worker (thermal throttling, a noisy
        co-tenant).  ``degrade(1.0)`` restores full speed.  The job in
        service is rescaled immediately.
        """
        if factor <= 0.0:
            raise InstanceStateError(
                f"degrade factor must be > 0, got {factor}"
            )
        if exactly(factor, self._degrade_factor):
            return
        self._degrade_factor = factor
        self._degraded = not exactly(factor, 1.0)
        if not self._hung:
            self._rescale()

    # ------------------------------------------------------------------
    # Attempt cancellation (resilience layer)
    # ------------------------------------------------------------------
    def remove_waiting(self, job: Job) -> bool:
        """Pull a specific waiting job out of the queue (timeout path).

        Returns ``False`` when the job is not waiting here (already in
        service, already served, or stolen by another instance).
        """
        try:
            self._queue.remove(job)
        except ValueError:
            return False
        self._qlen -= 1
        job.record = None
        return True

    def abort_current(self, job: Job) -> bool:
        """Abandon ``job`` if it is the one in service; free the core.

        Used when an attempt times out mid-service: the work already
        consumed is wasted, the instance moves on to the next waiting
        job.  Returns ``False`` when ``job`` is not in service here.
        """
        if self._current is not job:
            return False
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self._current = None
        self._qlen -= 1
        self._remaining_work = 0.0
        job.record = None
        if self._queue and not self._hung:
            self._start_next()
        elif self._busy_since is not None:
            self._busy_accumulated += self.sim.now - self._busy_since
            self._busy_since = None
        if (
            self._state is InstanceState.DRAINING
            and self._current is None
            and not self._queue
        ):
            self._finish_drain()
        return True

    # ------------------------------------------------------------------
    # Serving internals
    # ------------------------------------------------------------------
    def _work_rate(self) -> float:
        """Work consumed per wall-clock second at the current conditions."""
        level = self.core._level
        cache = self._speedup_by_level
        cached = cache.get(level)
        if cached is None:
            cached = cache[level] = self.profile.speedup.speedup(
                self.core.frequency_ghz
            )
        rate = cached
        if self._machine is not None:
            rate /= self._machine.contention_slowdown()
        if self._degraded:
            rate *= self._degrade_factor
        return rate

    def _start_segment(self) -> None:
        """Open a constant-rate serving segment for the current job."""
        self._segment_start = self.sim.now
        self._segment_rate = self._work_rate()
        duration = self._remaining_work / self._segment_rate
        self._completion = self.sim.schedule(
            duration, self._complete, priority=EventPriority.COMPLETION
        )

    def _start_next(self) -> None:
        job = self._queue.popleft()
        self._current = job
        self._remaining_work = job.work
        assert job.record is not None
        job.record.start_time = self.sim.now
        job.record.service_level = self.level
        if self._busy_since is None:
            self._busy_since = self.sim.now
        self._start_segment()

    def _complete(self) -> None:
        job = self._current
        assert job is not None
        if not job.cancelled:
            assert job.record is not None
            job.record.finish_time = self.sim.now
            job.query.append_record(job.record)
            if self._tracer is not None:
                self._tracer.emit_record(job.query.qid, job.work, job.record)
            self._queries_served += 1
        self._current = None
        self._qlen -= 1
        self._completion = None
        self._remaining_work = 0.0
        if self._queue:
            self._start_next()
        else:
            if self._busy_since is not None:
                self._busy_accumulated += self.sim.now - self._busy_since
                self._busy_since = None
        if not job.cancelled:
            job.on_done(job.query)
        if (
            self._state is InstanceState.DRAINING
            and self._current is None
            and not self._queue
        ):
            self._finish_drain()

    def _rescale(self) -> None:
        """Close the current serving segment and reopen at the new rate.

        Called when anything that determines the work rate changes —
        a DVFS retune of this core, or (under a contention model) any
        occupancy change on the machine.
        """
        if self._current is None or self._hung:
            return
        elapsed = self.sim.now - self._segment_start
        consumed = elapsed * self._segment_rate
        self._remaining_work = max(0.0, self._remaining_work - consumed)
        if self._completion is not None:
            self._completion.cancel()
        self._start_segment()

    def _on_frequency_change(self, core: Core, old_level: int, new_level: int) -> None:
        self._rescale()

    def _on_occupancy_change(self, active_cores: int) -> None:
        self._rescale()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceInstance({self.name!r}, {self._state.value}, "
            f"{self.frequency_ghz:.1f} GHz, L={self.queue_length})"
        )
