"""A multi-stage application: an ordered pipeline of stages.

"A query to an IPA application flows through Automatic Speech Recognition,
Natural Language Processing, Image Matching and Question-Answering stages
to generate an intelligent response." (Section 1, Figure 1)

The application routes queries stage to stage, stamps arrival and
completion times, and notifies completion listeners — the command center
registers itself as one to ingest the per-instance latency records the
query carried along.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, StageError
from repro.units import exactly
from repro.cluster.machine import Machine
from repro.service.dispatch import Dispatcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs import Observability
    from repro.obs.metrics import MetricsRegistry
    from repro.service.resilience import RetryPolicy
    from repro.service.rpc import RpcFabric
    from repro.sim.rng import RandomStreams
from repro.service.instance import ServiceInstance
from repro.service.profile import ServiceProfile
from repro.service.query import Query
from repro.service.stage import Stage, StageKind
from repro.sim.engine import Simulator

__all__ = ["Application"]

CompletionListener = Callable[[Query], None]
FailureListener = Callable[[Query], None]
CrashListener = Callable[[Stage, ServiceInstance], None]


class Application:
    """An ordered pipeline of :class:`Stage` objects sharing one machine.

    ``hop_delay_s`` models the RPC/network delay between consecutive
    stages and on the final response (Section 8.5: "the joint design of
    service and query in our approach is extensible to include the
    network delays"); the paper's own evaluation uses zero.  Passing an
    :class:`~repro.service.rpc.RpcFabric` instead routes every hop — and
    the per-query statistics report to the command center — through the
    fabric, with its latency and message accounting; a fabric takes
    precedence over ``hop_delay_s``.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        machine: Machine,
        hop_delay_s: float = 0.0,
        fabric: Optional["RpcFabric"] = None,
        observability: Optional["Observability"] = None,
    ) -> None:
        if not name:
            raise ConfigurationError("application needs a non-empty name")
        if hop_delay_s < 0.0:
            raise ConfigurationError(
                f"hop delay must be >= 0, got {hop_delay_s}"
            )
        self.name = name
        self.sim = sim
        self.machine = machine
        self.hop_delay_s = float(hop_delay_s)
        self._zero_hop = exactly(self.hop_delay_s, 0.0)
        self.fabric = fabric
        self.observability = observability
        self._metrics = None if observability is None else observability.metrics
        self._stages: list[Stage] = []
        self._stage_by_name: dict[str, Stage] = {}
        # One pre-bound onward route per stage index: creating a fresh
        # closure per submit per stage is pure allocation churn, and the
        # routes never change once the topology is built.
        self._hop_callbacks: list[Callable[[Query], None]] = []
        self._iid_counter = itertools.count(0)
        self._listeners: list[CompletionListener] = []
        self._failure_listeners: list[FailureListener] = []
        self._crash_listeners: list[CrashListener] = []
        self._submitted = 0
        self._completed = 0
        self._timed_out = 0
        self._retried_completed = 0
        self._resilient = False

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_stage(
        self,
        profile: ServiceProfile,
        kind: StageKind = StageKind.PIPELINE,
        dispatcher: Optional[Dispatcher] = None,
    ) -> Stage:
        """Append a stage to the pipeline; queries flow in add order."""
        if profile.name in self._stage_by_name:
            raise ConfigurationError(
                f"application {self.name} already has a stage {profile.name!r}"
            )
        stage = Stage(
            name=profile.name,
            profile=profile,
            machine=self.machine,
            sim=self.sim,
            iid_counter=self._iid_counter,
            dispatcher=dispatcher,
            kind=kind,
            tracer=(
                None
                if self.observability is None
                else self.observability.tracer
            ),
        )
        self._stages.append(stage)
        self._stage_by_name[profile.name] = stage
        next_index = len(self._stages)
        self._hop_callbacks.append(
            lambda done, _next=next_index: self._hop(done, _next)
        )
        stage.add_crash_listener(self._on_instance_crash)
        return stage

    def attach_resilience(
        self,
        policy: "RetryPolicy",
        streams: "RandomStreams",
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        """Attach a timeout/retry layer to every stage of the pipeline.

        Each stage gets its own named stream (``resilience:<stage>``) so
        backoff jitter never perturbs the workload streams, and adding a
        stage's retries never shifts another stage's.
        """
        self._resilient = True
        for stage in self._stages:
            stage.attach_resilience(
                policy, streams.stream(f"resilience:{stage.name}"), metrics
            )

    @property
    def stages(self) -> tuple[Stage, ...]:
        return tuple(self._stages)

    def stage(self, name: str) -> Stage:
        try:
            return self._stage_by_name[name]
        except KeyError:
            raise StageError(
                f"application {self.name} has no stage {name!r}"
            ) from None

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self._stages]

    # ------------------------------------------------------------------
    # Instance-pool views
    # ------------------------------------------------------------------
    def all_instances(self) -> list[ServiceInstance]:
        """Every non-withdrawn instance across all stages."""
        return [inst for stage in self._stages for inst in stage.instances]

    def running_instances(self) -> list[ServiceInstance]:
        return [
            inst for stage in self._stages for inst in stage.running_instances()
        ]

    def total_power(self) -> float:
        return sum(stage.total_power() for stage in self._stages)

    def total_queue_length(self) -> int:
        return sum(stage.total_queue_length() for stage in self._stages)

    # ------------------------------------------------------------------
    # Query flow
    # ------------------------------------------------------------------
    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Subscribe to query completions (the command center does this)."""
        self._listeners.append(listener)

    def add_failure_listener(self, listener: FailureListener) -> None:
        """Subscribe to terminal query failures (retry budget exhausted)."""
        self._failure_listeners.append(listener)

    def add_crash_listener(self, listener: CrashListener) -> None:
        """Subscribe to instance crashes on any stage (health monitor)."""
        self._crash_listeners.append(listener)

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def completed(self) -> int:
        return self._completed

    @property
    def timed_out(self) -> int:
        """Queries that failed terminally after exhausting their retries."""
        return self._timed_out

    @property
    def retried_completed(self) -> int:
        """Completed queries that needed at least one retry on the way."""
        return self._retried_completed

    @property
    def in_flight(self) -> int:
        return self._submitted - self._completed - self._timed_out

    def submit(self, query: Query) -> None:
        """Inject a query into the first stage."""
        if not self._stages:
            raise StageError(f"application {self.name} has no stages")
        missing = [
            stage.name for stage in self._stages if stage.name not in query.demands
        ]
        if missing:
            raise StageError(
                f"query {query.qid} lacks demands for stages {missing}"
            )
        query.arrival_time = self.sim.now
        self._submitted += 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_queries_submitted_total", "Queries injected into the pipeline"
            ).inc(app=self.name)
        self._advance(query, 0)

    def _advance(self, query: Query, stage_index: int) -> None:
        if stage_index >= len(self._stages):
            query.completion_time = self.sim.now
            self._completed += 1
            if query.retried:
                self._retried_completed += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_queries_completed_total",
                    "Queries that finished the last pipeline stage",
                ).inc(app=self.name)
                self._metrics.histogram(
                    "repro_query_e2e_latency_seconds",
                    "End-to-end response latency",
                ).observe(query.end_to_end_latency)
            if self.fabric is not None:
                # The latency statistics travel to the command center as
                # one RPC message per query (Section 4.1, Figure 6).
                self.fabric.send(
                    f"stage:{self._stages[-1].name}",
                    "command-center",
                    lambda: self._notify(query),
                )
            else:
                self._notify(query)
            return
        stage = self._stages[stage_index]
        on_stage_done = self._hop_callbacks[stage_index]
        if self._resilient:
            stage.submit(query, on_stage_done, on_stage_failed=self._fail_query)
        else:
            stage.submit(query, on_stage_done)

    def _fail_query(self, query: Query) -> None:
        """Terminal failure: the query exhausted a stage's retry budget."""
        query.failed_time = self.sim.now
        self._timed_out += 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_queries_timed_out_total",
                "Queries that failed terminally after exhausting retries",
            ).inc(app=self.name)
        for listener in tuple(self._failure_listeners):
            listener(query)

    def _on_instance_crash(self, stage: Stage, instance: ServiceInstance) -> None:
        for listener in tuple(self._crash_listeners):
            listener(stage, instance)

    def _notify(self, query: Query) -> None:
        for listener in tuple(self._listeners):
            listener(query)

    def _hop(self, query: Query, next_index: int) -> None:
        """Route onward, paying the inter-stage network delay if any."""
        if self.fabric is not None:
            src = f"stage:{self._stages[next_index - 1].name}"
            dst = (
                f"stage:{self._stages[next_index].name}"
                if next_index < len(self._stages)
                else "user"
            )
            self.fabric.send(src, dst, lambda: self._advance(query, next_index))
        elif self._zero_hop:
            self._advance(query, next_index)
        else:
            self.sim.schedule(self.hop_delay_s, self._advance, query, next_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = " -> ".join(self.stage_names())
        return f"Application({self.name!r}: {names})"
