"""Per-stage query timeout, retry and crash-requeue machinery.

PowerChief's service/query joint design assumes every dispatched query
eventually comes back with a latency record.  Under fault injection that
assumption breaks three ways: the serving instance crashes (the job is
orphaned), the instance hangs or is degraded (the job never finishes),
or no instance is available at dispatch time (the pool is mid-respawn).
:class:`StageResilience` closes all three holes with the classic RPC
discipline — a per-attempt timeout, seeded exponential backoff between
retries, and a bounded retry budget — so that every admitted query
settles as *completed* or *timed-out*, never silently lost.

The layer is strictly opt-in: a stage without an attached
:class:`StageResilience` routes queries exactly as before, byte for
byte.  All randomness (backoff jitter) comes from a dedicated
:class:`~repro.sim.rng.SeededStream`, so attaching the layer never
perturbs the workload streams and identical seeds reproduce identical
retry schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError
from repro.units import exactly
from repro.service.instance import Job, ServiceInstance
from repro.service.query import Query
from repro.service.records import AttemptRecord
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rng import SeededStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.metrics import MetricsRegistry
    from repro.service.stage import Stage

__all__ = ["RetryPolicy", "StageResilience"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry discipline for one stage.

    ``timeout_s`` bounds a single attempt (dispatch to completion);
    a timed-out attempt is retried after exponential backoff
    ``min(backoff_max_s, backoff_base_s * backoff_factor**(n-1))``
    with ``±jitter_fraction`` seeded jitter, up to ``max_attempts``
    total attempts, after which the query fails terminally.
    ``redispatch_delay_s`` is the pause before re-probing a stage that
    momentarily has no running instance (crash-to-respawn window).
    """

    timeout_s: float = 10.0
    max_attempts: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.1
    redispatch_delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout_s <= 0.0:
            raise ConfigurationError(
                f"attempt timeout must be > 0, got {self.timeout_s}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry budget needs >= 1 attempt, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0.0 or self.backoff_max_s < self.backoff_base_s:
            raise ConfigurationError(
                "backoff must satisfy 0 <= base <= max, got "
                f"base={self.backoff_base_s}, max={self.backoff_max_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                f"jitter fraction must be in [0, 1), got {self.jitter_fraction}"
            )
        if self.redispatch_delay_s <= 0.0:
            raise ConfigurationError(
                f"redispatch delay must be > 0, got {self.redispatch_delay_s}"
            )

    def backoff_delay(self, attempt: int, stream: SeededStream) -> float:
        """Backoff before attempt number ``attempt`` (attempt 2 = first retry)."""
        exponent = max(0, attempt - 2)
        base = min(
            self.backoff_max_s, self.backoff_base_s * self.backoff_factor**exponent
        )
        if exactly(self.jitter_fraction, 0.0):
            return base
        return base * (1.0 + self.jitter_fraction * stream.uniform(-1.0, 1.0))


class _Attempt:
    """Book-keeping for one query (or shard) being pushed through a stage."""

    __slots__ = (
        "query",
        "work",
        "on_done",
        "on_failed",
        "number",
        "job",
        "instance",
        "timeout_event",
        "settled",
        "dispatched_time",
    )

    def __init__(
        self,
        query: Query,
        work: float,
        on_done: Callable[[Query], None],
        on_failed: Callable[[Query], None],
    ) -> None:
        self.query = query
        self.work = work
        self.on_done = on_done
        self.on_failed = on_failed
        self.number = 1
        self.job: Optional[Job] = None
        self.instance: Optional[ServiceInstance] = None
        self.timeout_event: Optional[Event] = None
        self.settled = False
        self.dispatched_time = 0.0


class StageResilience:
    """Drives every query of one stage through the retry discipline."""

    def __init__(
        self,
        stage: "Stage",
        policy: RetryPolicy,
        stream: SeededStream,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.stage = stage
        self.policy = policy
        self.stream = stream
        self.metrics = metrics
        self.sim: Simulator = stage.sim
        self._retries = 0
        self._timeouts = 0
        self._crash_requeues = 0
        self._failures = 0
        self._completed_after_retry = 0
        self._backoff_seconds = 0.0

    def _count_attempt(self, outcome: str) -> None:
        """Mirror one settled attempt into the registry, by outcome."""
        if self.metrics is not None:
            self.metrics.counter(
                "repro_attempts_total",
                "Dispatch attempts settled, by outcome",
            ).inc(stage=self.stage.name, outcome=outcome)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def retries(self) -> int:
        """Attempts re-dispatched after an attempt timeout."""
        return self._retries

    @property
    def timeouts(self) -> int:
        """Attempts that hit the per-attempt timeout."""
        return self._timeouts

    @property
    def crash_requeues(self) -> int:
        """Jobs re-dispatched because their instance crashed."""
        return self._crash_requeues

    @property
    def failures(self) -> int:
        """Attempts that exhausted the retry budget (terminal failures)."""
        return self._failures

    @property
    def completed_after_retry(self) -> int:
        """Attempts that completed on a retry (attempt number > 1)."""
        return self._completed_after_retry

    @property
    def backoff_seconds(self) -> float:
        """Total deliberate backoff delay this layer inserted."""
        return self._backoff_seconds

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        work: float,
        on_done: Callable[[Query], None],
        on_failed: Callable[[Query], None],
    ) -> _Attempt:
        """Push one unit of work through the stage under the retry policy."""
        attempt = _Attempt(query, work, on_done, on_failed)
        self._begin_attempt(attempt)
        return attempt

    def requeue_orphans(self, jobs: list[Job]) -> list[Job]:
        """Re-dispatch crash-orphaned jobs that this layer is tracking.

        Returns the jobs it does *not* own (submitted outside the
        resilience layer); the stage falls back to direct re-dispatch for
        those.  The re-dispatch reuses the attempt's live timeout — a
        crash does not grant the query extra time.
        """
        leftovers: list[Job] = []
        for job in jobs:
            attempt = job.attempt
            if not isinstance(attempt, _Attempt):
                leftovers.append(job)
                continue
            if attempt.settled or job.cancelled:
                continue
            job.cancelled = True
            self._crash_requeues += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_crash_requeues_total",
                    "Jobs requeued after an instance crash",
                ).inc(stage=self.stage.name)
            attempt.query.append_attempt(
                AttemptRecord(
                    stage_name=self.stage.name,
                    attempt=attempt.number,
                    dispatched_time=attempt.dispatched_time,
                    instance_name=(
                        None if attempt.instance is None else attempt.instance.name
                    ),
                    outcome="crash-requeue",
                    settled_time=self.sim.now,
                )
            )
            self._count_attempt("crash-requeue")
            self._place(attempt)
        return leftovers

    def cancel(self, attempt: _Attempt) -> None:
        """Abandon a live attempt (a sibling scatter-gather shard failed)."""
        if attempt.settled:
            return
        attempt.settled = True
        if attempt.timeout_event is not None:
            attempt.timeout_event.cancel()
            attempt.timeout_event = None
        self._abandon_job(attempt)
        attempt.query.append_attempt(
            AttemptRecord(
                stage_name=self.stage.name,
                attempt=attempt.number,
                dispatched_time=attempt.dispatched_time,
                instance_name=(
                    None if attempt.instance is None else attempt.instance.name
                ),
                outcome="abandoned",
                settled_time=self.sim.now,
            )
        )
        self._count_attempt("abandoned")

    # ------------------------------------------------------------------
    # Attempt lifecycle
    # ------------------------------------------------------------------
    def _begin_attempt(self, attempt: _Attempt) -> None:
        """Arm the per-attempt timeout, then place the job."""
        if attempt.settled:
            return
        attempt.timeout_event = self.sim.schedule(
            self.policy.timeout_s, self._on_timeout, attempt
        )
        self._place(attempt)

    def _place(self, attempt: _Attempt) -> None:
        """Dispatch (or re-dispatch) the attempt onto a running instance."""
        if attempt.settled:
            return
        running = self.stage.running_instances()
        attempt.dispatched_time = self.sim.now
        if not running:
            # Pool is momentarily empty (crash-to-respawn window): record
            # the miss and re-probe shortly.  The attempt's timeout keeps
            # running, so a stage that stays dark converts the query into
            # an honest timeout instead of wedging it forever.
            attempt.job = None
            attempt.instance = None
            attempt.query.append_attempt(
                AttemptRecord(
                    stage_name=self.stage.name,
                    attempt=attempt.number,
                    dispatched_time=self.sim.now,
                    instance_name=None,
                    outcome="no-instance",
                    settled_time=self.sim.now,
                )
            )
            self._count_attempt("no-instance")
            self.sim.schedule(self.policy.redispatch_delay_s, self._place, attempt)
            return
        instance = self.stage.dispatcher.select(running)
        job = Job(
            query=attempt.query,
            work=attempt.work,
            on_done=lambda _query, _attempt=attempt: self._on_job_done(_attempt),
            attempt=attempt,
        )
        attempt.job = job
        attempt.instance = instance
        instance.enqueue(job)

    def _on_job_done(self, attempt: _Attempt) -> None:
        if attempt.settled:
            return
        attempt.settled = True
        if attempt.timeout_event is not None:
            attempt.timeout_event.cancel()
            attempt.timeout_event = None
        if attempt.number > 1:
            self._completed_after_retry += 1
        attempt.query.append_attempt(
            AttemptRecord(
                stage_name=self.stage.name,
                attempt=attempt.number,
                dispatched_time=attempt.dispatched_time,
                instance_name=(
                    None if attempt.instance is None else attempt.instance.name
                ),
                outcome="completed",
                settled_time=self.sim.now,
            )
        )
        self._count_attempt("completed")
        attempt.on_done(attempt.query)

    def _on_timeout(self, attempt: _Attempt) -> None:
        if attempt.settled:
            return
        attempt.timeout_event = None
        self._timeouts += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_attempt_timeouts_total",
                "Dispatch attempts that hit the timeout",
            ).inc(stage=self.stage.name)
        self._abandon_job(attempt)
        attempt.query.append_attempt(
            AttemptRecord(
                stage_name=self.stage.name,
                attempt=attempt.number,
                dispatched_time=attempt.dispatched_time,
                instance_name=(
                    None if attempt.instance is None else attempt.instance.name
                ),
                outcome="timed-out",
                settled_time=self.sim.now,
            )
        )
        self._count_attempt("timed-out")
        if attempt.number >= self.policy.max_attempts:
            attempt.settled = True
            self._failures += 1
            attempt.on_failed(attempt.query)
            return
        attempt.number += 1
        attempt.query.retried = True
        self._retries += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_queries_retried_total",
                "Attempts re-dispatched after a timeout",
            ).inc(stage=self.stage.name)
        delay = self.policy.backoff_delay(attempt.number, self.stream)
        self._backoff_seconds += delay
        if self.metrics is not None:
            self.metrics.counter(
                "repro_retry_backoff_seconds_total",
                "Deliberate backoff delay inserted between attempts",
            ).inc(delay, stage=self.stage.name)
        self.sim.schedule(delay, self._begin_attempt, attempt)

    def _abandon_job(self, attempt: _Attempt) -> None:
        """Detach the attempt's job from wherever it currently sits."""
        job = attempt.job
        if job is None:
            return
        job.cancelled = True
        instance = attempt.instance
        if instance is not None and not instance.abort_current(job):
            instance.remove_waiting(job)
        attempt.job = None
