"""Demand distributions: how much work a query brings to a stage.

Demands are expressed in seconds of execution at the *slowest* ladder
frequency — the same normalisation the paper uses for its offline
profiles ("execution times normalized to the service running at the
slowest frequency", Section 5.3).  Actual serving time is the demand
scaled by the instance's speedup curve at its current frequency.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.sim.rng import SeededStream

__all__ = [
    "DemandDistribution",
    "DeterministicDemand",
    "ExponentialDemand",
    "LogNormalDemand",
]


class DemandDistribution(ABC):
    """Distribution of per-query work for one service."""

    @abstractmethod
    def sample(self, rng: SeededStream) -> float:
        """Draw one demand, in seconds at the slowest frequency."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected demand (used to size load levels against capacity)."""

    @property
    @abstractmethod
    def cv2(self) -> float:
        """Squared coefficient of variation (drives M/G/1 waiting times)."""


class DeterministicDemand(DemandDistribution):
    """Every query brings exactly the same work (useful in tests)."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0.0:
            raise ConfigurationError(f"demand must be > 0, got {seconds}")
        self._seconds = float(seconds)

    def sample(self, rng: SeededStream) -> float:
        return self._seconds

    @property
    def mean(self) -> float:
        return self._seconds

    @property
    def cv2(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicDemand({self._seconds}s)"


class ExponentialDemand(DemandDistribution):
    """Memoryless demand — the classic M/M/1-style serving assumption."""

    def __init__(self, mean_seconds: float) -> None:
        if mean_seconds <= 0.0:
            raise ConfigurationError(f"mean demand must be > 0, got {mean_seconds}")
        self._mean = float(mean_seconds)

    def sample(self, rng: SeededStream) -> float:
        return rng.exponential(self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv2(self) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExponentialDemand(mean={self._mean}s)"


class LogNormalDemand(DemandDistribution):
    """Right-skewed demand with occasional heavy queries.

    Log-normal serving demands are the standard model for user-facing
    query work (most queries are cheap, a tail is expensive) and are what
    make the 99th-percentile latency interesting; ``sigma`` controls the
    heaviness of the tail.
    """

    def __init__(self, mean_seconds: float, sigma: float = 0.5) -> None:
        if mean_seconds <= 0.0:
            raise ConfigurationError(f"mean demand must be > 0, got {mean_seconds}")
        if sigma < 0.0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._mean = float(mean_seconds)
        self._sigma = float(sigma)

    def sample(self, rng: SeededStream) -> float:
        return rng.lognormal_mean(self._mean, self._sigma)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def cv2(self) -> float:
        import math

        return math.exp(self._sigma * self._sigma) - 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogNormalDemand(mean={self._mean}s, sigma={self._sigma})"
