"""Moving-window latency statistics.

"PowerChief leverages a moving time window to calculate this latency
metric for each service instance" (Section 4.2).  A :class:`LatencyWindow`
holds (finish_time, queuing, serving) samples and evicts everything older
than the window span; averages and percentiles are computed over whatever
remains.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.util.percentile import percentile

__all__ = ["LatencyWindow"]


class LatencyWindow:
    """Time-bounded window of per-query (queuing, serving) samples."""

    def __init__(self, window_s: float) -> None:
        if window_s <= 0.0:
            raise ConfigurationError(f"window must be > 0 s, got {window_s}")
        self.window_s = float(window_s)
        self._samples: deque[tuple[float, float, float]] = deque()
        self._total_ingested = 0

    # ------------------------------------------------------------------
    def add(self, time: float, queuing: float, serving: float) -> None:
        """Record one completed query's stats, stamped at ``time``."""
        if self._samples and time < self._samples[-1][0]:
            # Records arrive when the *pipeline* completes, so a slow later
            # stage can deliver an earlier stage's sample out of order.
            # Insert in place to keep eviction correct.
            self._insert_sorted(time, queuing, serving)
        else:
            self._samples.append((time, queuing, serving))
        self._total_ingested += 1
        self._evict(time)

    def _insert_sorted(self, time: float, queuing: float, serving: float) -> None:
        items = list(self._samples)
        index = len(items)
        while index > 0 and items[index - 1][0] > time:
            index -= 1
        items.insert(index, (time, queuing, serving))
        self._samples = deque(items)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    # ------------------------------------------------------------------
    def count(self, now: float) -> int:
        self._evict(now)
        return len(self._samples)

    @property
    def total_ingested(self) -> int:
        """All samples ever added, including evicted ones."""
        return self._total_ingested

    def _values(self, now: float, index: int) -> list[float]:
        self._evict(now)
        return [sample[index] for sample in self._samples]

    def avg_queuing(self, now: float) -> Optional[float]:
        values = self._values(now, 1)
        if not values:
            return None
        return sum(values) / len(values)

    def avg_serving(self, now: float) -> Optional[float]:
        values = self._values(now, 2)
        if not values:
            return None
        return sum(values) / len(values)

    def avg_processing(self, now: float) -> Optional[float]:
        self._evict(now)
        if not self._samples:
            return None
        total = sum(q + s for _, q, s in self._samples)
        return total / len(self._samples)

    def p99_queuing(self, now: float) -> Optional[float]:
        values = self._values(now, 1)
        if not values:
            return None
        return percentile(values, 99.0)

    def p99_serving(self, now: float) -> Optional[float]:
        values = self._values(now, 2)
        if not values:
            return None
        return percentile(values, 99.0)

    def p99_processing(self, now: float) -> Optional[float]:
        self._evict(now)
        if not self._samples:
            return None
        return percentile([q + s for _, q, s in self._samples], 99.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyWindow({self.window_s}s, {len(self._samples)} samples)"
