"""Moving-window latency statistics.

"PowerChief leverages a moving time window to calculate this latency
metric for each service instance" (Section 4.2).  A :class:`LatencyWindow`
holds (finish_time, queuing, serving) samples and evicts everything older
than the window span; averages and percentiles are computed over whatever
remains.

The store is a pair of parallel lists kept sorted by time — ``_times``
for bisection, ``_samples`` for the payloads — plus a head offset that
eviction advances instead of deleting from the front.  Out-of-order
arrivals (a slow later stage delivering an earlier stage's sample late)
land via ``bisect_right``, which preserves the historical contract of
inserting *after* any equal timestamps so scheduling order breaks ties.

Aggregates are deliberately recomputed from the live slice on each read
rather than maintained as running sums: incremental sums accumulate in a
different floating-point order than a fresh left-to-right pass, and the
golden seed-equivalence suite requires byte-identical results.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from repro.errors import ConfigurationError
from repro.util.percentile import percentile

__all__ = ["LatencyWindow"]

#: Compact the dead prefix once it is this long *and* at least half the
#: store; the amortised cost stays O(1) per eviction.
_COMPACT_MIN = 64


class LatencyWindow:
    """Time-bounded window of per-query (queuing, serving) samples."""

    __slots__ = ("window_s", "_times", "_samples", "_head", "_total_ingested")

    def __init__(self, window_s: float) -> None:
        if window_s <= 0.0:
            raise ConfigurationError(f"window must be > 0 s, got {window_s}")
        self.window_s = float(window_s)
        self._times: list[float] = []
        self._samples: list[tuple[float, float, float]] = []
        self._head = 0
        self._total_ingested = 0

    # ------------------------------------------------------------------
    def add(self, time: float, queuing: float, serving: float) -> None:
        """Record one completed query's stats, stamped at ``time``."""
        times = self._times
        if times and time < times[-1]:
            # Records arrive when the *pipeline* completes, so a slow later
            # stage can deliver an earlier stage's sample out of order.
            # Insert in place to keep eviction correct.
            index = bisect_right(times, time, self._head)
            times.insert(index, time)
            self._samples.insert(index, (time, queuing, serving))
        else:
            times.append(time)
            self._samples.append((time, queuing, serving))
        self._total_ingested += 1
        self._evict(time)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        times = self._times
        head = self._head
        end = len(times)
        while head < end and times[head] < cutoff:
            head += 1
        if head != self._head:
            self._head = head
            if head >= _COMPACT_MIN and head * 2 >= end:
                del times[:head]
                del self._samples[:head]
                self._head = 0

    # ------------------------------------------------------------------
    def count(self, now: float) -> int:
        self._evict(now)
        return len(self._times) - self._head

    @property
    def total_ingested(self) -> int:
        """All samples ever added, including evicted ones."""
        return self._total_ingested

    def _values(self, now: float, index: int) -> list[float]:
        self._evict(now)
        head = self._head
        return [sample[index] for sample in self._samples[head:]]

    def avg_queuing(self, now: float) -> Optional[float]:
        values = self._values(now, 1)
        if not values:
            return None
        return sum(values) / len(values)

    def avg_serving(self, now: float) -> Optional[float]:
        values = self._values(now, 2)
        if not values:
            return None
        return sum(values) / len(values)

    def avg_processing(self, now: float) -> Optional[float]:
        self._evict(now)
        live = self._samples[self._head :]
        if not live:
            return None
        total = sum(q + s for _, q, s in live)
        return total / len(live)

    def p99_queuing(self, now: float) -> Optional[float]:
        values = self._values(now, 1)
        if not values:
            return None
        return percentile(values, 99.0)

    def p99_serving(self, now: float) -> Optional[float]:
        values = self._values(now, 2)
        if not values:
            return None
        return percentile(values, 99.0)

    def p99_processing(self, now: float) -> Optional[float]:
        self._evict(now)
        live = self._samples[self._head :]
        if not live:
            return None
        return percentile([q + s for _, q, s in live], 99.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = len(self._times) - self._head
        return f"LatencyWindow({self.window_s}s, {live} samples)"
