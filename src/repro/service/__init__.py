"""Multi-stage service substrate.

Implements the application model of the paper: queries
(:class:`Query`) carrying per-instance latency records
(:class:`StageRecord`) flow through an ordered pipeline of stages
(:class:`Stage`), each a pool of single-core service instances
(:class:`ServiceInstance`).  The :class:`CommandCenter` ingests the
records when queries complete and serves windowed latency statistics to
the controllers.
"""

from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.demand import (
    DemandDistribution,
    DeterministicDemand,
    ExponentialDemand,
    LogNormalDemand,
)
from repro.service.dispatch import (
    Dispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    ShortestQueueDispatcher,
)
from repro.service.instance import InstanceState, Job, ServiceInstance
from repro.service.profile import (
    PowerLawSpeedup,
    ServiceProfile,
    SpeedupCurve,
    TabularSpeedup,
)
from repro.service.query import Query
from repro.service.records import AttemptRecord, StageRecord
from repro.service.resilience import RetryPolicy, StageResilience
from repro.service.rpc import RpcFabric
from repro.service.stage import Stage, StageKind
from repro.service.window import LatencyWindow

__all__ = [
    "Application",
    "CommandCenter",
    "DemandDistribution",
    "DeterministicDemand",
    "ExponentialDemand",
    "LogNormalDemand",
    "Dispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "ShortestQueueDispatcher",
    "InstanceState",
    "Job",
    "ServiceInstance",
    "PowerLawSpeedup",
    "ServiceProfile",
    "SpeedupCurve",
    "TabularSpeedup",
    "Query",
    "AttemptRecord",
    "StageRecord",
    "RetryPolicy",
    "StageResilience",
    "RpcFabric",
    "Stage",
    "StageKind",
    "LatencyWindow",
]
