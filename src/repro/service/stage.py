"""A processing stage: a pool of service instances behind a dispatcher.

"To sustain the large amount of user queries, each stage consists of
multiple service instances to alleviate the load." (Section 1, Figure 3)

Two stage kinds are supported:

* ``PIPELINE`` — the default: each query is served by exactly one instance
  of the stage (Sirius's ASR/IMM/QA, NLP's POS/PSG/SRL).
* ``SCATTER_GATHER`` — every query fans out to *all* running instances,
  each serving an equal shard, and the stage completes when the last shard
  finishes.  This models Web Search's leaf tier (Table 3: "1 aggregation
  service and 10 leaf services"), where withdrawing a leaf redistributes
  its shard of the index across the survivors.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import StageError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceBuffer
    from repro.sim.rng import SeededStream
from repro.cluster.machine import Machine
from repro.service.dispatch import Dispatcher, ShortestQueueDispatcher
from repro.service.instance import InstanceState, Job, ServiceInstance
from repro.service.profile import ServiceProfile
from repro.service.query import Query
from repro.service.resilience import RetryPolicy, StageResilience
from repro.sim.engine import Simulator

__all__ = ["Stage", "StageKind"]

CrashListener = Callable[["Stage", ServiceInstance], None]


class StageKind(enum.Enum):
    """How queries map onto the stage's instance pool."""

    PIPELINE = "pipeline"
    SCATTER_GATHER = "scatter_gather"


class Stage:
    """One stage of a multi-stage application."""

    def __init__(
        self,
        name: str,
        profile: ServiceProfile,
        machine: Machine,
        sim: Simulator,
        iid_counter: "itertools.count[int]",
        dispatcher: Optional[Dispatcher] = None,
        kind: StageKind = StageKind.PIPELINE,
        tracer: Optional["TraceBuffer"] = None,
    ) -> None:
        if not name:
            raise StageError("stage needs a non-empty name")
        self.name = name
        self.profile = profile
        self.machine = machine
        self.sim = sim
        self.kind = kind
        self.tracer = tracer
        self.dispatcher = dispatcher if dispatcher is not None else ShortestQueueDispatcher()
        self._iid_counter = iid_counter
        self._name_counter = itertools.count(1)
        self._instances: list[ServiceInstance] = []
        # Cached running-instance list, rebuilt lazily; invalidated on
        # every pool mutation and every instance lifecycle transition
        # (each instance notifies via its state listener).  Callers of
        # the private accessor must treat the list as read-only.
        self._running_cache: Optional[list[ServiceInstance]] = None
        self._launches = 0
        self._withdrawals = 0
        self._crashes = 0
        self._orphaned_jobs = 0
        self._resilience: Optional[StageResilience] = None
        self._crash_listeners: list[CrashListener] = []

    # ------------------------------------------------------------------
    # Pool introspection
    # ------------------------------------------------------------------
    @property
    def instances(self) -> tuple[ServiceInstance, ...]:
        """All non-withdrawn instances (running and draining)."""
        return tuple(self._instances)

    def running_instances(self) -> list[ServiceInstance]:
        return list(self._running())

    def _running(self) -> list[ServiceInstance]:
        """The cached running pool; treat the returned list as read-only."""
        cache = self._running_cache
        if cache is None:
            cache = self._running_cache = [
                inst
                for inst in self._instances
                if inst._state is InstanceState.RUNNING
            ]
        return cache

    def _invalidate_running_cache(self, _instance: ServiceInstance) -> None:
        self._running_cache = None

    @property
    def instance_count(self) -> int:
        return len(self._instances)

    @property
    def launches(self) -> int:
        """Total instances launched into this stage over the run."""
        return self._launches

    @property
    def withdrawals(self) -> int:
        """Total instances withdrawn from this stage over the run."""
        return self._withdrawals

    @property
    def crashes(self) -> int:
        """Total instances killed by fault injection over the run."""
        return self._crashes

    @property
    def orphaned_jobs(self) -> int:
        """Jobs lost to crashes with no surviving instance and no resilience.

        Must stay zero whenever a :class:`StageResilience` is attached —
        the zero-orphan invariant the chaos harness asserts.
        """
        return self._orphaned_jobs

    @property
    def resilience(self) -> Optional[StageResilience]:
        """The attached retry layer, if any."""
        return self._resilience

    def total_power(self) -> float:
        return sum(inst.power_watts for inst in self._instances)

    def total_queue_length(self) -> int:
        return sum(inst.queue_length for inst in self._instances)

    def snapshot(self) -> dict[str, float]:
        """One stream-probe sample: pool size, backlog and draw right now."""
        return {
            "instances": float(len(self._instances)),
            "running": float(len(self._running())),
            "queued": float(self.total_queue_length()),
            "watts": float(self.total_power()),
        }

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def launch_instance(self, level: int) -> ServiceInstance:
        """Start a new instance at the given ladder level.

        Acquires a core from the machine; power-budget enforcement is the
        caller's job (the controller checks before boosting).
        """
        core = self.machine.acquire_core(level)
        name = f"{self.name}_{next(self._name_counter)}"
        instance = ServiceInstance(
            iid=next(self._iid_counter),
            name=name,
            stage_name=self.name,
            profile=self.profile,
            core=core,
            sim=self.sim,
            machine=self.machine,
            tracer=self.tracer,
        )
        instance.set_state_listener(self._invalidate_running_cache)
        self._instances.append(instance)
        self._running_cache = None
        self._launches += 1
        return instance

    def withdraw_instance(
        self,
        instance: ServiceInstance,
        redirect_to: Optional[ServiceInstance] = None,
    ) -> None:
        """Withdraw an instance: redirect its waiting load, drain, release.

        "The additional load is then redirected to the fastest service
        instance that has the least possibility to be overwhelmed"
        (Section 6.2): the PowerChief withdrawer passes that instance as
        ``redirect_to``; without it the stage's dispatcher spreads the
        jobs over the remaining pool.  A stage never drops to zero
        instances ("an underutilized instance can be withdrew only if there
        are more than one instance within the same stage").
        """
        if instance not in self._instances:
            raise StageError(f"{instance.name} is not in stage {self.name}")
        if not instance.running:
            raise StageError(f"{instance.name} is already {instance.state.value}")
        remaining = [inst for inst in self.running_instances() if inst is not instance]
        if not remaining:
            raise StageError(
                f"cannot withdraw the only instance of stage {self.name}"
            )
        if redirect_to is not None and redirect_to not in remaining:
            raise StageError(
                f"redirect target {redirect_to.name} is not a running "
                f"instance of stage {self.name}"
            )
        for job in instance.take_all_waiting():
            target = (
                redirect_to
                if redirect_to is not None
                else self.dispatcher.select(remaining)
            )
            target.enqueue(job)
        self._withdrawals += 1
        instance.drain(self._on_drained)

    def _on_drained(self, instance: ServiceInstance) -> None:
        self.machine.release_core(instance.core)
        self._instances.remove(instance)
        self._running_cache = None

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def add_crash_listener(self, listener: CrashListener) -> None:
        """Subscribe to instance crashes (the health monitor does this)."""
        self._crash_listeners.append(listener)

    def crash_instance(self, instance: ServiceInstance) -> int:
        """Kill an instance; requeue its orphaned jobs; return orphan count.

        Orphans are re-dispatched through the resilience layer when one
        is attached (preserving each attempt's live timeout), otherwise
        directly onto surviving running instances.  Only when the stage
        has neither resilience nor survivors are jobs truly lost — the
        loss is counted in :attr:`orphaned_jobs` rather than silently
        dropped.
        """
        if instance not in self._instances:
            raise StageError(f"{instance.name} is not in stage {self.name}")
        if instance.state not in (InstanceState.RUNNING, InstanceState.DRAINING):
            raise StageError(
                f"{instance.name} is already {instance.state.value}; cannot crash"
            )
        orphans = instance.crash()
        self._crashes += 1
        self._instances.remove(instance)
        self._running_cache = None
        self.machine.release_core(instance.core)
        if self._resilience is not None:
            unowned = self._resilience.requeue_orphans(orphans)
        else:
            unowned = orphans
        survivors = self.running_instances()
        lost = 0
        for job in unowned:
            if job.cancelled:
                continue
            if survivors:
                self.dispatcher.select(survivors).enqueue(job)
            else:
                lost += 1
        self._orphaned_jobs += lost
        for listener in tuple(self._crash_listeners):
            listener(self, instance)
        return len(orphans)

    def attach_resilience(
        self,
        policy: RetryPolicy,
        stream: "SeededStream",
        metrics: Optional["MetricsRegistry"] = None,
    ) -> StageResilience:
        """Route every future submit through the timeout/retry discipline."""
        if self._resilience is not None:
            raise StageError(f"stage {self.name} already has a resilience layer")
        self._resilience = StageResilience(self, policy, stream, metrics)
        return self._resilience

    # ------------------------------------------------------------------
    # Query flow
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        on_stage_done: Callable[[Query], None],
        on_stage_failed: Optional[Callable[[Query], None]] = None,
    ) -> None:
        """Route a query into the stage; ``on_stage_done`` fires on completion.

        With a resilience layer attached, ``on_stage_failed`` fires
        instead when the retry budget is exhausted; an empty instance
        pool is then tolerated (the layer re-probes until an instance
        respawns or the attempt times out).  Without one, the legacy
        contract holds: the pool must be non-empty and the stage never
        gives up on a query.
        """
        if self._resilience is not None:
            if on_stage_failed is None:
                raise StageError(
                    f"stage {self.name} has a resilience layer; submit needs "
                    f"an on_stage_failed callback"
                )
            self._submit_resilient(query, on_stage_done, on_stage_failed)
            return
        running = self._running()
        if not running:
            raise StageError(f"stage {self.name} has no running instances")
        if self.kind is StageKind.PIPELINE:
            self._submit_pipeline(query, running, on_stage_done)
        else:
            self._submit_scatter_gather(query, running, on_stage_done)

    def _submit_pipeline(
        self,
        query: Query,
        running: list[ServiceInstance],
        on_stage_done: Callable[[Query], None],
    ) -> None:
        work = query.demand_for(self.name)
        instance = self.dispatcher.select(running)
        instance.enqueue(Job(query=query, work=work, on_done=on_stage_done))

    def _submit_scatter_gather(
        self,
        query: Query,
        running: list[ServiceInstance],
        on_stage_done: Callable[[Query], None],
    ) -> None:
        total_work = query.demand_for(self.name)
        shard_work = total_work / len(running)
        outstanding = len(running)

        def shard_done(done_query: Query) -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                on_stage_done(done_query)

        for instance in running:
            instance.enqueue(Job(query=query, work=shard_work, on_done=shard_done))

    def _submit_resilient(
        self,
        query: Query,
        on_stage_done: Callable[[Query], None],
        on_stage_failed: Callable[[Query], None],
    ) -> None:
        resilience = self._resilience
        assert resilience is not None
        work = query.demand_for(self.name)
        if self.kind is StageKind.PIPELINE:
            resilience.submit(query, work, on_stage_done, on_stage_failed)
            return
        # Scatter-gather: shard over the pool as seen at submit time; each
        # shard retries independently.  One shard exhausting its budget
        # fails the whole query and abandons the surviving siblings.  With
        # the pool momentarily empty, degrade to a single full-work shard —
        # a retry will find the respawned pool.
        shard_count = max(1, len(self.running_instances()))
        shard_work = work / shard_count
        outstanding = shard_count
        failed = False
        attempts = []

        def shard_done(done_query: Query) -> None:
            nonlocal outstanding
            if failed:
                return
            outstanding -= 1
            if outstanding == 0:
                on_stage_done(done_query)

        def shard_failed(failed_query: Query) -> None:
            nonlocal failed
            if failed:
                return
            failed = True
            for sibling in attempts:
                resilience.cancel(sibling)
            on_stage_failed(failed_query)

        for _ in range(shard_count):
            attempts.append(
                resilience.submit(query, shard_work, shard_done, shard_failed)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stage({self.name!r}, {self.kind.value}, "
            f"{len(self._instances)} instances)"
        )
