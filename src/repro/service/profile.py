"""Service profiles: demand plus frequency-speedup behaviour.

PowerChief "use[s] offline profiling to acquire the latency reduction of
each service at different frequencies, which is then used during runtime
to estimate the latency improvement with frequency boosting"
(Section 5.2).  A :class:`ServiceProfile` is that offline profile: the
demand distribution of the service and its :class:`SpeedupCurve`, i.e.
normalized execution time as a function of core frequency.

Normalisation follows the paper (Section 5.3): execution time at the
slowest ladder frequency is 1.0; faster frequencies give values < 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.errors import ConfigurationError, FrequencyError
from repro.service.demand import DemandDistribution

__all__ = [
    "SpeedupCurve",
    "PowerLawSpeedup",
    "TabularSpeedup",
    "ServiceProfile",
]


class SpeedupCurve(ABC):
    """Normalized execution time of a service versus core frequency."""

    @abstractmethod
    def normalized_time(self, freq_ghz: float) -> float:
        """Execution-time ratio relative to the slowest frequency (<= 1)."""

    def speedup(self, freq_ghz: float) -> float:
        """Speedup factor relative to the slowest frequency (>= 1)."""
        return 1.0 / self.normalized_time(freq_ghz)

    def alpha(self, freq_low_ghz: float, freq_high_ghz: float) -> float:
        """The paper's ``alpha_lh``: execution-time ratio between two levels.

        ``alpha`` multiplies the current delay in Equation 3; boosting from
        ``freq_low`` to ``freq_high`` scales delays by
        ``normalized_time(high) / normalized_time(low)``.
        """
        return self.normalized_time(freq_high_ghz) / self.normalized_time(
            freq_low_ghz
        )


class PowerLawSpeedup(SpeedupCurve):
    """``time(f) = (f_min / f) ** beta``.

    ``beta = 1`` is a perfectly frequency-scalable (compute-bound) service;
    ``beta < 1`` models memory-bound services that benefit less from
    higher clocks — the stage-sensitivity difference that motivates the
    adaptive boosting engine.
    """

    def __init__(self, f_min_ghz: float, beta: float = 1.0) -> None:
        if f_min_ghz <= 0.0:
            raise ConfigurationError(f"f_min must be > 0, got {f_min_ghz}")
        if not 0.0 <= beta <= 1.5:
            raise ConfigurationError(
                f"beta should be in [0, 1.5] for a physical service, got {beta}"
            )
        self.f_min_ghz = float(f_min_ghz)
        self.beta = float(beta)

    def normalized_time(self, freq_ghz: float) -> float:
        if freq_ghz < self.f_min_ghz - 1e-9:
            raise FrequencyError(
                f"{freq_ghz} GHz is below the profile floor {self.f_min_ghz} GHz"
            )
        return (self.f_min_ghz / freq_ghz) ** self.beta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PowerLawSpeedup(f_min={self.f_min_ghz} GHz, beta={self.beta})"


class TabularSpeedup(SpeedupCurve):
    """Measured normalized times per frequency, as offline profiling yields.

    The table must contain the profile floor with value 1.0 and be
    non-increasing in frequency.
    """

    def __init__(self, table: Mapping[float, float]) -> None:
        if not table:
            raise ConfigurationError("speedup table must not be empty")
        items = sorted(table.items())
        if abs(items[0][1] - 1.0) > 1e-9:
            raise ConfigurationError(
                "normalized time at the slowest profiled frequency must be 1.0"
            )
        previous = float("inf")
        for freq, value in items:
            if value <= 0.0:
                raise ConfigurationError(
                    f"normalized time must be > 0, got {value} at {freq} GHz"
                )
            if value > previous + 1e-9:
                raise ConfigurationError(
                    "normalized time must be non-increasing with frequency"
                )
            previous = value
        self._table = tuple(items)

    def normalized_time(self, freq_ghz: float) -> float:
        for freq, value in self._table:
            if abs(freq - freq_ghz) < 1e-6:
                return value
        known = ", ".join(f"{freq:g}" for freq, _ in self._table)
        raise FrequencyError(f"{freq_ghz} GHz not in speedup table ({known})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabularSpeedup({len(self._table)} points)"


class ServiceProfile:
    """The offline profile of one service (stage type)."""

    def __init__(
        self,
        name: str,
        demand: DemandDistribution,
        speedup: SpeedupCurve,
    ) -> None:
        if not name:
            raise ConfigurationError("service profile needs a non-empty name")
        self.name = name
        self.demand = demand
        self.speedup = speedup

    def serving_time(self, demand_seconds: float, freq_ghz: float) -> float:
        """Wall-clock serving time of ``demand_seconds`` of work at ``freq_ghz``."""
        if demand_seconds < 0.0:
            raise ConfigurationError(f"demand must be >= 0, got {demand_seconds}")
        return demand_seconds * self.speedup.normalized_time(freq_ghz)

    def mean_serving_time(self, freq_ghz: float) -> float:
        """Expected serving time at a frequency (for capacity planning)."""
        return self.serving_time(self.demand.mean, freq_ghz)

    def service_rate(self, freq_ghz: float) -> float:
        """Expected queries/second one instance sustains at ``freq_ghz``."""
        return 1.0 / self.mean_serving_time(freq_ghz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceProfile({self.name!r}, {self.demand!r}, {self.speedup!r})"
