"""Per-instance latency records carried by queries.

The paper's service/query joint design (Section 4.1, Figure 6): "when a
service instance finishes processing a query, it appends latency
statistics, including instance signature (ID), the queuing and processing
time, to the extended query data structure".  :class:`StageRecord` is that
appended entry; the list of them rides on the query until the pipeline
completes, then the command center ingests it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceError

__all__ = ["AttemptRecord", "StageRecord"]


#: The ways a dispatch attempt can settle.
ATTEMPT_OUTCOMES = frozenset(
    {"completed", "timed-out", "crash-requeue", "no-instance", "abandoned"}
)


@dataclass(frozen=True, slots=True)
class AttemptRecord:
    """One dispatch attempt of a query (or shard) at a stage.

    The resilience layer appends one of these per attempt so a query's
    history under faults is fully reconstructable: which instance served
    (or failed to serve) each try, and how the try settled.

    Outcomes: ``completed`` (the instance finished the work),
    ``timed-out`` (the attempt exceeded the retry policy's timeout),
    ``crash-requeue`` (the serving instance crashed; the same attempt was
    re-dispatched elsewhere), ``no-instance`` (no running instance was
    available at dispatch time; re-dispatch was scheduled), and
    ``abandoned`` (a sibling shard failed, so this attempt was cancelled).
    """

    stage_name: str
    attempt: int
    dispatched_time: float
    instance_name: Optional[str]
    outcome: str
    settled_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.outcome not in ATTEMPT_OUTCOMES:
            raise ServiceError(
                f"unknown attempt outcome {self.outcome!r}; "
                f"expected one of {sorted(ATTEMPT_OUTCOMES)}"
            )
        if self.attempt < 1:
            raise ServiceError(
                f"attempt numbers start at 1, got {self.attempt}"
            )


@dataclass(slots=True)
class StageRecord:
    """Timing of one query's visit to one service instance.

    ``enqueue_time`` is stamped when the query enters the instance's queue,
    ``start_time`` when the instance begins serving it, ``finish_time``
    when serving completes.  All timestamps are local to the instance —
    the design needs no global clock synchronisation (Section 4.1).

    ``queue_at_arrival`` is the instance's realtime queue length ``L_i``
    the moment the query arrived (before it joined the queue), and
    ``service_level`` the DVFS ladder level the core ran at when serving
    began — the tracer exports both so a span reconstructs the
    Equation-1 view the controller had of the instance.
    """

    instance_id: int
    instance_name: str
    stage_name: str
    enqueue_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    queue_at_arrival: int = 0
    service_level: Optional[int] = None

    @property
    def complete(self) -> bool:
        """Whether the record has both start and finish stamps."""
        return self.start_time is not None and self.finish_time is not None

    @property
    def queuing_time(self) -> float:
        """Time spent waiting in the instance's queue."""
        if self.start_time is None:
            raise ServiceError(
                f"record for {self.instance_name} has no start_time yet"
            )
        return self.start_time - self.enqueue_time

    @property
    def serving_time(self) -> float:
        """Time spent being processed by the instance."""
        if self.start_time is None or self.finish_time is None:
            raise ServiceError(
                f"record for {self.instance_name} is not complete yet"
            )
        return self.finish_time - self.start_time

    @property
    def processing_delay(self) -> float:
        """Queuing plus serving time (the Table-1 'processing delay')."""
        return self.queuing_time + self.serving_time
