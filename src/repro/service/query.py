"""The extended query data structure.

A :class:`Query` is a user request flowing through the multi-stage
pipeline.  Besides its payload stand-in (per-stage work demands, sampled
once at creation so every policy sees the identical workload), it carries
the list of :class:`StageRecord` latency statistics that the service/query
joint design appends at each stage (Section 4.1, Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import ServiceError
from repro.service.records import AttemptRecord, StageRecord

__all__ = ["Query"]


@dataclass(slots=True)
class Query:
    """One user query and the latency statistics it accumulates.

    Parameters
    ----------
    qid:
        Unique id within a run.
    demands:
        Per-stage work, in seconds of execution *at the slowest ladder
        frequency*.  Sampled once by the load generator so that different
        controllers replay byte-identical work.
    """

    qid: int
    demands: Mapping[str, float]
    arrival_time: Optional[float] = None
    completion_time: Optional[float] = None
    records: list[StageRecord] = field(default_factory=list)
    #: Dispatch attempts under the resilience layer; empty on the
    #: fault-free fast path (no resilience attached).
    attempts: list[AttemptRecord] = field(default_factory=list)
    #: Stamped when the query fails terminally (retry budget exhausted).
    failed_time: Optional[float] = None
    #: True once any stage re-dispatched the query after a timeout.
    retried: bool = False

    def __post_init__(self) -> None:
        for stage, demand in self.demands.items():
            if demand < 0.0:
                raise ServiceError(
                    f"query {self.qid}: demand for stage {stage!r} is negative"
                )

    # ------------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether the query has finished the last pipeline stage."""
        return self.completion_time is not None

    @property
    def timed_out(self) -> bool:
        """Whether the query failed terminally (retry budget exhausted)."""
        return self.failed_time is not None

    @property
    def outcome(self) -> str:
        """Terminal accounting bucket for the goodput report.

        ``completed`` / ``retried-completed`` / ``timed-out`` once the
        query settles; ``in-flight`` while it is still in the pipeline.
        Every admitted query must end in one of the first three — the
        zero-orphan invariant the chaos harness asserts.
        """
        if self.completed:
            return "retried-completed" if self.retried else "completed"
        if self.timed_out:
            return "timed-out"
        return "in-flight"

    def append_attempt(self, record: AttemptRecord) -> None:
        """Append a dispatch-attempt record (called by the resilience layer)."""
        self.attempts.append(record)

    @property
    def end_to_end_latency(self) -> float:
        """Response latency: completion minus arrival."""
        if self.arrival_time is None or self.completion_time is None:
            raise ServiceError(f"query {self.qid} has not completed")
        return self.completion_time - self.arrival_time

    def demand_for(self, stage_name: str) -> float:
        """Work demand for a stage; raises if the stage is unknown."""
        try:
            return self.demands[stage_name]
        except KeyError:
            raise ServiceError(
                f"query {self.qid} has no demand for stage {stage_name!r}"
            ) from None

    def record_for(self, stage_name: str) -> StageRecord:
        """First record the query collected at the named stage."""
        for record in self.records:
            if record.stage_name == stage_name:
                return record
        raise ServiceError(
            f"query {self.qid} has no record for stage {stage_name!r}"
        )

    def append_record(self, record: StageRecord) -> None:
        """Append a latency record (called by the service instance)."""
        self.records.append(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "done" if self.completed else "in-flight"
        return f"Query(qid={self.qid}, {status}, records={len(self.records)})"
