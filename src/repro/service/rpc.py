"""A simulated RPC fabric (the Apache Thrift stand-in).

Section 3: "Service instances across stages can run in distributed way
and communicate with command center as well as each other through remote
procedure call (RPC)."  The prototype used Apache Thrift (Section 7.1);
in the simulation an :class:`RpcFabric` carries the same traffic: each
``send`` delivers a callback after the configured one-way latency
(optionally jittered), and per-link message counters make the
communication overhead measurable — including the Section-4.1 claim that
the query-carried statistics design needs only one report per query.

The paper's evaluation sets network delay to zero ("the network delays
are not considered in our study"), which is the default here too.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError
from repro.units import exactly
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import SeededStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.metrics import MetricsRegistry

__all__ = ["RpcFabric"]


class RpcFabric:
    """Message transport between stages, users and the command center."""

    def __init__(
        self,
        sim: Simulator,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        rng: Optional[SeededStream] = None,
    ) -> None:
        if latency_s < 0.0:
            raise ConfigurationError(f"latency must be >= 0, got {latency_s}")
        if jitter_s < 0.0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter_s}")
        if jitter_s > 0.0 and rng is None:
            raise ConfigurationError("jitter requires an rng stream")
        self.sim = sim
        self.latency_s = float(latency_s)
        self.jitter_s = float(jitter_s)
        self._rng = rng
        self._messages = 0
        self._messages_lost = 0
        self._hop_seconds = 0.0
        self._registry: Optional["MetricsRegistry"] = None
        self._links: Counter[tuple[str, str]] = Counter()
        self._fault_until = 0.0
        self._fault_extra_delay_s = 0.0
        self._fault_loss_probability = 0.0
        self._fault_stream: Optional[SeededStream] = None
        self._fault_retransmit_timeout_s = 0.1

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def inject_fault(
        self,
        until_s: float,
        extra_delay_s: float = 0.0,
        loss_probability: float = 0.0,
        stream: Optional[SeededStream] = None,
        retransmit_timeout_s: float = 0.1,
    ) -> None:
        """Degrade the fabric until ``until_s``: extra latency and/or loss.

        Loss is modelled the way a reliable transport experiences it:
        each transmission is lost with ``loss_probability`` and costs one
        ``retransmit_timeout_s`` before the retry, so a lossy window slows
        hops down (and counts :attr:`messages_lost`) but never drops a
        message outright — the simulated application, like one on TCP,
        keeps its delivery guarantee and the zero-orphan invariant holds.
        """
        if extra_delay_s < 0.0:
            raise ConfigurationError(
                f"extra delay must be >= 0, got {extra_delay_s}"
            )
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        if loss_probability > 0.0 and stream is None:
            raise ConfigurationError("loss probability requires an rng stream")
        if retransmit_timeout_s <= 0.0:
            raise ConfigurationError(
                f"retransmit timeout must be > 0, got {retransmit_timeout_s}"
            )
        self._fault_until = max(self._fault_until, float(until_s))
        self._fault_extra_delay_s = float(extra_delay_s)
        self._fault_loss_probability = float(loss_probability)
        self._fault_stream = stream
        self._fault_retransmit_timeout_s = float(retransmit_timeout_s)

    def clear_fault(self) -> None:
        """End any active fault window immediately."""
        self._fault_until = 0.0

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, deliver: Callable[[], None]) -> None:
        """Send one message; ``deliver`` runs after the one-way latency."""
        if not src or not dst:
            raise ConfigurationError("src and dst endpoints must be non-empty")
        self._messages += 1
        self._links[(src, dst)] += 1
        delay = self.latency_s
        if self.jitter_s > 0.0:
            assert self._rng is not None
            delay += self._rng.uniform(0.0, self.jitter_s)
        if self.sim.now < self._fault_until:
            delay += self._fault_extra_delay_s
            if self._fault_loss_probability > 0.0:
                assert self._fault_stream is not None
                # Geometric retransmission, capped so a pathological draw
                # sequence cannot wedge the simulation.
                for _ in range(20):
                    if (
                        self._fault_stream.random()
                        >= self._fault_loss_probability
                    ):
                        break
                    self._messages_lost += 1
                    delay += self._fault_retransmit_timeout_s
        self._hop_seconds += delay
        if self._registry is not None:
            self._registry.counter(
                "repro_rpc_messages_total", "Messages carried by the fabric"
            ).inc(src=src, dst=dst)
            if delay > 0.0:
                self._registry.counter(
                    "repro_rpc_hop_seconds_total",
                    "Cumulative one-way transit time paid on the fabric",
                ).inc(delay)
        if exactly(delay, 0.0):
            deliver()
        else:
            self.sim.schedule(delay, deliver, priority=EventPriority.NORMAL)

    # ------------------------------------------------------------------
    def attach_registry(self, registry: "MetricsRegistry") -> None:
        """Route per-link message counts and hop time into a registry."""
        self._registry = registry

    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        """Total messages carried by the fabric."""
        return self._messages

    @property
    def hop_seconds_total(self) -> float:
        """Cumulative one-way transit time (including fault penalties)."""
        return self._hop_seconds

    @property
    def messages_lost(self) -> int:
        """Transmissions lost to injected RPC loss (all were retransmitted)."""
        return self._messages_lost

    def link_count(self, src: str, dst: str) -> int:
        """Messages sent over one directed link."""
        return self._links[(src, dst)]

    def links(self) -> dict[tuple[str, str], int]:
        """All directed links and their message counts."""
        return dict(self._links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RpcFabric(latency={self.latency_s}s, "
            f"{self._messages} messages over {len(self._links)} links)"
        )
