"""Unicode sparklines for timeline rendering.

The QoS figures (13/14) are line charts in the paper; the benchmark
harness renders their series as one-line sparklines so the convergence
behaviour is visible in plain terminal output.

>>> sparkline([0.0, 0.5, 1.0])
'▁▄█'
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.units import exactly

__all__ = ["sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_GAP = "·"


def sparkline(
    values: Sequence[Optional[float]],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a series as block characters; ``None`` values render as dots.

    ``lo``/``hi`` pin the scale (e.g. 0..1 for fractions); by default the
    observed range is used.  A flat series renders at the mid level.
    """
    present = [value for value in values if value is not None]
    if not present:
        return _GAP * len(values)
    low = min(present) if lo is None else lo
    high = max(present) if hi is None else hi
    if high < low:
        raise ValueError(f"hi ({high}) must be >= lo ({low})")
    span = high - low
    cells = []
    for value in values:
        if value is None:
            cells.append(_GAP)
            continue
        if exactly(span, 0.0):
            cells.append(_BLOCKS[len(_BLOCKS) // 2])
            continue
        clamped = min(max(value, low), high)
        index = int((clamped - low) / span * (len(_BLOCKS) - 1))
        cells.append(_BLOCKS[index])
    return "".join(cells)
