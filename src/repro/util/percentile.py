"""Percentile and latency-summary helpers.

The paper reports average and 99th-percentile ("tail") latency throughout
its evaluation.  We use the nearest-rank percentile definition, which is
exact on small samples and never interpolates a latency that no query
actually experienced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["percentile", "LatencySummary", "summarize"]


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (``p`` in [0, 100]).

    Raises ``ValueError`` on an empty sample — returning a silent 0 would
    corrupt improvement ratios downstream.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        raise ValueError("cannot take the percentile of an empty sample")
    ordered = sorted(values)
    # max(1, ...) guards sub-epsilon p values whose rank would otherwise
    # round to 0 and wrap around to the maximum.
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4f}s p50={self.p50:.4f}s "
            f"p95={self.p95:.4f}s p99={self.p99:.4f}s max={self.max:.4f}s"
        )


def summarize(values: Iterable[float]) -> LatencySummary:
    """Build a :class:`LatencySummary`; raises on an empty sample."""
    data = list(values)
    if not data:
        raise ValueError("cannot summarize an empty latency sample")
    return LatencySummary(
        count=len(data),
        mean=sum(data) / len(data),
        p50=percentile(data, 50.0),
        p95=percentile(data, 95.0),
        p99=percentile(data, 99.0),
        max=max(data),
    )
