"""Small shared utilities (percentiles, latency summaries)."""

from repro.util.percentile import LatencySummary, percentile, summarize

__all__ = ["LatencySummary", "percentile", "summarize"]
