"""A single physical core with per-core DVFS.

Each service instance runs exclusively on one core (Section 8.5: "each
service instance is running on individual core where power management is
applied"), so the core is the unit of both frequency control and power
accounting.  Idle (unallocated) cores are treated as power-gated and draw
nothing — consistent with the paper counting only the cores that host
service instances against the budget.

Cores integrate their own energy: every state transition (activate,
deactivate, level change) closes the previous piecewise-constant power
segment.  Observers can subscribe to frequency changes; the service
instance uses this to rescale the remaining work of an in-flight query.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import ClusterError, InstanceStateError
from repro.cluster.frequency import FrequencyLadder
from repro.cluster.power import PowerModel
from repro.units import DvfsLevel, Ghz, Joules, Watts

__all__ = ["Core", "CoreState", "FrequencyObserver"]

FrequencyObserver = Callable[["Core", int, int], None]


class CoreState(enum.Enum):
    """Allocation state of a physical core."""

    FREE = "free"
    ACTIVE = "active"


class Core:
    """One physical core: a ladder position plus energy bookkeeping."""

    def __init__(
        self,
        cid: int,
        ladder: FrequencyLadder,
        power_model: PowerModel,
        clock: Callable[[], float],
    ) -> None:
        self.cid = cid
        self.ladder = ladder
        self.power_model = power_model
        self._clock = clock
        self._state = CoreState.FREE
        self._level = ladder.min_level
        self._energy_joules = 0.0
        self._segment_start = clock()
        self._observers: list[FrequencyObserver] = []
        self._transitions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> CoreState:
        return self._state

    @property
    def active(self) -> bool:
        return self._state is CoreState.ACTIVE

    @property
    def level(self) -> DvfsLevel:
        """Current ladder level."""
        return DvfsLevel(self._level)

    @property
    def frequency_ghz(self) -> Ghz:
        """Current frequency in GHz."""
        return self.ladder.frequency_of(self._level)

    @property
    def power_watts(self) -> Watts:
        """Instantaneous draw: the modelled power when active, else 0."""
        if not self.active:
            return Watts(0.0)
        return self.power_model.power_of_level(self.ladder, self._level)

    @property
    def transitions(self) -> int:
        """Number of DVFS level changes applied to this core."""
        return self._transitions

    def energy_joules(self) -> Joules:
        """Energy consumed so far, including the open segment."""
        return Joules(
            self._energy_joules
            + self.power_watts * (self._clock() - self._segment_start)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def activate(self, level: int) -> None:
        """Allocate the core and start it at ``level``."""
        if self.active:
            raise InstanceStateError(f"core {self.cid} is already active")
        self.ladder.validate_level(level)
        self._close_segment()
        self._state = CoreState.ACTIVE
        self._level = level

    def deactivate(self) -> None:
        """Release the core (power-gate it)."""
        if not self.active:
            raise InstanceStateError(f"core {self.cid} is not active")
        self._close_segment()
        self._state = CoreState.FREE
        self._level = self.ladder.min_level

    def set_level(self, level: int) -> None:
        """Change the DVFS level of an active core, notifying observers."""
        if not self.active:
            raise InstanceStateError(
                f"cannot set frequency of inactive core {self.cid}"
            )
        self.ladder.validate_level(level)
        old = self._level
        if level == old:
            return
        self._close_segment()
        self._level = level
        self._transitions += 1
        for observer in tuple(self._observers):
            observer(self, old, level)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: FrequencyObserver) -> None:
        """Subscribe to (core, old_level, new_level) frequency changes."""
        self._observers.append(observer)

    def remove_observer(self, observer: FrequencyObserver) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            raise ClusterError("observer was not registered") from None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _close_segment(self) -> None:
        now = self._clock()
        self._energy_joules += self.power_watts * (now - self._segment_start)
        self._segment_start = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Core(cid={self.cid}, {self._state.value}, "
            f"{self.frequency_ghz:.1f} GHz, {self.power_watts:.2f} W)"
        )
