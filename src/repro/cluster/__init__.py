"""CMP cluster substrate: cores, DVFS ladder, power models and budget.

This package simulates the hardware side of the paper's testbed (Intel
Xeon E5-2630v3): a pool of physical cores (:class:`Machine`) with per-core
DVFS over a discrete :class:`FrequencyLadder`, a calibrated core
:class:`PowerModel`, a hard :class:`PowerBudget`, a :class:`DvfsActuator`
standing in for the sysfs interface, and :class:`PowerTelemetry` for the
power timelines of the QoS experiments.
"""

from repro.cluster.budget import PowerBudget
from repro.cluster.calibration import CalibrationResult, fit_cubic_model, reference_power_table
from repro.cluster.contention import ContentionModel, LinearContention, NoContention
from repro.cluster.core import Core, CoreState
from repro.cluster.dvfs import DvfsActuator
from repro.cluster.frequency import HASWELL_LADDER, FrequencyLadder
from repro.cluster.machine import Machine
from repro.cluster.power import (
    DEFAULT_POWER_MODEL,
    CubicPowerModel,
    PowerModel,
    TabularPowerModel,
)
from repro.cluster.telemetry import PowerSample, PowerTelemetry

__all__ = [
    "PowerBudget",
    "CalibrationResult",
    "fit_cubic_model",
    "reference_power_table",
    "ContentionModel",
    "LinearContention",
    "NoContention",
    "Core",
    "CoreState",
    "DvfsActuator",
    "FrequencyLadder",
    "HASWELL_LADDER",
    "Machine",
    "PowerModel",
    "CubicPowerModel",
    "TabularPowerModel",
    "DEFAULT_POWER_MODEL",
    "PowerSample",
    "PowerTelemetry",
]
