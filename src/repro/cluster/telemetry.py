"""Power telemetry: sampled power timelines for the QoS experiments.

Figures 13 and 14 of the paper plot "fraction of peak power" over the
experiment timeline.  :class:`PowerTelemetry` samples the machine's total
draw on a fixed interval and exposes the series plus summary statistics
(average, peak, energy) that the benchmark harness renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ClusterError
from repro.cluster.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["PowerSample", "PowerTelemetry"]


@dataclass(frozen=True)
class PowerSample:
    """One point on the power timeline."""

    time: float
    watts: float


class PowerTelemetry:
    """Samples total machine power on a fixed simulated interval."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        sample_interval_s: float = 1.0,
    ) -> None:
        if sample_interval_s <= 0.0:
            raise ClusterError(
                f"sample interval must be > 0, got {sample_interval_s}"
            )
        self.sim = sim
        self.machine = machine
        self.sample_interval_s = float(sample_interval_s)
        self.samples: list[PowerSample] = []
        self._process = PeriodicProcess(
            sim,
            sample_interval_s,
            self._sample,
            start_delay=0.0,
            name="power-telemetry",
        )

    def start(self) -> None:
        """Begin sampling (takes an immediate sample at the current time)."""
        self._process.start()

    def stop(self) -> None:
        """Stop sampling; the collected series stays available."""
        self._process.stop()

    def _sample(self, now: float) -> None:
        self.samples.append(PowerSample(now, self.machine.total_power()))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def average_power(self, since: float = 0.0) -> float:
        """Mean of the sampled draw from ``since`` onward (0 if no samples)."""
        values = [s.watts for s in self.samples if s.time >= since]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def peak_power(self) -> float:
        """Maximum sampled draw (0 if no samples)."""
        if not self.samples:
            return 0.0
        return max(sample.watts for sample in self.samples)

    def energy_joules(self) -> float:
        """Trapezoidal integral of the sampled power series."""
        if len(self.samples) < 2:
            return 0.0
        total = 0.0
        for before, after in zip(self.samples, self.samples[1:]):
            total += 0.5 * (before.watts + after.watts) * (after.time - before.time)
        return total

    def fractions_of(self, reference_watts: float) -> list[tuple[float, float]]:
        """The series normalised to a reference draw (e.g. peak power)."""
        if reference_watts <= 0.0:
            raise ClusterError(
                f"reference power must be > 0, got {reference_watts}"
            )
        return [(s.time, s.watts / reference_watts) for s in self.samples]
