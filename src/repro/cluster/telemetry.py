"""Power telemetry: sampled power timelines for the QoS experiments.

Figures 13 and 14 of the paper plot "fraction of peak power" over the
experiment timeline.  :class:`PowerTelemetry` samples the machine's total
draw on a fixed interval and exposes the series plus summary statistics
(average, peak, energy) that the benchmark harness renders.

Each :class:`PowerSample` also carries the per-core DVFS level
distribution at the sampling instant — ``level_counts`` maps ladder level
to the number of active cores at it — which is what Figure 11(c)'s
many-instances-near-the-floor convergence looks like from the power
substrate's side.  When built with a
:class:`~repro.obs.metrics.MetricsRegistry`, the sampler routes its
summary statistics through the registry (gauges for the latest and peak
draw, a counter for samples, a histogram of the sampled draw, and a
per-level active-core gauge) instead of keeping bespoke aggregate fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ClusterError
from repro.cluster.machine import Machine
from repro.obs.metrics import DEFAULT_POWER_BUCKETS_W, MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import SeededStream
from repro.units import Joules, SimTime, Watts

__all__ = ["PowerSample", "PowerTelemetry"]


@dataclass(frozen=True)
class PowerSample:
    """One point on the power timeline.

    ``level_counts`` is the machine's DVFS state at the instant: sorted
    ``(ladder level, active core count)`` pairs, empty when no core is
    active.
    """

    time: SimTime
    watts: Watts
    level_counts: tuple[tuple[int, int], ...] = field(default=())

    @property
    def active_cores(self) -> int:
        return sum(count for _, count in self.level_counts)


class PowerTelemetry:
    """Samples total machine power on a fixed simulated interval."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        sample_interval_s: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if sample_interval_s <= 0.0:
            raise ClusterError(
                f"sample interval must be > 0, got {sample_interval_s}"
            )
        self.sim = sim
        self.machine = machine
        self.sample_interval_s = float(sample_interval_s)
        self.registry = registry
        self.samples: list[PowerSample] = []
        self.samples_dropped = 0
        self._dropout_until = 0.0
        self._noise_until = 0.0
        self._noise_fraction = 0.0
        self._noise_stream: Optional[SeededStream] = None
        self._sample_listeners: list[Callable[[PowerSample], None]] = []
        self._process = PeriodicProcess(
            sim,
            sample_interval_s,
            self._sample,
            start_delay=0.0,
            name="power-telemetry",
        )

    def start(self) -> None:
        """Begin sampling (takes an immediate sample at the current time)."""
        self._process.start()

    def stop(self) -> None:
        """Stop sampling; the collected series stays available."""
        self._process.stop()

    def add_sample_listener(
        self, listener: Callable[[PowerSample], None]
    ) -> None:
        """Invoke ``listener(sample)`` after each sample lands.

        Dropped samples (telemetry dropout) never reach listeners — the
        energy attributor sees exactly the series :meth:`energy_joules`
        integrates.  Costs one truthiness check per sample when nobody
        listens.
        """
        self._sample_listeners.append(listener)

    def remove_sample_listener(
        self, listener: Callable[[PowerSample], None]
    ) -> None:
        self._sample_listeners.remove(listener)

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def inject_dropout(self, until_s: float) -> None:
        """Drop every sample until the given simulated time (RAPL dark).

        Dropped samples are counted, never silently elided: the power
        series simply has a hole, and :meth:`seconds_since_last_sample`
        grows until sampling resumes — which is what the controller's
        telemetry-dark guard watches.
        """
        self._dropout_until = max(self._dropout_until, float(until_s))

    def inject_noise(
        self, until_s: float, fraction: float, stream: SeededStream
    ) -> None:
        """Perturb sampled watts by ``±fraction`` (uniform) until ``until_s``."""
        if fraction < 0.0:
            raise ClusterError(f"noise fraction must be >= 0, got {fraction}")
        self._noise_until = max(self._noise_until, float(until_s))
        self._noise_fraction = float(fraction)
        self._noise_stream = stream

    def last_known_good(self) -> Optional[PowerSample]:
        """The most recent sample, or ``None`` before the first one.

        During a dropout window this is the conservative stand-in the
        controller falls back to instead of assuming zero draw.
        """
        if not self.samples:
            return None
        return self.samples[-1]

    def seconds_since_last_sample(self, now: float) -> Optional[float]:
        """Age of the freshest sample (``None`` when nothing ever arrived)."""
        if not self.samples:
            return None
        return now - self.samples[-1].time

    def _sample(self, now: float) -> None:
        if now < self._dropout_until:
            self.samples_dropped += 1
            if self.registry is not None:
                self.registry.counter(
                    "repro_power_samples_dropped_total",
                    "Power samples lost to injected telemetry dropout",
                ).inc()
            return
        watts = self.machine.total_power()
        if now < self._noise_until and self._noise_stream is not None:
            perturbed = watts * (
                1.0 + self._noise_fraction * self._noise_stream.uniform(-1.0, 1.0)
            )
            watts = Watts(max(0.0, perturbed))
        now = SimTime(now)
        # The machine maintains its per-level population incrementally;
        # sampling must not rescan the core pool on every tick.
        level_counts = self.machine.level_counts()
        self.samples.append(PowerSample(now, watts, level_counts))
        if self.registry is not None:
            self.registry.counter(
                "repro_power_samples_total", "Power telemetry samples taken"
            ).inc()
            gauge = self.registry.gauge(
                "repro_power_watts", "Machine draw at the latest sample"
            )
            gauge.set(watts)
            peak = self.registry.gauge(
                "repro_power_peak_watts", "Largest sampled machine draw"
            )
            if watts > peak.value():
                peak.set(watts)
            self.registry.histogram(
                "repro_power_sample_watts",
                "Distribution of sampled machine draw",
                buckets=DEFAULT_POWER_BUCKETS_W,
            ).observe(watts)
            level_gauge = self.registry.gauge(
                "repro_cores_at_level", "Active cores per DVFS ladder level"
            )
            by_level = dict(level_counts)
            for level in range(
                self.machine.ladder.min_level, self.machine.ladder.max_level + 1
            ):
                level_gauge.set(by_level.get(level, 0), level=level)
        if self._sample_listeners:
            sample = self.samples[-1]
            for listener in tuple(self._sample_listeners):
                listener(sample)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def average_power(self, since: float = 0.0) -> Optional[Watts]:
        """Mean of the sampled draw from ``since`` onward.

        Returns ``None`` when the window holds no samples — under
        telemetry dropout a window can be empty, and a fabricated 0.0 W
        would read as "the machine is idle, spend freely", the most
        dangerous possible misreading.  Callers must branch explicitly.
        """
        values = [s.watts for s in self.samples if s.time >= since]
        if not values:
            return None
        return Watts(sum(values) / len(values))

    def peak_power(self) -> Watts:
        """Maximum sampled draw (0 if no samples)."""
        if not self.samples:
            return Watts(0.0)
        return Watts(max(sample.watts for sample in self.samples))

    def energy_joules(self) -> Joules:
        """Trapezoidal integral of the sampled power series."""
        if len(self.samples) < 2:
            return Joules(0.0)
        total = 0.0
        for before, after in zip(self.samples, self.samples[1:]):
            total += 0.5 * (before.watts + after.watts) * (after.time - before.time)
        return Joules(total)

    def fractions_of(self, reference_watts: float) -> list[tuple[float, float]]:
        """The series normalised to a reference draw (e.g. peak power)."""
        if reference_watts <= 0.0:
            raise ClusterError(
                f"reference power must be > 0, got {reference_watts}"
            )
        return [(s.time, s.watts / reference_watts) for s in self.samples]

    def level_distribution(self, since: float = 0.0) -> dict[int, float]:
        """Mean active-core count per DVFS level from ``since`` onward.

        Averaged over samples: ``{level: mean core count}``.  Empty when
        nothing was sampled.
        """
        chosen = [s for s in self.samples if s.time >= since]
        if not chosen:
            return {}
        totals: dict[int, int] = {}
        for sample in chosen:
            for level, count in sample.level_counts:
                totals[level] = totals.get(level, 0) + count
        return {
            level: total / len(chosen) for level, total in sorted(totals.items())
        }
