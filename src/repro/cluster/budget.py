"""Power budget accounting and enforcement.

The power constraint is the central invariant of the paper: "dynamically
reallocates the constrained power budget across service stages" while
never exceeding it.  :class:`PowerBudget` wraps a :class:`Machine` with a
hard watt ceiling; controllers consult :meth:`available` before boosting
and can assert the invariant after every reallocation.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.errors import ClusterError, PowerBudgetExceeded
from repro.cluster.machine import Machine
from repro.units import EPSILON_WATTS, Watts

__all__ = ["PowerBudget", "PowerScope"]

#: Slack used in comparisons so float noise never trips the hard invariant.
_EPSILON_WATTS = EPSILON_WATTS


class PowerScope(Protocol):
    """Anything whose draw can be budgeted (a machine, or one application)."""

    def total_power(self) -> Watts: ...


class PowerBudget:
    """A hard cap on a power scope's draw.

    By default the scope is the whole machine.  Passing an
    :class:`~repro.service.application.Application` as ``scope`` gives
    that application its own budget — the paper's collocation model
    (Section 8.5: "PowerChief manages dynamic power allocation at per
    application basis where each application has its own power budget"),
    where several applications share a machine but each controller only
    spends its own allocation.
    """

    def __init__(
        self,
        machine: Machine,
        budget_watts: float,
        scope: Optional[PowerScope] = None,
    ) -> None:
        if budget_watts <= 0.0:
            raise ClusterError(f"budget must be > 0 W, got {budget_watts}")
        self.machine = machine
        self.budget_watts = float(budget_watts)
        self._scope: PowerScope = scope if scope is not None else machine
        self._reserved_watts = 0.0

    # ------------------------------------------------------------------
    def draw(self) -> Watts:
        """Current draw of the budgeted scope in watts."""
        return self._scope.total_power()

    @property
    def reserved_watts(self) -> Watts:
        """Headroom earmarked (not yet drawn) by :meth:`reserve`."""
        return Watts(self._reserved_watts)

    def reserve(self, watts: float) -> None:
        """Earmark headroom so :meth:`fits` stops offering it to callers.

        The health monitor reserves a crashed instance's wattage the
        instant the crash is seen — otherwise the controller's next
        adjustment spends the freed power on boosts and the replacement
        can never be launched.  A reservation only shrinks
        :meth:`available`; the hard draw invariant is untouched.
        """
        if watts < 0.0:
            raise ClusterError(f"cannot reserve {watts} W")
        self._reserved_watts += watts

    def release(self, watts: float) -> None:
        """Return previously reserved headroom to the pool."""
        if watts < 0.0:
            raise ClusterError(f"cannot release {watts} W")
        if watts > self._reserved_watts + _EPSILON_WATTS:
            raise ClusterError(
                f"releasing {watts} W but only "
                f"{self._reserved_watts} W is reserved"
            )
        self._reserved_watts = max(0.0, self._reserved_watts - watts)

    def available(self) -> Watts:
        """Unallocated, unreserved headroom in watts (never negative)."""
        return Watts(
            max(0.0, self.budget_watts - self.draw() - self._reserved_watts)
        )

    def utilization(self) -> float:
        """Fraction of the budget currently drawn."""
        return self.draw() / self.budget_watts

    def fits(self, extra_watts: float) -> bool:
        """Whether an additional draw of ``extra_watts`` stays within budget."""
        return extra_watts <= self.available() + _EPSILON_WATTS

    def check(self, extra_watts: float) -> None:
        """Raise :class:`PowerBudgetExceeded` unless ``extra_watts`` fits."""
        if not self.fits(extra_watts):
            raise PowerBudgetExceeded(extra_watts, self.available())

    def assert_within(self) -> None:
        """Assert the hard invariant: total draw never exceeds the budget.

        Controllers call this after applying a reallocation plan; a failure
        is a bug in the controller, not a recoverable condition.
        """
        draw = self.draw()
        if draw > self.budget_watts + _EPSILON_WATTS:
            raise PowerBudgetExceeded(draw - self.budget_watts, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerBudget({self.draw():.2f}/{self.budget_watts:.2f} W, "
            f"{self.available():.2f} W free)"
        )
