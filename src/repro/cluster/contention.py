"""Shared-resource contention between collocated cores.

Section 8.5: "even on separate cores, application collocation has the
potential to generate performance interference and affect the
effectiveness of our approach, which requires further investigation."
This module is that investigation's instrument: a :class:`ContentionModel`
maps the machine's occupancy (how many cores are active) to a slowdown
factor applied to every instance's serving speed — the aggregate effect
of shared LLC and memory-bandwidth pressure.

The default is :class:`NoContention` (the paper's evaluation runs one
application per machine with per-core exclusivity), so nothing changes
unless an experiment opts in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

__all__ = ["ContentionModel", "NoContention", "LinearContention"]


class ContentionModel(ABC):
    """Occupancy-dependent serving slowdown (>= 1.0)."""

    @abstractmethod
    def slowdown(self, active_cores: int, total_cores: int) -> float:
        """Execution-time multiplier when ``active_cores`` are running."""


class NoContention(ContentionModel):
    """Perfect isolation: the paper's baseline assumption."""

    def slowdown(self, active_cores: int, total_cores: int) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NoContention()"


class LinearContention(ContentionModel):
    """Slowdown grows linearly with the number of *other* active cores.

    ``slowdown = 1 + intensity * (active - 1) / (total - 1)`` — a single
    active core is unimpeded; a fully packed machine pays the full
    ``intensity`` (e.g. 0.3 = 30% longer serving times at full
    occupancy).  A deliberately simple model: the point is the feedback
    loop it creates (launching a clone now taxes *everyone*), not
    microarchitectural fidelity.
    """

    def __init__(self, intensity: float = 0.3) -> None:
        if intensity < 0.0:
            raise ConfigurationError(
                f"intensity must be >= 0, got {intensity}"
            )
        self.intensity = float(intensity)

    def slowdown(self, active_cores: int, total_cores: int) -> float:
        if active_cores <= 1 or total_cores <= 1:
            return 1.0
        crowding = (active_cores - 1) / (total_cores - 1)
        return 1.0 + self.intensity * min(1.0, crowding)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearContention(intensity={self.intensity})"
