"""Power-model calibration from measured data.

On real hardware the per-frequency core power comes from a measurement
sweep (e.g. RAPL package power divided across loaded cores at each
``cpufreq`` setting).  This module turns such a ``{GHz: W}`` table into
the :class:`CubicPowerModel` the rest of the library consumes, by
least-squares fitting ``P(f) = static + coeff * f^3`` — the same model
family the paper borrows from Adrenaline [22].

Pure stdlib: the normal equations of the two-parameter fit are solved in
closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ClusterError
from repro.cluster.frequency import FrequencyLadder, HASWELL_LADDER
from repro.cluster.power import CubicPowerModel, DEFAULT_POWER_MODEL, PowerModel

__all__ = ["CalibrationResult", "fit_cubic_model", "reference_power_table"]


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted model plus its fit quality."""

    model: CubicPowerModel
    max_residual_watts: float
    mean_residual_watts: float

    @property
    def static_watts(self) -> float:
        return self.model.static_watts

    @property
    def dynamic_coeff(self) -> float:
        return self.model.dynamic_coeff


def fit_cubic_model(table: Mapping[float, float]) -> CalibrationResult:
    """Least-squares fit of ``P(f) = a + b * f^3`` to a measured table.

    Requires at least two distinct frequencies; raises
    :class:`ClusterError` if the fit produces an unphysical model
    (negative static power or non-positive cubic coefficient), which
    indicates bad measurements rather than a usable calibration.
    """
    if len(table) < 2:
        raise ClusterError("need at least two measurement points to fit")
    points = sorted(table.items())
    xs = [freq**3 for freq, _ in points]
    ys = [watts for _, watts in points]
    n = float(len(points))
    sum_x = sum(xs)
    sum_y = sum(ys)
    sum_xx = sum(x * x for x in xs)
    sum_xy = sum(x * y for x, y in zip(xs, ys))
    denominator = n * sum_xx - sum_x * sum_x
    if abs(denominator) < 1e-12:
        raise ClusterError("measurement frequencies are degenerate; cannot fit")
    coeff = (n * sum_xy - sum_x * sum_y) / denominator
    static = (sum_y - coeff * sum_x) / n
    if static < 0.0 or coeff <= 0.0:
        raise ClusterError(
            f"fit produced an unphysical model (static={static:.3f} W, "
            f"coeff={coeff:.5f}); check the measurements"
        )
    model = CubicPowerModel(static_watts=static, dynamic_coeff=coeff)
    residuals = [abs(model.power(freq) - watts) for freq, watts in points]
    return CalibrationResult(
        model=model,
        max_residual_watts=max(residuals),
        mean_residual_watts=sum(residuals) / len(residuals),
    )


def reference_power_table(
    ladder: FrequencyLadder = HASWELL_LADDER,
    model: PowerModel = DEFAULT_POWER_MODEL,
) -> dict[float, float]:
    """The calibrated per-level power table (useful as a fixture or export)."""
    return {freq: model.power(freq) for freq in ladder}
