"""Core power models.

Per-core power cannot be measured on the paper's platform, so the authors
"use the power model proposed in [22] (Adrenaline) to determine the power
consumption of a core running at different frequencies" (Section 8.1).  We
do the same through an explicit model class.

The default :class:`CubicPowerModel` follows the standard CMOS
approximation ``P(f) = P_static + c * f^3`` (dynamic power scales with
``f * V^2`` and voltage tracks frequency).  It is calibrated so that:

* ``P(1.8 GHz) = 4.52 W`` — the Table-2 budget of 13.56 W is exactly three
  instances at the mid-ladder frequency, as the paper constructs it;
* ``P(1.2 GHz) = 1.69 W`` — eight instances at the ladder floor consume
  13.53 W, so a ninth does not fit: this reproduces the Figure-11(b)
  lock-in where instance boosting can no longer recycle enough power.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Optional

from repro.errors import ClusterError, FrequencyError
from repro.cluster.frequency import FrequencyLadder
from repro.units import Watts

__all__ = [
    "PowerModel",
    "CubicPowerModel",
    "TabularPowerModel",
    "DEFAULT_POWER_MODEL",
]


class PowerModel(ABC):
    """Maps a core frequency (GHz) to its power draw (W)."""

    @abstractmethod
    def power(self, freq_ghz: float) -> Watts:
        """Power in watts of a core running at ``freq_ghz`` (GHz)."""

    # ------------------------------------------------------------------
    # Ladder-aware helpers shared by all models
    # ------------------------------------------------------------------
    def power_of_level(self, ladder: FrequencyLadder, level: int) -> Watts:
        """Power at a ladder level."""
        return self.power(ladder.frequency_of(level))

    def max_level_within(
        self, ladder: FrequencyLadder, watts: float
    ) -> Optional[int]:
        """Highest ladder level whose power is <= ``watts``.

        Returns ``None`` when even the floor level does not fit — the
        situation that forces Algorithm 1 to fall back to frequency
        boosting with whatever power is available.
        """
        best: Optional[int] = None
        for level in range(ladder.n_levels):
            if self.power_of_level(ladder, level) <= watts + 1e-12:
                best = level
        return best

    def recyclable(self, ladder: FrequencyLadder, level: int) -> Watts:
        """Watts freed by dropping a core from ``level`` to the floor."""
        return Watts(
            self.power_of_level(ladder, level)
            - self.power_of_level(ladder, ladder.min_level)
        )


class CubicPowerModel(PowerModel):
    """``P(f) = static + coeff * f^3`` with ``f`` in GHz."""

    def __init__(self, static_watts: float = 0.5, dynamic_coeff: Optional[float] = None) -> None:
        if static_watts < 0.0:
            raise ClusterError(f"static_watts must be >= 0, got {static_watts}")
        if dynamic_coeff is None:
            # Calibrate so that P(1.8 GHz) == 4.52 W (see module docstring).
            dynamic_coeff = (4.52 - static_watts) / (1.8**3)
        if dynamic_coeff <= 0.0:
            raise ClusterError(f"dynamic_coeff must be > 0, got {dynamic_coeff}")
        self.static_watts = float(static_watts)
        self.dynamic_coeff = float(dynamic_coeff)

    @classmethod
    def calibrated(
        cls, *, static_watts: float, ref_freq_ghz: float, ref_power_watts: float
    ) -> "CubicPowerModel":
        """Build a model passing through ``(ref_freq_ghz, ref_power_watts)``."""
        if ref_power_watts <= static_watts:
            raise ClusterError(
                "reference power must exceed static power "
                f"({ref_power_watts} W <= {static_watts} W)"
            )
        coeff = (ref_power_watts - static_watts) / (ref_freq_ghz**3)
        return cls(static_watts=static_watts, dynamic_coeff=coeff)

    def power(self, freq_ghz: float) -> Watts:
        if freq_ghz <= 0.0:
            raise FrequencyError(f"frequency must be > 0 GHz, got {freq_ghz}")
        return Watts(self.static_watts + self.dynamic_coeff * freq_ghz**3)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CubicPowerModel(static={self.static_watts:.3f} W, "
            f"coeff={self.dynamic_coeff:.5f} W/GHz^3)"
        )


class TabularPowerModel(PowerModel):
    """A measured (frequency -> watts) table, e.g. from RAPL sweeps.

    The table must be strictly increasing in both frequency and power;
    lookups require an exact (tolerance 1e-6 GHz) frequency match so an
    experiment cannot silently interpolate off its calibration points.
    """

    def __init__(self, table: Mapping[float, float]) -> None:
        if not table:
            raise ClusterError("power table must not be empty")
        items = sorted(table.items())
        previous_power = -1.0
        for freq, watts in items:
            if freq <= 0.0:
                raise ClusterError(f"table frequency must be > 0 GHz, got {freq}")
            if watts <= previous_power:
                raise ClusterError(
                    "power table must be strictly increasing with frequency"
                )
            previous_power = watts
        self._table = tuple(items)

    def power(self, freq_ghz: float) -> Watts:
        for freq, watts in self._table:
            if abs(freq - freq_ghz) < 1e-6:
                return Watts(watts)
        known = ", ".join(f"{freq:g}" for freq, _ in self._table)
        raise FrequencyError(f"{freq_ghz} GHz not in power table ({known})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabularPowerModel({len(self._table)} points)"


#: The calibrated model used throughout the reproduction (see module docs).
DEFAULT_POWER_MODEL = CubicPowerModel()
