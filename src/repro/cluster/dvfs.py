"""DVFS actuation.

A thin actuator between the controllers and the cores, standing in for the
``cpufreq`` sysfs interface the real prototype would drive.  Haswell's
fully-integrated voltage regulators make transitions sub-microsecond
(Section 5.2), so the default transition latency is zero; a non-zero
latency can be configured to study slower platforms — the level change is
then applied after the delay through the simulator.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ClusterError
from repro.units import DvfsLevel, exactly
from repro.cluster.core import Core
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

__all__ = ["DvfsActuator"]


class DvfsActuator:
    """Applies ladder-level changes to cores, optionally with latency."""

    def __init__(
        self,
        sim: Simulator,
        transition_latency_s: float = 0.0,
    ) -> None:
        if transition_latency_s < 0.0:
            raise ClusterError(
                f"transition latency must be >= 0, got {transition_latency_s}"
            )
        self.sim = sim
        self.transition_latency_s = float(transition_latency_s)
        self._requests = 0

    @property
    def requests(self) -> int:
        """Number of level-change requests issued through this actuator."""
        return self._requests

    def set_level(self, core: Core, level: int) -> None:
        """Request ``core`` to move to ``level``.

        With zero transition latency the change is synchronous; otherwise
        the new level lands after the configured delay (the core keeps its
        old level, and old power draw, until then).
        """
        core.ladder.validate_level(level)
        self._requests += 1
        if exactly(self.transition_latency_s, 0.0):
            core.set_level(level)
        else:
            self.sim.schedule(
                self.transition_latency_s,
                core.set_level,
                level,
                priority=EventPriority.COMPLETION,
            )

    def step_down(self, core: Core) -> Optional[DvfsLevel]:
        """Drop the core one level; returns the new level or ``None`` at floor."""
        if core.level <= core.ladder.min_level:
            return None
        new_level = DvfsLevel(core.level - 1)
        self.set_level(core, new_level)
        return new_level

    def step_up(self, core: Core) -> Optional[DvfsLevel]:
        """Raise the core one level; returns the new level or ``None`` at top."""
        if core.level >= core.ladder.max_level:
            return None
        new_level = DvfsLevel(core.level + 1)
        self.set_level(core, new_level)
        return new_level
