"""The CMP machine: a pool of DVFS-capable cores.

Models the evaluation platform of Section 8.1 — a dual-socket Xeon
E5-2630v3 with 16 physical cores (SMT disabled), per-core DVFS from
1.2 GHz to 2.4 GHz.  The machine hands out whole cores to service
instances and aggregates their power draw.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ClusterError, NoCoreAvailable
from repro.cluster.contention import ContentionModel, NoContention
from repro.cluster.core import Core, CoreState
from repro.cluster.frequency import HASWELL_LADDER, FrequencyLadder
from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.sim.engine import Simulator
from repro.units import Joules, Watts

__all__ = ["Machine"]

OccupancyListener = Callable[[int], None]


class Machine:
    """A fixed pool of physical cores sharing one frequency ladder.

    An optional :class:`ContentionModel` makes the machine's occupancy
    slow every instance down (Section 8.5's collocation-interference
    investigation); occupancy listeners fire on core acquire/release so
    in-flight work can be rescaled.
    """

    def __init__(
        self,
        sim: Simulator,
        n_cores: int = 16,
        ladder: FrequencyLadder = HASWELL_LADDER,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        if n_cores <= 0:
            raise ClusterError(f"n_cores must be > 0, got {n_cores}")
        self.sim = sim
        self.ladder = ladder
        self.power_model = power_model
        self.contention = contention if contention is not None else NoContention()
        self._occupancy_listeners: list[OccupancyListener] = []
        self._cores = [
            Core(cid, ladder, power_model, lambda: sim.now) for cid in range(n_cores)
        ]

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self._cores)

    @property
    def cores(self) -> tuple[Core, ...]:
        return tuple(self._cores)

    def active_cores(self) -> list[Core]:
        """Cores currently allocated to service instances."""
        return [core for core in self._cores if core.active]

    def free_core_count(self) -> int:
        return sum(1 for core in self._cores if not core.active)

    # ------------------------------------------------------------------
    def acquire_core(self, level: int) -> Core:
        """Allocate a free core at ``level``; raises :class:`NoCoreAvailable`."""
        for core in self._cores:
            if core.state is CoreState.FREE:
                core.activate(level)
                self._notify_occupancy()
                return core
        raise NoCoreAvailable(
            f"all {len(self._cores)} cores are allocated"
        )

    def release_core(self, core: Core) -> None:
        """Return a core to the free pool."""
        if core not in self._cores:
            raise ClusterError(f"core {core.cid} does not belong to this machine")
        core.deactivate()
        self._notify_occupancy()

    # ------------------------------------------------------------------
    # Contention
    # ------------------------------------------------------------------
    def contention_slowdown(self) -> float:
        """Serving-time multiplier at the current occupancy (>= 1)."""
        return self.contention.slowdown(len(self.active_cores()), self.n_cores)

    def add_occupancy_listener(self, listener: OccupancyListener) -> None:
        """Subscribe to occupancy changes (receives the active-core count)."""
        self._occupancy_listeners.append(listener)

    def remove_occupancy_listener(self, listener: OccupancyListener) -> None:
        try:
            self._occupancy_listeners.remove(listener)
        except ValueError:
            raise ClusterError("occupancy listener was not registered") from None

    def _notify_occupancy(self) -> None:
        active = len(self.active_cores())
        for listener in tuple(self._occupancy_listeners):
            listener(active)

    # ------------------------------------------------------------------
    def total_power(self) -> Watts:
        """Instantaneous draw of all active cores, in watts."""
        return Watts(sum(core.power_watts for core in self._cores))

    def total_energy(self) -> Joules:
        """Total energy consumed by all cores so far, in joules."""
        return Joules(sum(core.energy_joules() for core in self._cores))

    def peak_power(self) -> Watts:
        """Draw if every core ran active at the top ladder level."""
        per_core = self.power_model.power_of_level(self.ladder, self.ladder.max_level)
        return Watts(per_core * len(self._cores))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({len(self.active_cores())}/{len(self._cores)} cores active, "
            f"{self.total_power():.2f} W)"
        )
