"""The CMP machine: a pool of DVFS-capable cores.

Models the evaluation platform of Section 8.1 — a dual-socket Xeon
E5-2630v3 with 16 physical cores (SMT disabled), per-core DVFS from
1.2 GHz to 2.4 GHz.  The machine hands out whole cores to service
instances and aggregates their power draw.

Occupancy bookkeeping is incremental: the machine counts active cores
and per-level populations as cores are acquired, released and retuned
(via a frequency observer it installs on every core), so the hottest
read paths — :meth:`contention_slowdown`, called once per serving
segment, and the telemetry sampler's level distribution — never scan
the core pool.  Core allocation must therefore go through
:meth:`acquire_core` / :meth:`release_core`; that is the only mutation
path the rest of the stack uses.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ClusterError, NoCoreAvailable
from repro.cluster.contention import ContentionModel, NoContention
from repro.cluster.core import Core, CoreState
from repro.cluster.frequency import HASWELL_LADDER, FrequencyLadder
from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.sim.engine import Simulator
from repro.units import Joules, Watts

__all__ = ["Machine"]

OccupancyListener = Callable[[int], None]


class Machine:
    """A fixed pool of physical cores sharing one frequency ladder.

    An optional :class:`ContentionModel` makes the machine's occupancy
    slow every instance down (Section 8.5's collocation-interference
    investigation); occupancy listeners fire on core acquire/release so
    in-flight work can be rescaled.
    """

    def __init__(
        self,
        sim: Simulator,
        n_cores: int = 16,
        ladder: FrequencyLadder = HASWELL_LADDER,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        if n_cores <= 0:
            raise ClusterError(f"n_cores must be > 0, got {n_cores}")
        self.sim = sim
        self.ladder = ladder
        self.power_model = power_model
        self.contention = contention if contention is not None else NoContention()
        # NoContention always answers 1.0; skipping the call entirely on
        # this (default) configuration keeps the per-segment work-rate
        # computation free of any contention-model dispatch.  Exact type
        # check: a subclass may override slowdown().
        self._no_contention = type(self.contention) is NoContention
        self._occupancy_listeners: list[OccupancyListener] = []
        self._cores = [
            Core(cid, ladder, power_model, lambda: sim.now) for cid in range(n_cores)
        ]
        self._active_count = 0
        self._level_counts: dict[int, int] = {}
        for core in self._cores:
            core.add_observer(self._on_core_level_change)

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self._cores)

    @property
    def cores(self) -> tuple[Core, ...]:
        return tuple(self._cores)

    def active_cores(self) -> list[Core]:
        """Cores currently allocated to service instances."""
        return [core for core in self._cores if core.active]

    @property
    def active_core_count(self) -> int:
        """Number of allocated cores (maintained, never scanned)."""
        return self._active_count

    def free_core_count(self) -> int:
        return len(self._cores) - self._active_count

    def level_counts(self) -> tuple[tuple[int, int], ...]:
        """``(level, active-core count)`` pairs, sorted by level."""
        return tuple(sorted(self._level_counts.items()))

    # ------------------------------------------------------------------
    def acquire_core(self, level: int) -> Core:
        """Allocate a free core at ``level``; raises :class:`NoCoreAvailable`."""
        for core in self._cores:
            if core.state is CoreState.FREE:
                core.activate(level)
                self._active_count += 1
                counts = self._level_counts
                counts[level] = counts.get(level, 0) + 1
                self._notify_occupancy()
                return core
        raise NoCoreAvailable(
            f"all {len(self._cores)} cores are allocated"
        )

    def release_core(self, core: Core) -> None:
        """Return a core to the free pool."""
        if core not in self._cores:
            raise ClusterError(f"core {core.cid} does not belong to this machine")
        level = core.level
        core.deactivate()
        self._active_count -= 1
        counts = self._level_counts
        remaining = counts[level] - 1
        if remaining:
            counts[level] = remaining
        else:
            del counts[level]
        self._notify_occupancy()

    def _on_core_level_change(self, core: Core, old_level: int, new_level: int) -> None:
        counts = self._level_counts
        remaining = counts[old_level] - 1
        if remaining:
            counts[old_level] = remaining
        else:
            del counts[old_level]
        counts[new_level] = counts.get(new_level, 0) + 1

    # ------------------------------------------------------------------
    # Contention
    # ------------------------------------------------------------------
    def contention_slowdown(self) -> float:
        """Serving-time multiplier at the current occupancy (>= 1)."""
        if self._no_contention:
            return 1.0
        return self.contention.slowdown(self._active_count, len(self._cores))

    def add_occupancy_listener(self, listener: OccupancyListener) -> None:
        """Subscribe to occupancy changes (receives the active-core count)."""
        self._occupancy_listeners.append(listener)

    def remove_occupancy_listener(self, listener: OccupancyListener) -> None:
        try:
            self._occupancy_listeners.remove(listener)
        except ValueError:
            raise ClusterError("occupancy listener was not registered") from None

    def _notify_occupancy(self) -> None:
        active = self._active_count
        for listener in tuple(self._occupancy_listeners):
            listener(active)

    # ------------------------------------------------------------------
    def total_power(self) -> Watts:
        """Instantaneous draw of all active cores, in watts."""
        return Watts(sum(core.power_watts for core in self._cores))

    def total_energy(self) -> Joules:
        """Total energy consumed by all cores so far, in joules."""
        return Joules(sum(core.energy_joules() for core in self._cores))

    def peak_power(self) -> Watts:
        """Draw if every core ran active at the top ladder level."""
        per_core = self.power_model.power_of_level(self.ladder, self.ladder.max_level)
        return Watts(per_core * len(self._cores))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self._active_count}/{len(self._cores)} cores active, "
            f"{self.total_power():.2f} W)"
        )
