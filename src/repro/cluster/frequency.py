"""The DVFS frequency ladder.

The paper's testbed (Intel Xeon E5-2630v3, Haswell) exposes per-core DVFS
from 1.2 GHz to 2.4 GHz in 0.1 GHz steps (Section 8.1).  A
:class:`FrequencyLadder` models that discrete ladder: controllers move
cores between integer *levels*; level 0 is the slowest step.

Frequencies are floats in GHz.  All level math is done on the integer
index so floating-point noise never produces an off-ladder frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import FrequencyError
from repro.units import Ghz, DvfsLevel

__all__ = ["FrequencyLadder", "HASWELL_LADDER"]

_TOLERANCE_GHZ = 1e-6


@dataclass(frozen=True)
class FrequencyLadder:
    """A discrete set of equally spaced core frequencies.

    Parameters
    ----------
    min_ghz, max_ghz, step_ghz:
        Inclusive range and step of the ladder, in GHz.
    """

    min_ghz: float = 1.2
    max_ghz: float = 2.4
    step_ghz: float = 0.1
    levels: tuple[Ghz, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_ghz <= 0.0:
            raise FrequencyError(f"min_ghz must be > 0, got {self.min_ghz}")
        if self.step_ghz <= 0.0:
            raise FrequencyError(f"step_ghz must be > 0, got {self.step_ghz}")
        if self.max_ghz < self.min_ghz:
            raise FrequencyError(
                f"max_ghz ({self.max_ghz}) must be >= min_ghz ({self.min_ghz})"
            )
        span = self.max_ghz - self.min_ghz
        count = int(round(span / self.step_ghz)) + 1
        if not math.isclose(
            self.min_ghz + (count - 1) * self.step_ghz,
            self.max_ghz,
            abs_tol=_TOLERANCE_GHZ,
        ):
            raise FrequencyError(
                f"ladder span {span} GHz is not a whole number of "
                f"{self.step_ghz} GHz steps"
            )
        levels = tuple(
            Ghz(round(self.min_ghz + i * self.step_ghz, 9)) for i in range(count)
        )
        object.__setattr__(self, "levels", levels)

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of steps on the ladder."""
        return len(self.levels)

    @property
    def min_level(self) -> DvfsLevel:
        """Index of the slowest step (always 0)."""
        return DvfsLevel(0)

    @property
    def max_level(self) -> DvfsLevel:
        """Index of the fastest step."""
        return DvfsLevel(len(self.levels) - 1)

    def frequency_of(self, level: int) -> Ghz:
        """Frequency in GHz of the given level index."""
        self.validate_level(level)
        return self.levels[level]

    def level_of(self, freq_ghz: float) -> DvfsLevel:
        """Level index whose frequency equals ``freq_ghz`` (within tolerance)."""
        for index, freq in enumerate(self.levels):
            if math.isclose(freq, freq_ghz, abs_tol=_TOLERANCE_GHZ):
                return DvfsLevel(index)
        raise FrequencyError(
            f"{freq_ghz} GHz is not on the ladder "
            f"[{self.min_ghz}..{self.max_ghz} step {self.step_ghz}]"
        )

    def validate_level(self, level: int) -> None:
        """Raise :class:`FrequencyError` if ``level`` is off the ladder."""
        if not isinstance(level, int) or isinstance(level, bool):
            raise FrequencyError(f"level must be an int, got {level!r}")
        if not 0 <= level < len(self.levels):
            raise FrequencyError(
                f"level {level} out of range [0, {len(self.levels) - 1}]"
            )

    def clamp_level(self, level: int) -> DvfsLevel:
        """Clamp an integer to the valid level range."""
        return DvfsLevel(max(0, min(int(level), self.max_level)))

    def nearest_level(self, freq_ghz: float) -> DvfsLevel:
        """Level whose frequency is closest to ``freq_ghz``."""
        raw = (freq_ghz - self.min_ghz) / self.step_ghz
        return self.clamp_level(int(round(raw)))

    def __iter__(self) -> Iterator[Ghz]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)


#: The ladder of the paper's evaluation platform (Section 8.1).
HASWELL_LADDER = FrequencyLadder(min_ghz=1.2, max_ghz=2.4, step_ghz=0.1)
