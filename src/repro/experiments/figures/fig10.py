"""Figure 10: Sirius latency improvement across policies and load levels.

"Compared to other boosting techniques, it is clear that PowerChief
achieves the most latency reduction under all loads" — frequency
boosting, instance boosting and PowerChief, each against the
stage-agnostic baseline, at the paper's three load levels.  The
across-load averages are the paper's Section 8.2 headline numbers
(20.3x average, 13.3x tail on their testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments.figures.common import (
    DEFAULT_SEEDS,
    ImprovementCell,
    improvement_grid,
)
from repro.experiments.report import format_heading, format_table
from repro.workloads.sirius import sirius_load_levels

__all__ = ["ImprovementFigureResult", "run_fig10", "render_improvement_figure"]

POLICIES = ("freq-boost", "inst-boost", "powerchief")
LOADS = ("low", "medium", "high")


@dataclass(frozen=True)
class ImprovementFigureResult:
    """Shared result shape for Figures 10 and 12."""

    app: str
    figure: str
    cells: tuple[ImprovementCell, ...]

    def cell(self, policy: str, load: str) -> ImprovementCell:
        for candidate in self.cells:
            if candidate.policy == policy and candidate.load == load:
                return candidate
        raise ExperimentError(f"no cell for {policy}@{load}")

    def average_improvement(self, policy: str) -> tuple[float, float]:
        """(avg, p99) improvement of a policy averaged across load levels."""
        cells = [cell for cell in self.cells if cell.policy == policy]
        if not cells:
            raise ExperimentError(f"no cells for policy {policy!r}")
        avg = sum(cell.avg_improvement for cell in cells) / len(cells)
        p99 = sum(cell.p99_improvement for cell in cells) / len(cells)
        return avg, p99


def run_fig10(
    duration_s: float = 600.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ImprovementFigureResult:
    """Run the full Figure-10 grid for Sirius."""
    levels = sirius_load_levels()
    cells = improvement_grid(
        app="sirius",
        loads={
            "low": levels.low_qps,
            "medium": levels.medium_qps,
            "high": levels.high_qps,
        },
        policies=POLICIES,
        duration_s=duration_s,
        seeds=seeds,
    )
    return ImprovementFigureResult(
        app="sirius", figure="Figure 10", cells=tuple(cells)
    )


def render_improvement_figure(result: ImprovementFigureResult) -> str:
    """ASCII rendering shared by Figures 10 and 12."""
    sections = [
        format_heading(
            f"{result.figure}: latency improvement for {result.app} "
            f"(vs stage-agnostic baseline)"
        )
    ]
    for load in LOADS:
        rows = []
        for policy in POLICIES:
            cell = result.cell(policy, load)
            rows.append(
                (
                    policy,
                    f"{cell.avg_improvement:.2f}x",
                    f"{cell.p99_improvement:.2f}x",
                    f"{cell.mean_latency_s:.3f}s",
                )
            )
        sections.append(f"({load} load)")
        sections.append(
            format_table(
                ["policy", "avg latency", "99th latency", "mean latency"], rows
            )
        )
    rows = []
    for policy in POLICIES:
        avg, p99 = result.average_improvement(policy)
        rows.append((policy, f"{avg:.2f}x", f"{p99:.2f}x"))
    sections.append("(across-load averages — the paper's headline numbers)")
    sections.append(format_table(["policy", "avg latency", "99th latency"], rows))
    return "\n".join(sections)
