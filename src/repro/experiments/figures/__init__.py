"""Per-figure experiment drivers.

One module per table/figure of the paper's evaluation; each exposes a
``run_*`` function returning a structured result and a ``render_*``
function producing the ASCII analog of the figure.
"""

from repro.experiments.figures.common import (
    DEFAULT_SEEDS,
    ImprovementCell,
    improvement_grid,
    seed_averaged_latency,
)
from repro.experiments.figures.fig02 import (
    Fig02Bar,
    Fig02Result,
    render_fig02,
    run_fig02,
)
from repro.experiments.figures.fig04 import Fig04Result, render_fig04, run_fig04
from repro.experiments.figures.fig10 import (
    ImprovementFigureResult,
    render_improvement_figure,
    run_fig10,
)
from repro.experiments.figures.fig11 import Fig11Result, render_fig11, run_fig11
from repro.experiments.figures.fig12 import render_fig12, run_fig12
from repro.experiments.figures.fig13 import (
    QosFigureResult,
    render_fig13,
    render_qos_figure,
    run_fig13,
)
from repro.experiments.figures.fig14 import render_fig14, run_fig14
from repro.experiments.figures.tables import (
    TABLE1_ROWS,
    TABLE4_SYSTEMS,
    SystemCapabilities,
    render_table1,
    render_table4,
)

__all__ = [
    "DEFAULT_SEEDS",
    "ImprovementCell",
    "improvement_grid",
    "seed_averaged_latency",
    "Fig02Bar",
    "Fig02Result",
    "render_fig02",
    "run_fig02",
    "Fig04Result",
    "render_fig04",
    "run_fig04",
    "ImprovementFigureResult",
    "render_improvement_figure",
    "run_fig10",
    "Fig11Result",
    "render_fig11",
    "run_fig11",
    "render_fig12",
    "run_fig12",
    "QosFigureResult",
    "render_fig13",
    "render_qos_figure",
    "run_fig13",
    "render_fig14",
    "run_fig14",
    "TABLE1_ROWS",
    "TABLE4_SYSTEMS",
    "SystemCapabilities",
    "render_table1",
    "render_table4",
]
