"""Figure 4: frequency vs instance boosting under low and high load.

"During the low load, frequency boosting improves the average and 99%
percentile latency ... however instance boosting only achieves [less].
Whereas during the high load, instance boosting improves [latency far
more] compared to ... frequency boosting due to the dominate queuing
delay."  This is the observation that motivates the adaptive boosting
decision engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments.figures.common import (
    DEFAULT_SEEDS,
    ImprovementCell,
    improvement_grid,
)
from repro.experiments.report import format_heading, format_table
from repro.workloads.sirius import sirius_load_levels

__all__ = ["Fig04Result", "run_fig04", "render_fig04"]


@dataclass(frozen=True)
class Fig04Result:
    cells: tuple[ImprovementCell, ...]

    def cell(self, policy: str, load: str) -> ImprovementCell:
        for candidate in self.cells:
            if candidate.policy == policy and candidate.load == load:
                return candidate
        raise ExperimentError(f"no cell for {policy}@{load}")


def run_fig04(
    duration_s: float = 600.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Fig04Result:
    """Run frequency and instance boosting at low and high Sirius load."""
    levels = sirius_load_levels()
    cells = improvement_grid(
        app="sirius",
        loads={"low": levels.low_qps, "high": levels.high_qps},
        policies=("freq-boost", "inst-boost"),
        duration_s=duration_s,
        seeds=seeds,
    )
    return Fig04Result(cells=tuple(cells))


def render_fig04(result: Fig04Result) -> str:
    """ASCII rendering of Figure 4's two panels."""
    sections = [format_heading("Figure 4: boosting-technique tradeoff (Sirius)")]
    for load in ("low", "high"):
        rows = []
        for policy in ("freq-boost", "inst-boost"):
            cell = result.cell(policy, load)
            rows.append(
                (
                    policy,
                    f"{cell.avg_improvement:.2f}x",
                    f"{cell.p99_improvement:.2f}x",
                )
            )
        sections.append(f"({load} load)")
        sections.append(
            format_table(["technique", "avg latency", "99th latency"], rows)
        )
    return "\n".join(sections)
