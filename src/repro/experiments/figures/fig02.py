"""Figure 2: normalized Sirius latency when boosting single stages.

The paper's motivating experiment: under the same 13.56 W budget, boost
exactly one stage — with frequency boosting or instance boosting — and
observe how wildly the response latency varies with the choice.  "The
nonoptimal boosting decision (e.g., instance boosting the IMM service)
results in significant performance degradation ... Compared to the
optimal boosting decision with the right boosting technique (e.g.,
instance boosting the QA service), the latency reduction is more than
40%."

Each bar is a *static* allocation (no runtime controller):

* frequency-boosting stage X: X's instance at the highest level the
  budget affords with every other stage dropped to the ladder floor;
* instance-boosting stage X: two instances of X at the highest equal
  level that fits alongside the floored other stages.

Latency is normalized to the stage-agnostic baseline (all stages at
1.8 GHz), so values below 1.0 are improvements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.cluster.frequency import HASWELL_LADDER
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.experiments.config import (
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
)
from repro.experiments.figures.common import DEFAULT_SEEDS
from repro.experiments.report import format_heading, format_table
from repro.experiments.runner import StageAllocation, run_latency_experiment
from repro.workloads.loadgen import ConstantLoad
from repro.workloads.sirius import SIRIUS_STAGES, sirius_load_levels

__all__ = ["Fig02Bar", "Fig02Result", "run_fig02", "render_fig02"]


@dataclass(frozen=True)
class Fig02Bar:
    """One bar of Figure 2."""

    stage: str
    technique: str
    normalized_latency: float
    allocation: dict[str, StageAllocation]


@dataclass(frozen=True)
class Fig02Result:
    baseline_mean_s: float
    bars: tuple[Fig02Bar, ...]

    def best(self) -> Fig02Bar:
        """The bar with the lowest normalized latency."""
        return min(self.bars, key=lambda bar: bar.normalized_latency)

    def worst(self) -> Fig02Bar:
        return max(self.bars, key=lambda bar: bar.normalized_latency)

    def bar(self, stage: str, technique: str) -> Fig02Bar:
        for candidate in self.bars:
            if candidate.stage == stage and candidate.technique == technique:
                return candidate
        raise ExperimentError(f"no bar for {stage}/{technique}")


def _boost_allocations(stage: str) -> dict[str, dict[str, StageAllocation]]:
    """The frequency- and instance-boost allocations for one stage."""
    ladder = HASWELL_LADDER
    model = DEFAULT_POWER_MODEL
    floor = ladder.min_level
    others = [name for name in SIRIUS_STAGES if name != stage]
    floor_watts = model.power_of_level(ladder, floor) * len(others)
    headroom = TABLE2_POWER_BUDGET_WATTS - floor_watts

    freq_level = model.max_level_within(ladder, headroom)
    if freq_level is None:
        raise ExperimentError(
            f"budget {TABLE2_POWER_BUDGET_WATTS} W cannot host stage {stage}"
        )
    inst_level = model.max_level_within(ladder, headroom / 2.0)
    if inst_level is None:
        raise ExperimentError(
            f"budget {TABLE2_POWER_BUDGET_WATTS} W cannot host two instances "
            f"of stage {stage}"
        )
    freq_alloc = {name: StageAllocation(1, floor) for name in others}
    freq_alloc[stage] = StageAllocation(1, freq_level)
    inst_alloc = {name: StageAllocation(1, floor) for name in others}
    inst_alloc[stage] = StageAllocation(2, inst_level)
    return {"frequency": freq_alloc, "instance": inst_alloc}


def run_fig02(
    duration_s: float = 600.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Fig02Result:
    """Run every static single-stage boost under low load.

    Low load keeps the floored non-boosted stages out of saturation, so
    a wrong boosting decision degrades latency by tens of percent (as in
    the figure) rather than driving an unbounded queue.
    """
    rate = sirius_load_levels().low_qps

    def mean_for(allocation) -> float:
        runs = [
            run_latency_experiment(
                "sirius",
                "static",
                ConstantLoad(rate),
                duration_s,
                seed=seed,
                allocation=allocation,
            )
            for seed in seeds
        ]
        return sum(run.latency.mean for run in runs) / len(runs)

    baseline_level = HASWELL_LADDER.level_of(TABLE2_INITIAL_FREQ_GHZ)
    baseline_alloc = {
        name: StageAllocation(1, baseline_level) for name in SIRIUS_STAGES
    }
    baseline_mean = mean_for(baseline_alloc)

    bars = []
    for stage in SIRIUS_STAGES:
        for technique, allocation in _boost_allocations(stage).items():
            bars.append(
                Fig02Bar(
                    stage=stage,
                    technique=technique,
                    normalized_latency=mean_for(allocation) / baseline_mean,
                    allocation=allocation,
                )
            )
    return Fig02Result(baseline_mean_s=baseline_mean, bars=tuple(bars))


def render_fig02(result: Fig02Result) -> str:
    """ASCII rendering of Figure 2."""
    rows = [
        (
            f"Boost {bar.stage} only",
            bar.technique,
            f"{bar.normalized_latency:.3f}",
        )
        for bar in result.bars
    ]
    table = format_table(
        ["configuration", "technique", "normalized latency"], rows
    )
    best = result.best()
    return (
        format_heading(
            "Figure 2: normalized Sirius latency, single-stage boosting"
        )
        + f"\nbaseline (all stages 1.8 GHz) mean latency: "
        f"{result.baseline_mean_s:.3f}s\n"
        + table
        + f"\nbest decision: {best.technique}-boost {best.stage} "
        f"({best.normalized_latency:.3f}x baseline)"
    )
