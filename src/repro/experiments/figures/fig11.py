"""Figure 11: runtime behaviour of Sirius under fluctuating high load.

The paper's deep-dive trace: the number of instances per stage and each
instance's frequency over a ~900 s run, for frequency boosting, instance
boosting and PowerChief.  The characteristic behaviours to look for:

* frequency boosting (a): power bounces between the QA and ASR instances
  as the bottleneck moves; during the 175-275 s low-load valley the QA
  instance is boosted toward the ladder top;
* instance boosting (b): clones accumulate until every core sits at the
  ladder floor and no further clone can be funded — the lock-in;
* PowerChief (c): clones absorb the load ramp, then instance withdraw
  recycles an idle clone's power to frequency-boost the remaining
  bottleneck, escaping the lock-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ExperimentError
from repro.core.actions import InstanceLaunchAction, InstanceWithdrawAction
from repro.experiments.report import format_heading, format_table
from repro.experiments.runner import RunResult, run_latency_experiment
from repro.experiments.sampling import StateSample
from repro.workloads.sirius import SIRIUS_STAGES, sirius_load_levels
from repro.workloads.traces import FIG11_DURATION_S, fig11_trace

__all__ = ["Fig11Result", "run_fig11", "render_fig11"]

POLICIES = ("freq-boost", "inst-boost", "powerchief")


@dataclass(frozen=True)
class Fig11Result:
    runs: tuple[RunResult, ...]

    def run_for(self, policy: str) -> RunResult:
        for run in self.runs:
            if run.policy == policy:
                return run
        raise ExperimentError(f"no run for policy {policy!r}")

    def launches(self, policy: str) -> int:
        return sum(
            1
            for action in self.run_for(policy).actions
            if isinstance(action, InstanceLaunchAction)
        )

    def withdrawals(self, policy: str) -> int:
        return sum(
            1
            for action in self.run_for(policy).actions
            if isinstance(action, InstanceWithdrawAction)
        )


def run_fig11(
    duration_s: float = FIG11_DURATION_S,
    seed: int = 3,
    sample_interval_s: float = 25.0,
) -> Fig11Result:
    """Run the three boosting policies under the Figure-11 load trace."""
    trace = fig11_trace(sirius_load_levels().high_qps)
    runs = tuple(
        run_latency_experiment(
            "sirius",
            policy,
            trace,
            duration_s,
            seed=seed,
            sample_interval_s=sample_interval_s,
        )
        for policy in POLICIES
    )
    return Fig11Result(runs=runs)


def _format_sample(sample: StateSample) -> tuple[str, ...]:
    cells = [f"{sample.time:.0f}"]
    for stage_name in SIRIUS_STAGES:
        snapshot = sample.stage(stage_name)
        freqs = "/".join(f"{ghz:.1f}" for _, ghz in snapshot.frequencies)
        cells.append(f"{snapshot.instance_count}x [{freqs}]")
    cells.append(f"{sample.total_power_watts:.2f}")
    return tuple(cells)


def render_fig11(result: Fig11Result, every_nth_sample: int = 5) -> str:
    """ASCII rendering: one timeline panel per policy."""
    sections = [
        format_heading(
            "Figure 11: Sirius runtime behaviour under fluctuating load"
        )
    ]
    headers = ["t(s)"] + [f"{name} (count [GHz])" for name in SIRIUS_STAGES] + [
        "power(W)"
    ]
    for policy in POLICIES:
        run = result.run_for(policy)
        rows = [
            _format_sample(sample)
            for index, sample in enumerate(run.state_samples)
            if index % every_nth_sample == 0
        ]
        sections.append(
            f"({policy}: {result.launches(policy)} launches, "
            f"{result.withdrawals(policy)} withdrawals, "
            f"mean latency {run.latency.mean:.2f}s)"
        )
        sections.append(format_table(headers, rows))
    return "\n".join(sections)
