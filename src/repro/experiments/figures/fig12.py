"""Figure 12: NLP latency improvement across policies and load levels.

The NLP (Senna) analog of Figure 10: "PowerChief achieves the most
average and 99% latency reduction in all cases" — with the paper's
Section 8.3 headline of 32.4x average / 19.4x tail on their testbed.  At
low load PowerChief tracks frequency boosting; at medium and high load it
tracks (or beats) instance boosting.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures.common import DEFAULT_SEEDS, improvement_grid
from repro.experiments.figures.fig10 import (
    POLICIES,
    ImprovementFigureResult,
    render_improvement_figure,
)
from repro.workloads.nlp import nlp_load_levels

__all__ = ["run_fig12", "render_fig12"]


def run_fig12(
    duration_s: float = 600.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> ImprovementFigureResult:
    """Run the full Figure-12 grid for the NLP application."""
    levels = nlp_load_levels()
    cells = improvement_grid(
        app="nlp",
        loads={
            "low": levels.low_qps,
            "medium": levels.medium_qps,
            "high": levels.high_qps,
        },
        policies=POLICIES,
        duration_s=duration_s,
        seeds=seeds,
    )
    return ImprovementFigureResult(app="nlp", figure="Figure 12", cells=tuple(cells))


def render_fig12(result: ImprovementFigureResult) -> str:
    """ASCII rendering of Figure 12."""
    return render_improvement_figure(result)
