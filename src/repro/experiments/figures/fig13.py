"""Figure 13: power saving under a latency QoS — Sirius.

Section 8.4's first panel pair: the Table-3 over-provisioned Sirius
deployment (4 ASR + 2 IMM + 5 QA at 2.4 GHz, QoS 2 s), run under no
control (baseline), Pegasus, and PowerChief's conservation policy.  The
figure plots the end-to-end latency as a fraction of the QoS target and
the draw as a fraction of peak power over the timeline; the paper's
summary is "PowerChief saves 25% ... power over the baseline ..., whereas
Pegasus saves 2%" while both meet the QoS.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ExperimentError
from repro.experiments.config import TABLE3_SIRIUS, Table3Setup
from repro.experiments.report import format_heading, format_table
from repro.experiments.runner import QosRunResult, run_qos_experiment

__all__ = ["QosFigureResult", "run_fig13", "render_qos_figure", "render_fig13"]

POLICIES = ("baseline", "pegasus", "powerchief")

#: Arrival rate for the Sirius QoS runs: ~63% of the Table-3 deployment's
#: QA-stage saturation, leaving the latency slack Figure 13 trades away.
SIRIUS_QOS_RATE_QPS = 7.0


@dataclass(frozen=True)
class QosFigureResult:
    """Shared result shape for Figures 13 and 14."""

    figure: str
    setup: Table3Setup
    runs: tuple[QosRunResult, ...]

    def run_for(self, policy: str) -> QosRunResult:
        for run in self.runs:
            if run.policy == policy:
                return run
        raise ExperimentError(f"no run for policy {policy!r}")

    def saving_over_baseline(self, policy: str) -> float:
        """Power saving of a policy relative to the uncontrolled baseline."""
        baseline = self.run_for("baseline").average_power_fraction
        return (baseline - self.run_for(policy).average_power_fraction) / baseline


def run_fig13(
    duration_s: float = 800.0,
    seed: int = 3,
    rate_qps: float = SIRIUS_QOS_RATE_QPS,
) -> QosFigureResult:
    """Run the three QoS policies on the Table-3 Sirius deployment."""
    runs = tuple(
        run_qos_experiment(
            TABLE3_SIRIUS, policy, rate_qps=rate_qps, duration_s=duration_s, seed=seed
        )
        for policy in POLICIES
    )
    return QosFigureResult(figure="Figure 13", setup=TABLE3_SIRIUS, runs=runs)


def render_qos_figure(result: QosFigureResult, every_nth_sample: int = 8) -> str:
    """ASCII rendering shared by Figures 13 and 14."""
    sections = [
        format_heading(
            f"{result.figure}: power saving for {result.setup.app} under a "
            f"{result.setup.qos_target_s:g}s QoS"
        )
    ]
    rows = []
    for policy in POLICIES:
        run = result.run_for(policy)
        rows.append(
            (
                policy,
                f"{run.latency.mean / run.qos_target_s:.2f}",
                f"{run.average_power_fraction:.3f}",
                f"{result.saving_over_baseline(policy) * 100.0:.1f}%",
                f"{run.violation_fraction * 100.0:.1f}%",
            )
        )
    sections.append(
        format_table(
            [
                "policy",
                "latency/QoS",
                "power/peak",
                "saving vs baseline",
                "QoS violations",
            ],
            rows,
        )
    )
    sections.append("(sparklines over the timeline, scale 0..1.2)")
    from repro.util.sparkline import sparkline

    for policy in POLICIES:
        samples = result.run_for(policy).qos_samples
        latency_series = [sample.latency_fraction for sample in samples]
        power_series = [sample.power_fraction for sample in samples]
        sections.append(
            f"{policy:<11} latency {sparkline(latency_series, 0.0, 1.2)}"
        )
        sections.append(
            f"{policy:<11} power   {sparkline(power_series, 0.0, 1.2)}"
        )
    sections.append("(timeline: latency fraction | power fraction per policy)")
    headers = ["t(s)"] + [f"{policy} lat|pwr" for policy in POLICIES]
    timeline_rows = []
    reference = result.run_for("baseline").qos_samples
    for index in range(0, len(reference), every_nth_sample):
        row = [f"{reference[index].time:.0f}"]
        for policy in POLICIES:
            samples = result.run_for(policy).qos_samples
            if index >= len(samples):
                row.append("-")
                continue
            sample = samples[index]
            latency = (
                "-"
                if sample.latency_fraction is None
                else f"{sample.latency_fraction:.2f}"
            )
            row.append(f"{latency}|{sample.power_fraction:.2f}")
        timeline_rows.append(tuple(row))
    sections.append(format_table(headers, timeline_rows))
    return "\n".join(sections)


def render_fig13(result: QosFigureResult) -> str:
    return render_qos_figure(result)
