"""Shared machinery for the figure experiments.

Most of the evaluation reports *latency improvement*: the static
stage-agnostic baseline's latency divided by a policy's latency, per load
level, for the average and the 99th percentile.  ``improvement_grid``
produces that grid for any application, averaging latencies across seeds
before taking ratios so that one lucky tail sample cannot flip a cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ExperimentError
from repro.experiments.runner import RunResult, run_latency_experiment
from repro.workloads.loadgen import ConstantLoad

__all__ = ["ImprovementCell", "seed_averaged_latency", "improvement_grid"]

#: Seeds used when a figure experiment does not specify its own.
DEFAULT_SEEDS = (3, 5)


@dataclass(frozen=True)
class ImprovementCell:
    """One (policy, load level) cell of an improvement figure."""

    app: str
    policy: str
    load: str
    mean_latency_s: float
    p99_latency_s: float
    avg_improvement: float
    p99_improvement: float


def seed_averaged_latency(
    app: str,
    policy: str,
    rate_qps: float,
    duration_s: float,
    seeds: Sequence[int],
    **kwargs,
) -> tuple[float, float, list[RunResult]]:
    """(mean latency, p99 latency) averaged over seeds, plus the raw runs."""
    if not seeds:
        raise ExperimentError("need at least one seed")
    runs = [
        run_latency_experiment(
            app, policy, ConstantLoad(rate_qps), duration_s, seed=seed, **kwargs
        )
        for seed in seeds
    ]
    mean = sum(run.latency.mean for run in runs) / len(runs)
    p99 = sum(run.latency.p99 for run in runs) / len(runs)
    return mean, p99, runs


def improvement_grid(
    app: str,
    loads: Mapping[str, float],
    policies: Sequence[str],
    duration_s: float,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> list[ImprovementCell]:
    """Improvement of each policy over the static baseline per load level.

    ``loads`` maps load-level names to arrival rates.  The static baseline
    is run implicitly for every level; passing "static" in ``policies``
    additionally reports the baseline's own (1.0x) row.
    """
    cells: list[ImprovementCell] = []
    for load_name, rate in loads.items():
        base_mean, base_p99, _ = seed_averaged_latency(
            app, "static", rate, duration_s, seeds
        )
        for policy in policies:
            if policy == "static":
                mean, p99 = base_mean, base_p99
            else:
                mean, p99, _ = seed_averaged_latency(
                    app, policy, rate, duration_s, seeds
                )
            cells.append(
                ImprovementCell(
                    app=app,
                    policy=policy,
                    load=load_name,
                    mean_latency_s=mean,
                    p99_latency_s=p99,
                    avg_improvement=base_mean / mean,
                    p99_improvement=base_p99 / p99,
                )
            )
    return cells
