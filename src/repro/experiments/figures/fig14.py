"""Figure 14: power saving under a latency QoS — Web Search.

The Table-3 Web Search deployment (1 aggregation + 10 scatter-gather
leaves at 2.4 GHz, QoS 250 ms) "demonstrate[s] the ability in handling
different stage organizations".  Paper summary: PowerChief saves 43%
power over the baseline versus Pegasus's 10%, because the leaf tier's
large latency slack can be traded per-instance (frequency de-boost and
leaf withdraw) while Pegasus's uniform control is pinned by its
instantaneous-latency bail-outs.
"""

from __future__ import annotations

from repro.experiments.config import TABLE3_WEBSEARCH
from repro.experiments.figures.fig13 import (
    POLICIES,
    QosFigureResult,
    render_qos_figure,
)
from repro.experiments.runner import run_qos_experiment

__all__ = ["run_fig14", "render_fig14", "WEBSEARCH_QOS_RATE_QPS"]

#: Arrival rate for the Web Search QoS runs: ~40% leaf utilisation,
#: matching the figure's baseline latency fraction of ~0.45.
WEBSEARCH_QOS_RATE_QPS = 8.0


def run_fig14(
    duration_s: float = 200.0,
    seed: int = 3,
    rate_qps: float = WEBSEARCH_QOS_RATE_QPS,
) -> QosFigureResult:
    """Run the three QoS policies on the Table-3 Web Search deployment."""
    runs = tuple(
        run_qos_experiment(
            TABLE3_WEBSEARCH,
            policy,
            rate_qps=rate_qps,
            duration_s=duration_s,
            seed=seed,
        )
        for policy in POLICIES
    )
    return QosFigureResult(figure="Figure 14", setup=TABLE3_WEBSEARCH, runs=runs)


def render_fig14(result: QosFigureResult) -> str:
    return render_qos_figure(result)
