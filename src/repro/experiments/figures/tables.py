"""Tables 1 and 4 of the paper as renderable artefacts.

Table 1 lists the candidate latency metrics for bottleneck identification
(all implemented in :mod:`repro.core.metrics`); Table 4 is the capability
comparison between PowerChief and prior work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import MetricKind
from repro.experiments.report import format_heading, format_table

__all__ = [
    "TABLE1_ROWS",
    "render_table1",
    "SystemCapabilities",
    "TABLE4_SYSTEMS",
    "render_table4",
]

#: Table 1: metric name, its calculation, and the implementing MetricKind.
TABLE1_ROWS: tuple[tuple[str, str, MetricKind], ...] = (
    ("Average queuing time", "q_i", MetricKind.AVG_QUEUING),
    ("Average serving time", "s_i", MetricKind.AVG_SERVING),
    ("Average processing delay", "q_i + s_i", MetricKind.AVG_PROCESSING),
    ("99th queuing time", "tq_i", MetricKind.P99_QUEUING),
    ("99th serving time", "ts_i", MetricKind.P99_SERVING),
    ("99th processing delay", "tq_i + ts_i", MetricKind.P99_PROCESSING),
)


def render_table1() -> str:
    """ASCII rendering of Table 1 plus the Equation-1 metric."""
    rows = [
        (name, calc, kind.value) for name, calc, kind in TABLE1_ROWS
    ]
    rows.append(
        ("PowerChief latency metric (Eq. 1)", "L_i * q_i + s_i", MetricKind.POWERCHIEF.value)
    )
    return (
        format_heading("Table 1: metrics available to identify bottleneck service")
        + "\n"
        + format_table(["metric", "calculation", "MetricKind"], rows)
    )


@dataclass(frozen=True)
class SystemCapabilities:
    """One column of Table 4."""

    system: str
    multi_stage_awareness: bool
    power_constraint: bool
    commodity_hardware: bool
    runtime_system: bool
    power_management: bool


#: Table 4: comparison between PowerChief and existing work.
TABLE4_SYSTEMS: tuple[SystemCapabilities, ...] = (
    SystemCapabilities("Pegasus", False, True, True, True, True),
    SystemCapabilities("Timetrader", True, False, True, True, True),
    SystemCapabilities("Kwiken", True, False, True, False, False),
    SystemCapabilities("Adrenaline", False, True, False, True, True),
    SystemCapabilities("Bubble-Flux", False, False, True, True, False),
    SystemCapabilities("Quasar", False, False, True, True, False),
    SystemCapabilities("PowerChief", True, True, True, True, True),
)


def render_table4() -> str:
    """ASCII rendering of Table 4."""

    def mark(flag: bool) -> str:
        return "yes" if flag else "-"

    rows = [
        (
            system.system,
            mark(system.multi_stage_awareness),
            mark(system.power_constraint),
            mark(system.commodity_hardware),
            mark(system.runtime_system),
            mark(system.power_management),
        )
        for system in TABLE4_SYSTEMS
    ]
    return (
        format_heading("Table 4: PowerChief versus existing work")
        + "\n"
        + format_table(
            [
                "system",
                "multi-stage",
                "power constraint",
                "commodity HW",
                "runtime system",
                "power mgmt",
            ],
            rows,
        )
    )
