"""Experiment harness: configurations, runners and per-figure drivers."""

from repro.experiments.config import (
    TABLE2_CONTROLLER_CONFIG,
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
    TABLE3_SIRIUS,
    TABLE3_WEBSEARCH,
    Table3Setup,
)
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    EngineReport,
    ResultCache,
    fan_out,
    run_cells,
    spec_digest,
)
from repro.experiments.report import format_heading, format_table
from repro.experiments.runner import (
    LATENCY_POLICIES,
    QOS_POLICIES,
    QosRunResult,
    RunResult,
    StageAllocation,
    run_latency_experiment,
    run_qos_experiment,
)
from repro.experiments.sampling import (
    QosSample,
    QosSampler,
    StageSnapshot,
    StateSample,
    StateSampler,
)

__all__ = [
    "TABLE2_CONTROLLER_CONFIG",
    "TABLE2_INITIAL_FREQ_GHZ",
    "TABLE2_POWER_BUDGET_WATTS",
    "TABLE3_SIRIUS",
    "TABLE3_WEBSEARCH",
    "Table3Setup",
    "CellOutcome",
    "CellSpec",
    "EngineReport",
    "ResultCache",
    "fan_out",
    "run_cells",
    "spec_digest",
    "format_heading",
    "format_table",
    "LATENCY_POLICIES",
    "QOS_POLICIES",
    "QosRunResult",
    "RunResult",
    "StageAllocation",
    "run_latency_experiment",
    "run_qos_experiment",
    "QosSample",
    "QosSampler",
    "StageSnapshot",
    "StateSample",
    "StateSampler",
]
