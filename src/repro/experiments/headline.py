"""The paper's headline numbers, computed from the figure experiments.

Section 8.2/8.3: "PowerChief improves the average latency by 20.3x and
32.4x (99% tail latency by 13.3x and 19.4x) for Sirius and Natural
Language Processing applications respectively compared to stage-agnostic
power allocation."  Section 8.4: "PowerChief saves 25% and 43% power over
the baseline" for Sirius and Web Search "whereas Pegasus saves 2% and
10%".

:func:`compute_headline` derives the same aggregates from this
reproduction's figure results so EXPERIMENTS.md (and the abstract-style
summary printed by ``python -m repro figures all``) always reflect the
measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.figures.fig10 import ImprovementFigureResult
from repro.experiments.figures.fig13 import QosFigureResult

__all__ = ["Headline", "compute_headline", "format_headline"]


@dataclass(frozen=True)
class Headline:
    """The reproduction's analog of the abstract's four claims."""

    sirius_avg_improvement: float
    sirius_p99_improvement: float
    nlp_avg_improvement: float
    nlp_p99_improvement: float
    sirius_power_saving: Optional[float] = None
    websearch_power_saving: Optional[float] = None
    sirius_pegasus_saving: Optional[float] = None
    websearch_pegasus_saving: Optional[float] = None


def compute_headline(
    fig10: ImprovementFigureResult,
    fig12: ImprovementFigureResult,
    fig13: Optional[QosFigureResult] = None,
    fig14: Optional[QosFigureResult] = None,
) -> Headline:
    """Aggregate the figure results into the abstract's headline numbers."""
    sirius_avg, sirius_p99 = fig10.average_improvement("powerchief")
    nlp_avg, nlp_p99 = fig12.average_improvement("powerchief")
    headline = {
        "sirius_avg_improvement": sirius_avg,
        "sirius_p99_improvement": sirius_p99,
        "nlp_avg_improvement": nlp_avg,
        "nlp_p99_improvement": nlp_p99,
    }
    if fig13 is not None:
        headline["sirius_power_saving"] = fig13.saving_over_baseline("powerchief")
        headline["sirius_pegasus_saving"] = fig13.saving_over_baseline("pegasus")
    if fig14 is not None:
        headline["websearch_power_saving"] = fig14.saving_over_baseline(
            "powerchief"
        )
        headline["websearch_pegasus_saving"] = fig14.saving_over_baseline(
            "pegasus"
        )
    return Headline(**headline)


def format_headline(headline: Headline) -> str:
    """An abstract-style sentence pair with the measured values."""
    lines = [
        "Measured headline (this reproduction):",
        (
            f"  PowerChief improves the average latency by "
            f"{headline.sirius_avg_improvement:.1f}x and "
            f"{headline.nlp_avg_improvement:.1f}x (99% tail latency by "
            f"{headline.sirius_p99_improvement:.1f}x and "
            f"{headline.nlp_p99_improvement:.1f}x) for Sirius and NLP "
            f"respectively, compared to stage-agnostic power allocation."
        ),
    ]
    if (
        headline.sirius_power_saving is not None
        and headline.websearch_power_saving is not None
    ):
        lines.append(
            f"  For the given QoS target, PowerChief reduces the power "
            f"consumption of Sirius and Web Search by "
            f"{headline.sirius_power_saving * 100:.0f}% and "
            f"{headline.websearch_power_saving * 100:.0f}% respectively "
            f"(Pegasus: {headline.sirius_pegasus_saving * 100:.0f}% and "
            f"{headline.websearch_pegasus_saving * 100:.0f}%)."
        )
    lines.append(
        "  (Paper, on its hardware testbed: 20.3x / 32.4x avg, 13.3x / "
        "19.4x p99; 25% / 43% power vs Pegasus's 2% / 10%.)"
    )
    return "\n".join(lines)
