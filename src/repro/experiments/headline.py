"""The paper's headline numbers, computed from the figure experiments.

Section 8.2/8.3: "PowerChief improves the average latency by 20.3x and
32.4x (99% tail latency by 13.3x and 19.4x) for Sirius and Natural
Language Processing applications respectively compared to stage-agnostic
power allocation."  Section 8.4: "PowerChief saves 25% and 43% power over
the baseline" for Sirius and Web Search "whereas Pegasus saves 2% and
10%".

:func:`compute_headline` derives the same aggregates from this
reproduction's figure results so EXPERIMENTS.md (and the abstract-style
summary printed by ``python -m repro figures all``) always reflect the
measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.experiments.figures.fig10 import ImprovementFigureResult
from repro.experiments.figures.fig13 import QosFigureResult
from repro.experiments.parallel import CellSpec, ResultCache, run_cells

__all__ = ["Headline", "compute_headline", "run_headline", "format_headline"]


@dataclass(frozen=True)
class Headline:
    """The reproduction's analog of the abstract's four claims."""

    sirius_avg_improvement: float
    sirius_p99_improvement: float
    nlp_avg_improvement: float
    nlp_p99_improvement: float
    sirius_power_saving: Optional[float] = None
    websearch_power_saving: Optional[float] = None
    sirius_pegasus_saving: Optional[float] = None
    websearch_pegasus_saving: Optional[float] = None


def compute_headline(
    fig10: ImprovementFigureResult,
    fig12: ImprovementFigureResult,
    fig13: Optional[QosFigureResult] = None,
    fig14: Optional[QosFigureResult] = None,
) -> Headline:
    """Aggregate the figure results into the abstract's headline numbers."""
    sirius_avg, sirius_p99 = fig10.average_improvement("powerchief")
    nlp_avg, nlp_p99 = fig12.average_improvement("powerchief")
    headline = {
        "sirius_avg_improvement": sirius_avg,
        "sirius_p99_improvement": sirius_p99,
        "nlp_avg_improvement": nlp_avg,
        "nlp_p99_improvement": nlp_p99,
    }
    if fig13 is not None:
        headline["sirius_power_saving"] = fig13.saving_over_baseline("powerchief")
        headline["sirius_pegasus_saving"] = fig13.saving_over_baseline("pegasus")
    if fig14 is not None:
        headline["websearch_power_saving"] = fig14.saving_over_baseline(
            "powerchief"
        )
        headline["websearch_pegasus_saving"] = fig14.saving_over_baseline(
            "pegasus"
        )
    return Headline(**headline)


def run_headline(
    duration_s: float = 600.0,
    qos_duration_s: float = 800.0,
    seeds: Optional[Sequence[int]] = None,
    qos_seed: int = 3,
    max_workers: int = 1,
    cache_dir: Union[ResultCache, str, Path, None] = None,
) -> Headline:
    """Measure the headline numbers through the parallel cell engine.

    Fans the underlying experiment cells — (app, policy, load, seed) for
    the Figure-10/12 improvement grids plus the Figure-13/14 QoS
    timelines — across ``max_workers`` processes, memoizing each cell in
    ``cache_dir``.  The aggregation mirrors the figure modules exactly:
    latencies are averaged across seeds before ratios are taken, and
    per-policy improvements are averaged across load levels.
    """
    from repro.experiments.figures.common import DEFAULT_SEEDS
    from repro.experiments.figures.fig13 import SIRIUS_QOS_RATE_QPS
    from repro.experiments.figures.fig14 import WEBSEARCH_QOS_RATE_QPS
    from repro.workloads.nlp import nlp_load_levels
    from repro.workloads.sirius import sirius_load_levels

    seeds = tuple(seeds) if seeds is not None else DEFAULT_SEEDS
    apps = {"sirius": sirius_load_levels(), "nlp": nlp_load_levels()}
    load_names = ("low", "medium", "high")
    qos_setups = (
        ("sirius", SIRIUS_QOS_RATE_QPS),
        ("websearch", WEBSEARCH_QOS_RATE_QPS),
    )
    qos_policies = ("baseline", "pegasus", "powerchief")

    specs: list[CellSpec] = []
    for app, levels in apps.items():
        for load in load_names:
            rate = getattr(levels, f"{load}_qps")
            for policy in ("static", "powerchief"):
                for seed in seeds:
                    specs.append(
                        CellSpec.latency(
                            app, policy, ("constant", rate), duration_s, seed
                        )
                    )
    for app, rate in qos_setups:
        for policy in qos_policies:
            specs.append(
                CellSpec.qos(app, policy, rate, qos_duration_s, qos_seed)
            )

    report = run_cells(specs, max_workers=max_workers, cache=cache_dir)
    results = dict(zip(specs, report.outcomes))

    def mean_latencies(app: str, policy: str, rate: float) -> tuple[float, float]:
        runs = [
            results[
                CellSpec.latency(
                    app, policy, ("constant", rate), duration_s, seed
                )
            ].result()
            for seed in seeds
        ]
        mean = sum(run.latency.mean for run in runs) / len(runs)
        p99 = sum(run.latency.p99 for run in runs) / len(runs)
        return mean, p99

    improvements: dict[str, tuple[float, float]] = {}
    for app, levels in apps.items():
        avg_ratios, p99_ratios = [], []
        for load in load_names:
            rate = getattr(levels, f"{load}_qps")
            base_mean, base_p99 = mean_latencies(app, "static", rate)
            chief_mean, chief_p99 = mean_latencies(app, "powerchief", rate)
            avg_ratios.append(base_mean / chief_mean)
            p99_ratios.append(base_p99 / chief_p99)
        improvements[app] = (
            sum(avg_ratios) / len(avg_ratios),
            sum(p99_ratios) / len(p99_ratios),
        )

    savings: dict[tuple[str, str], float] = {}
    for app, rate in qos_setups:
        fractions = {
            policy: results[
                CellSpec.qos(app, policy, rate, qos_duration_s, qos_seed)
            ]
            .result()
            .average_power_fraction
            for policy in qos_policies
        }
        baseline = fractions["baseline"]
        for policy in ("powerchief", "pegasus"):
            savings[(app, policy)] = (baseline - fractions[policy]) / baseline

    return Headline(
        sirius_avg_improvement=improvements["sirius"][0],
        sirius_p99_improvement=improvements["sirius"][1],
        nlp_avg_improvement=improvements["nlp"][0],
        nlp_p99_improvement=improvements["nlp"][1],
        sirius_power_saving=savings[("sirius", "powerchief")],
        websearch_power_saving=savings[("websearch", "powerchief")],
        sirius_pegasus_saving=savings[("sirius", "pegasus")],
        websearch_pegasus_saving=savings[("websearch", "pegasus")],
    )


def format_headline(headline: Headline) -> str:
    """An abstract-style sentence pair with the measured values."""
    lines = [
        "Measured headline (this reproduction):",
        (
            f"  PowerChief improves the average latency by "
            f"{headline.sirius_avg_improvement:.1f}x and "
            f"{headline.nlp_avg_improvement:.1f}x (99% tail latency by "
            f"{headline.sirius_p99_improvement:.1f}x and "
            f"{headline.nlp_p99_improvement:.1f}x) for Sirius and NLP "
            f"respectively, compared to stage-agnostic power allocation."
        ),
    ]
    if (
        headline.sirius_power_saving is not None
        and headline.websearch_power_saving is not None
    ):
        lines.append(
            f"  For the given QoS target, PowerChief reduces the power "
            f"consumption of Sirius and Web Search by "
            f"{headline.sirius_power_saving * 100:.0f}% and "
            f"{headline.websearch_power_saving * 100:.0f}% respectively "
            f"(Pegasus: {headline.sirius_pegasus_saving * 100:.0f}% and "
            f"{headline.websearch_pegasus_saving * 100:.0f}%)."
        )
    lines.append(
        "  (Paper, on its hardware testbed: 20.3x / 32.4x avg, 13.3x / "
        "19.4x p99; 25% / 43% power vs Pegasus's 2% / 10%.)"
    )
    return "\n".join(lines)
