"""Experiment runners.

Two entry points drive every figure of the evaluation:

* :func:`run_latency_experiment` — the Sections 8.2/8.3 scenario: reduce
  response latency while guarding the Table-2 power budget, under a
  chosen policy (static baseline, frequency boosting, instance boosting
  or PowerChief).
* :func:`run_qos_experiment` — the Section 8.4 scenario: reduce power
  while meeting a latency QoS on a Table-3 over-provisioned deployment
  (no-control baseline, Pegasus, or PowerChief-conserve).

Both are thin wrappers now: each keyword signature folds into a
:class:`~repro.scenario.spec.ScenarioSpec` and the stack is assembled and
driven by the one :class:`~repro.scenario.builder.StackBuilder` lifecycle
— no component is wired here.  Runs with the same seed replay
byte-identical arrivals and demands across policies, so improvement
ratios compare the policies and nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.faults.chaos import ChaosHarness

from repro.cluster.contention import ContentionModel
from repro.obs import Observability
from repro.core.controller import ControllerConfig
from repro.guard.config import GuardConfig
from repro.scenario.config import (
    TABLE2_CONTROLLER_CONFIG,
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
    Table3Setup,
)
from repro.scenario.builder import StackBuilder, _profiles_for  # noqa: F401
from repro.scenario.results import (
    QosRunResult,
    RunResult,
    ShardedRunResult,  # noqa: F401  (re-export for result consumers)
)
from repro.scenario.spec import (
    LATENCY_POLICIES,
    QOS_POLICIES,
    ScenarioSpec,
    StageAllocation,
)
from repro.workloads.loadgen import LoadTrace

__all__ = [
    "LATENCY_POLICIES",
    "QOS_POLICIES",
    "StageAllocation",
    "RunResult",
    "QosRunResult",
    "run_latency_experiment",
    "run_qos_experiment",
]


# ----------------------------------------------------------------------
# Latency-mitigation runs (Sections 8.2 / 8.3)
# ----------------------------------------------------------------------
def run_latency_experiment(
    app: str,
    policy: str,
    trace: LoadTrace,
    duration_s: float,
    seed: int = 1,
    budget_watts: float = TABLE2_POWER_BUDGET_WATTS,
    initial_freq_ghz: float = TABLE2_INITIAL_FREQ_GHZ,
    controller_config: ControllerConfig = TABLE2_CONTROLLER_CONFIG,
    allocation: Optional[Mapping[str, StageAllocation]] = None,
    n_cores: int = 16,
    sample_interval_s: float = 5.0,
    stats_window_s: float = 60.0,
    contention: Optional[ContentionModel] = None,
    observability: Optional[Observability] = None,
    chaos: Optional["ChaosHarness"] = None,
    drain_s: float = 0.0,
    guard: Optional[GuardConfig] = None,
) -> RunResult:
    """Run one (application, policy, load) cell of Figures 2/4/10/11/12.

    ``allocation`` overrides the Table-2 one-instance-per-stage deployment
    (Figure 2's static single-stage boosts use this).  ``observability``
    (kept by the caller) collects query spans, registry metrics and the
    controller's decision audit log for the run.  ``chaos`` (a
    :class:`~repro.faults.chaos.ChaosHarness`) arms fault injection and
    the resilience layer; ``drain_s`` extends the run past the last
    arrival so retried queries can settle — both default off and leave
    the fault-free path bit-identical.  ``guard`` wraps the policy in a
    :class:`~repro.guard.SupervisedController` (invariant monitors plus
    the graceful-degradation ladder); ``None`` builds the bare policy.
    """
    spec = ScenarioSpec.latency(
        app,
        policy,
        trace,
        duration_s,
        seed=seed,
        budget_watts=budget_watts,
        initial_freq_ghz=initial_freq_ghz,
        controller=controller_config,
        allocation=allocation,
        contention=contention,
        guard=guard,
        n_cores=n_cores,
        sample_interval_s=sample_interval_s,
        stats_window_s=stats_window_s,
        drain_s=drain_s,
    )
    result = StackBuilder(
        spec,
        trace=trace,
        contention=contention,
        observability=observability,
        chaos=chaos,
    ).execute()
    assert isinstance(result, RunResult)
    return result


# ----------------------------------------------------------------------
# QoS-mode runs (Section 8.4)
# ----------------------------------------------------------------------
def run_qos_experiment(
    setup: Table3Setup,
    policy: str,
    rate_qps: float,
    duration_s: float,
    seed: int = 1,
    hold_fraction: float = 0.85,
    conserve_fraction: float = 0.75,
    guard_fraction: float = 0.92,
    n_cores: int = 16,
    sample_interval_s: float = 5.0,
    e2e_window_s: Optional[float] = None,
    observability: Optional[Observability] = None,
) -> QosRunResult:
    """Run one (deployment, policy) timeline of Figures 13/14.

    The reference power for the fraction-of-peak axis is the
    over-provisioned deployment's draw at the maximum frequency — the
    baseline's constant consumption, which Figures 13/14 normalise to.
    """
    options: dict[str, float] = {
        "hold_fraction": hold_fraction,
        "conserve_fraction": conserve_fraction,
        "guard_fraction": guard_fraction,
    }
    if e2e_window_s is not None:
        options["e2e_window_s"] = e2e_window_s
    spec = ScenarioSpec.qos(
        setup.app,
        policy,
        rate_qps,
        duration_s,
        seed=seed,
        n_cores=n_cores,
        sample_interval_s=sample_interval_s,
        **options,
    )
    result = StackBuilder(
        spec,
        observability=observability,
        table3_setup=setup,
    ).execute()
    assert isinstance(result, QosRunResult)
    return result
