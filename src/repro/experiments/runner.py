"""Experiment runners.

Two entry points drive every figure of the evaluation:

* :func:`run_latency_experiment` — the Sections 8.2/8.3 scenario: reduce
  response latency while guarding the Table-2 power budget, under a
  chosen policy (static baseline, frequency boosting, instance boosting
  or PowerChief).
* :func:`run_qos_experiment` — the Section 8.4 scenario: reduce power
  while meeting a latency QoS on a Table-3 over-provisioned deployment
  (no-control baseline, Pegasus, or PowerChief-conserve).

Runs with the same seed replay byte-identical arrivals and demands across
policies, so improvement ratios compare the policies and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.faults.chaos import ChaosHarness
    from repro.service.rpc import RpcFabric

from repro.errors import ConfigurationError, ExperimentError
from repro.cluster.budget import PowerBudget
from repro.cluster.contention import ContentionModel
from repro.cluster.dvfs import DvfsActuator
from repro.cluster.frequency import HASWELL_LADDER
from repro.cluster.machine import Machine
from repro.cluster.telemetry import PowerTelemetry
from repro.obs import Observability, bind_simulator, unbind_simulator
from repro.core.actions import ActionRecord
from repro.core.baselines import (
    FreqBoostController,
    InstBoostController,
    StaticController,
)
from repro.core.conserve import PowerChiefConserveController
from repro.core.controller import BaseController, ControllerConfig, PowerChiefController
from repro.core.pegasus import PegasusController
from repro.experiments.config import (
    TABLE2_CONTROLLER_CONFIG,
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
    Table3Setup,
)
from repro.experiments.sampling import QosSampler, StateSampler, StateSample, QosSample
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.profile import ServiceProfile
from repro.service.stage import StageKind
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.percentile import LatencySummary, summarize
from repro.workloads.loadgen import (
    ConstantLoad,
    LoadTrace,
    PoissonLoadGenerator,
    QueryFactory,
)
from repro.workloads.nlp import nlp_profiles
from repro.workloads.sirius import sirius_profiles
from repro.workloads.websearch import websearch_profiles

__all__ = [
    "LATENCY_POLICIES",
    "QOS_POLICIES",
    "StageAllocation",
    "RunResult",
    "QosRunResult",
    "run_latency_experiment",
    "run_qos_experiment",
]

#: Latency-mitigation policies by name (Sections 8.2/8.3).
LATENCY_POLICIES = ("static", "freq-boost", "inst-boost", "powerchief")

#: QoS-mode policies by name (Section 8.4).
QOS_POLICIES = ("baseline", "pegasus", "powerchief")

_PROFILE_BUILDERS = {
    "sirius": sirius_profiles,
    "nlp": nlp_profiles,
    "websearch": websearch_profiles,
}

_SCATTER_GATHER_STAGES = {"websearch": ("LEAF",)}


@dataclass(frozen=True)
class StageAllocation:
    """A fixed (instance count, ladder level) deployment for one stage."""

    count: int
    level: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")


@dataclass
class RunResult:
    """Everything a latency-mitigation run produced."""

    app: str
    policy: str
    duration_s: float
    queries_submitted: int
    queries_completed: int
    latency: LatencySummary
    average_power_watts: float
    actions: tuple[ActionRecord, ...]
    state_samples: tuple[StateSample, ...]

    @property
    def completion_fraction(self) -> float:
        if self.queries_submitted == 0:
            return 0.0
        return self.queries_completed / self.queries_submitted


@dataclass
class QosRunResult:
    """Everything a QoS-mode run produced."""

    app: str
    policy: str
    duration_s: float
    qos_target_s: float
    reference_power_watts: float
    queries_submitted: int
    queries_completed: int
    latency: LatencySummary
    average_power_fraction: float
    violation_fraction: float
    actions: tuple[ActionRecord, ...]
    qos_samples: tuple[QosSample, ...]

    @property
    def power_saving_fraction(self) -> float:
        """1 - average power fraction: the Figure-13/14 headline number."""
        return 1.0 - self.average_power_fraction


def _profiles_for(app: str) -> list[ServiceProfile]:
    try:
        return _PROFILE_BUILDERS[app]()
    except KeyError:
        known = ", ".join(sorted(_PROFILE_BUILDERS))
        raise ConfigurationError(f"unknown app {app!r} (known: {known})") from None


def _build_app(
    app: str,
    sim: Simulator,
    machine: Machine,
    allocation: Mapping[str, StageAllocation],
    observability: Optional[Observability] = None,
    fabric: Optional["RpcFabric"] = None,
) -> Application:
    profiles = _profiles_for(app)
    application = Application(
        app, sim, machine, fabric=fabric, observability=observability
    )
    scatter = _SCATTER_GATHER_STAGES.get(app, ())
    for profile in profiles:
        kind = (
            StageKind.SCATTER_GATHER
            if profile.name in scatter
            else StageKind.PIPELINE
        )
        stage = application.add_stage(profile, kind=kind)
        stage_alloc = allocation.get(profile.name)
        if stage_alloc is None:
            raise ConfigurationError(
                f"no allocation given for stage {profile.name!r}"
            )
        for _ in range(stage_alloc.count):
            stage.launch_instance(stage_alloc.level)
    return application


def _uniform_allocation(
    app: str,
    level: int,
    instances_per_stage: Mapping[str, int] | int,
) -> dict[str, StageAllocation]:
    allocation: dict[str, StageAllocation] = {}
    for profile in _profiles_for(app):
        if isinstance(instances_per_stage, int):
            count = instances_per_stage
        else:
            count = instances_per_stage.get(profile.name, 1)
        allocation[profile.name] = StageAllocation(count=count, level=level)
    return allocation


def _attach_observability(
    sim: Simulator,
    machine: Machine,
    controller: Optional[BaseController],
    observability: Optional[Observability],
    telemetry_interval_s: float,
) -> "tuple[Optional[PowerTelemetry], Callable[[], None]]":
    """Arm every observability hook a run needs; returns a finalizer.

    With ``observability=None`` this is a no-op returning a no-op — the
    standard benchmark path stays exactly as fast as before.
    """
    if observability is None:
        return None, lambda: None
    bind_simulator(lambda: sim.now)
    telemetry: Optional[PowerTelemetry] = None
    hook = None
    if observability.metrics is not None:
        events = observability.metrics.counter(
            "repro_sim_events_total", "Simulation events fired"
        )

        def hook(event) -> None:
            events.inc()

        sim.add_event_hook(hook)
        telemetry = PowerTelemetry(
            sim,
            machine,
            sample_interval_s=telemetry_interval_s,
            registry=observability.metrics,
        )
        telemetry.start()
    if controller is not None and observability.audit is not None:
        controller.attach_audit(observability.audit)

    def finalize() -> None:
        if telemetry is not None:
            telemetry.stop()
        if hook is not None:
            sim.remove_event_hook(hook)
        unbind_simulator()

    return telemetry, finalize


def _summarize_completed(command_center: CommandCenter, context: str) -> LatencySummary:
    latencies = command_center.all_latencies
    if not latencies:
        raise ExperimentError(
            f"{context}: no queries completed; extend the duration or raise "
            f"the arrival rate"
        )
    return summarize(latencies)


# ----------------------------------------------------------------------
# Latency-mitigation runs (Sections 8.2 / 8.3)
# ----------------------------------------------------------------------
def run_latency_experiment(
    app: str,
    policy: str,
    trace: LoadTrace,
    duration_s: float,
    seed: int = 1,
    budget_watts: float = TABLE2_POWER_BUDGET_WATTS,
    initial_freq_ghz: float = TABLE2_INITIAL_FREQ_GHZ,
    controller_config: ControllerConfig = TABLE2_CONTROLLER_CONFIG,
    allocation: Optional[Mapping[str, StageAllocation]] = None,
    n_cores: int = 16,
    sample_interval_s: float = 5.0,
    stats_window_s: float = 60.0,
    contention: Optional[ContentionModel] = None,
    observability: Optional[Observability] = None,
    chaos: Optional["ChaosHarness"] = None,
    drain_s: float = 0.0,
) -> RunResult:
    """Run one (application, policy, load) cell of Figures 2/4/10/11/12.

    ``allocation`` overrides the Table-2 one-instance-per-stage deployment
    (Figure 2's static single-stage boosts use this).  ``observability``
    (kept by the caller) collects query spans, registry metrics and the
    controller's decision audit log for the run.  ``chaos`` (a
    :class:`~repro.faults.chaos.ChaosHarness`) arms fault injection and
    the resilience layer; ``drain_s`` extends the run past the last
    arrival so retried queries can settle — both default off and leave
    the fault-free path bit-identical.
    """
    if policy not in LATENCY_POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r} (known: {', '.join(LATENCY_POLICIES)})"
        )
    if duration_s <= 0.0:
        raise ConfigurationError(f"duration must be > 0, got {duration_s}")
    if drain_s < 0.0:
        raise ConfigurationError(f"drain must be >= 0, got {drain_s}")
    sim = Simulator()
    machine = Machine(sim, n_cores=n_cores, contention=contention)
    initial_level = HASWELL_LADDER.level_of(initial_freq_ghz)
    if allocation is None:
        allocation = _uniform_allocation(app, initial_level, 1)
    # Streams are name-derived (creation order never shifts seeds), so
    # building them early for the chaos fabric is byte-neutral.
    streams = RandomStreams(seed)
    fabric = None if chaos is None else chaos.build_fabric(sim, streams)
    application = _build_app(
        app, sim, machine, allocation, observability, fabric=fabric
    )
    budget = PowerBudget(machine, budget_watts)
    budget.assert_within()
    command_center = CommandCenter(sim, application, window_s=stats_window_s)
    dvfs = DvfsActuator(sim)

    controller_types: dict[str, type[BaseController]] = {
        "static": StaticController,
        "freq-boost": FreqBoostController,
        "inst-boost": InstBoostController,
        "powerchief": PowerChiefController,
    }
    controller = controller_types[policy](
        sim, application, command_center, budget, dvfs, controller_config
    )

    factory = QueryFactory(_profiles_for(app), streams)
    generator = PoissonLoadGenerator(
        sim, application, factory, trace, streams, duration_s
    )
    sampler = StateSampler(sim, application, sample_interval_s)
    telemetry, finalize_obs = _attach_observability(
        sim, machine, controller, observability, sample_interval_s
    )
    if chaos is not None:
        chaos.install(
            sim=sim,
            machine=machine,
            application=application,
            controller=controller,
            budget=budget,
            telemetry=telemetry,
            streams=streams,
            observability=observability,
        )

    try:
        controller.start()
        sampler.start()
        if chaos is not None:
            chaos.start()
        generator.start()
        sim.run(until=duration_s)
        controller.stop()
        sampler.stop()
        if drain_s > 0.0:
            # Let in-flight retries/timeouts settle; the generator stopped
            # at ``duration_s``, the health monitor keeps respawning.
            sim.run(until=duration_s + drain_s)
        if chaos is not None:
            chaos.stop()
    finally:
        finalize_obs()
    budget.assert_within()

    energy = machine.total_energy()
    return RunResult(
        app=app,
        policy=policy,
        duration_s=duration_s,
        queries_submitted=generator.queries_submitted,
        queries_completed=application.completed,
        latency=_summarize_completed(
            command_center, f"{app}/{policy} latency run"
        ),
        average_power_watts=energy / (duration_s + drain_s),
        actions=tuple(controller.actions),
        state_samples=tuple(sampler.samples),
    )


# ----------------------------------------------------------------------
# QoS-mode runs (Section 8.4)
# ----------------------------------------------------------------------
def run_qos_experiment(
    setup: Table3Setup,
    policy: str,
    rate_qps: float,
    duration_s: float,
    seed: int = 1,
    hold_fraction: float = 0.85,
    conserve_fraction: float = 0.75,
    guard_fraction: float = 0.92,
    n_cores: int = 16,
    sample_interval_s: float = 5.0,
    e2e_window_s: Optional[float] = None,
    observability: Optional[Observability] = None,
) -> QosRunResult:
    """Run one (deployment, policy) timeline of Figures 13/14.

    The reference power for the fraction-of-peak axis is the
    over-provisioned deployment's draw at the maximum frequency — the
    baseline's constant consumption, which Figures 13/14 normalise to.
    """
    if policy not in QOS_POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r} (known: {', '.join(QOS_POLICIES)})"
        )
    if rate_qps <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate_qps}")
    if duration_s <= 0.0:
        raise ConfigurationError(f"duration must be > 0, got {duration_s}")
    sim = Simulator()
    machine = Machine(sim, n_cores=n_cores)
    initial_level = HASWELL_LADDER.level_of(setup.initial_freq_ghz)
    allocation = _uniform_allocation(
        setup.app, initial_level, dict(setup.instances_per_stage)
    )
    application = _build_app(setup.app, sim, machine, allocation, observability)
    reference_power = application.total_power()
    # QoS mode has no budget ceiling: the machine's peak is the cap.
    budget = PowerBudget(machine, machine.peak_power())
    window = (
        e2e_window_s
        if e2e_window_s is not None
        else max(3.0 * setup.adjust_interval_s, 10.0)
    )
    command_center = CommandCenter(
        sim, application, window_s=window, e2e_window_s=window
    )
    dvfs = DvfsActuator(sim)

    controller: Optional[BaseController] = None
    config = setup.controller_config()
    if policy == "pegasus":
        controller = PegasusController(
            sim,
            application,
            command_center,
            budget,
            dvfs,
            qos_target_s=setup.qos_target_s,
            config=config,
            hold_fraction=hold_fraction,
        )
    elif policy == "powerchief":
        controller = PowerChiefConserveController(
            sim,
            application,
            command_center,
            budget,
            dvfs,
            qos_target_s=setup.qos_target_s,
            config=config,
            conserve_fraction=conserve_fraction,
            guard_fraction=guard_fraction,
        )

    streams = RandomStreams(seed)
    factory = QueryFactory(_profiles_for(setup.app), streams)
    generator = PoissonLoadGenerator(
        sim, application, factory, ConstantLoad(rate_qps), streams, duration_s
    )
    sampler = QosSampler(
        sim,
        application,
        command_center,
        qos_target_s=setup.qos_target_s,
        reference_power_watts=reference_power,
        sample_interval_s=sample_interval_s,
    )

    _, finalize_obs = _attach_observability(
        sim, machine, controller, observability, sample_interval_s
    )
    try:
        if controller is not None:
            controller.start()
        sampler.start()
        generator.start()
        sim.run(until=duration_s)
        if controller is not None:
            controller.stop()
        sampler.stop()
    finally:
        finalize_obs()

    return QosRunResult(
        app=setup.app,
        policy=policy,
        duration_s=duration_s,
        qos_target_s=setup.qos_target_s,
        reference_power_watts=reference_power,
        queries_submitted=generator.queries_submitted,
        queries_completed=application.completed,
        latency=_summarize_completed(
            command_center, f"{setup.app}/{policy} QoS run"
        ),
        average_power_fraction=sampler.average_power_fraction(),
        violation_fraction=sampler.violation_fraction(),
        actions=tuple(controller.actions) if controller is not None else (),
        qos_samples=tuple(sampler.samples),
    )
