"""Plain-text rendering of experiment results.

The benchmark harness prints each figure/table of the paper as an ASCII
table; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_heading"]


def format_heading(title: str) -> str:
    """A boxed section heading."""
    bar = "=" * len(title)
    return f"{bar}\n{title}\n{bar}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller so each figure controls its own precision.
    """
    if not headers:
        raise ValueError("a table needs at least one column")
    table = [list(map(str, headers))]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        table.append(list(map(str, row)))
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = []
    for index, line in enumerate(table):
        cells = [cell.ljust(width) for cell, width in zip(line, widths)]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
