"""Parallel experiment execution with content-addressed result caching.

Every cell of the evaluation — one ``(app, policy, trace, seed, budget,
config)`` simulation — is an independent, deterministically seeded run, so
a campaign is an embarrassingly parallel fan-out.  This module is the
substrate the campaign driver, the headline aggregator and the sweep
benchmarks execute on:

* :class:`CellSpec` describes one cell as a picklable, hashable value
  built from primitives only, so it can cross a process boundary and be
  content-addressed.
* :func:`spec_digest` derives a stable SHA-256 digest from a spec's
  canonical JSON form; :class:`ResultCache` memoizes completed cells on
  disk under that digest, so re-running a campaign only recomputes
  changed cells.
* :func:`run_cells` fans cells out across worker processes via
  :class:`concurrent.futures.ProcessPoolExecutor` with a per-cell
  timeout, one in-process retry for cells whose worker crashed or timed
  out, and graceful degradation to serial execution when ``max_workers``
  is 1, the pool cannot be created, or the pool dies mid-campaign.

Results flow through the JSON exporters in both the serial and parallel
paths, so a cell's payload is byte-identical however it was executed —
``--workers 4`` and ``--workers 1`` produce the same campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.errors import ConfigurationError, ExperimentError
from repro.obs.metrics import MetricsRegistry
from repro.experiments.export import (
    qos_result_from_dict,
    qos_result_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.experiments.report import format_heading, format_table
from repro.scenario.config import TABLE3_SETUPS
from repro.scenario.results import QosRunResult, RunResult
from repro.scenario.spec import (
    ScenarioSpec,
    StageAllocation,
    build_trace,
    trace_to_spec,
)
from repro.workloads.loadgen import LoadTrace

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "CellOutcome",
    "EngineReport",
    "ResultCache",
    "trace_to_spec",
    "build_trace",
    "cell_to_scenario",
    "spec_digest",
    "execute_cell",
    "run_cells",
    "fan_out",
]

#: Bumped whenever the payload layout or cell semantics change; part of
#: every digest, so stale cache entries can never be mistaken for fresh.
#: Version 2: latency/qos cells digest through the scenario layer's
#: canonical :meth:`~repro.scenario.spec.ScenarioSpec.digest`.
CACHE_VERSION = 2

_CELL_KINDS = ("latency", "qos", "artefact")

_SCALAR_TYPES = (bool, int, float, str, type(None))


# ----------------------------------------------------------------------
# Cell specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One experiment cell, described entirely by primitives.

    A spec is hashable (usable as a dict key), picklable (crosses the
    worker-process boundary) and canonically serialisable (its digest is
    the cache key).  Use the :meth:`latency`, :meth:`qos` and
    :meth:`artefact` constructors rather than the raw fields.
    """

    kind: str
    app: str
    policy: str = ""
    duration_s: float = 0.0
    seed: int = 0
    #: Trace spec tuple (latency cells only).
    trace: tuple = ()
    #: Arrival rate (QoS cells only).
    rate_qps: float = 0.0
    #: Power budget override; ``None`` keeps the runner's Table-2 default.
    budget_watts: Optional[float] = None
    #: ``((stage, count, level), ...)`` or ``None`` for the default.
    allocation: Optional[tuple[tuple[str, int, int], ...]] = None
    #: Extra scalar keyword arguments forwarded to the runner.
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _CELL_KINDS:
            raise ConfigurationError(
                f"unknown cell kind {self.kind!r} "
                f"(known: {', '.join(_CELL_KINDS)})"
            )
        for key, value in self.options:
            if not isinstance(value, _SCALAR_TYPES):
                raise ConfigurationError(
                    f"cell option {key!r} must be a scalar, got "
                    f"{type(value).__name__}"
                )

    @property
    def label(self) -> str:
        """Short human-readable identity for progress/timing records."""
        if self.kind == "artefact":
            return f"artefact:{self.app}"
        return f"{self.kind}:{self.app}/{self.policy} seed={self.seed}"

    # ------------------------------------------------------------------
    @classmethod
    def latency(
        cls,
        app: str,
        policy: str,
        trace: Union[LoadTrace, tuple],
        duration_s: float,
        seed: int = 1,
        budget_watts: Optional[float] = None,
        allocation: Optional[dict[str, StageAllocation]] = None,
        **options: Any,
    ) -> "CellSpec":
        """A Table-2 latency-mitigation cell (one ``run_latency_experiment``)."""
        trace_spec = trace if isinstance(trace, tuple) else trace_to_spec(trace)
        allocation_spec = None
        if allocation is not None:
            allocation_spec = tuple(
                (name, alloc.count, alloc.level)
                for name, alloc in sorted(allocation.items())
            )
        return cls(
            kind="latency",
            app=app,
            policy=policy,
            duration_s=float(duration_s),
            seed=int(seed),
            trace=trace_spec,
            budget_watts=None if budget_watts is None else float(budget_watts),
            allocation=allocation_spec,
            options=tuple(sorted(options.items())),
        )

    @classmethod
    def qos(
        cls,
        app: str,
        policy: str,
        rate_qps: float,
        duration_s: float,
        seed: int = 1,
        **options: Any,
    ) -> "CellSpec":
        """A Table-3 QoS-mode cell; ``app`` names the Table-3 deployment."""
        if app not in TABLE3_SETUPS:
            known = ", ".join(sorted(TABLE3_SETUPS))
            raise ConfigurationError(
                f"unknown QoS deployment {app!r} (known: {known})"
            )
        return cls(
            kind="qos",
            app=app,
            policy=policy,
            duration_s=float(duration_s),
            seed=int(seed),
            rate_qps=float(rate_qps),
            options=tuple(sorted(options.items())),
        )

    @classmethod
    def artefact(cls, name: str) -> "CellSpec":
        """A campaign artefact cell: render one default-registry figure."""
        return cls(kind="artefact", app=name)


#: Latency cell options that map onto first-class scenario fields.
_LATENCY_FIELD_OPTIONS = (
    "n_cores",
    "sample_interval_s",
    "stats_window_s",
    "drain_s",
    "initial_freq_ghz",
)

#: QoS cell options that map onto first-class scenario fields; the rest
#: (conserve fractions, window override) ride in the scenario's options.
_QOS_FIELD_OPTIONS = ("n_cores", "sample_interval_s")


def cell_to_scenario(spec: CellSpec) -> ScenarioSpec:
    """The :class:`~repro.scenario.spec.ScenarioSpec` a cell describes.

    This is the one translation between the engine's historical cell
    vocabulary and the scenario layer: the scenario's canonical digest is
    the cache key, and the scenario builder is the execution path, so a
    cell and a hand-written spec describing the same run share both.
    Artefact cells have no scenario form (they render figures, not runs).
    """
    if spec.kind == "latency":
        fields: dict[str, Any] = {}
        for key, value in spec.options:
            if key not in _LATENCY_FIELD_OPTIONS:
                known = ", ".join(_LATENCY_FIELD_OPTIONS)
                raise ConfigurationError(
                    f"unknown latency cell option {key!r} (known: {known})"
                )
            fields[key] = value
        return ScenarioSpec(
            kind="latency",
            app=spec.app,
            policy=spec.policy,
            duration_s=spec.duration_s,
            seed=spec.seed,
            trace=spec.trace,
            budget_watts=spec.budget_watts,
            allocation=spec.allocation,
            **fields,
        )
    if spec.kind == "qos":
        fields = {}
        extras: list[tuple[str, Any]] = []
        for key, value in spec.options:
            if key in _QOS_FIELD_OPTIONS:
                fields[key] = value
            else:
                extras.append((key, value))
        return ScenarioSpec(
            kind="qos",
            app=spec.app,
            policy=spec.policy,
            duration_s=spec.duration_s,
            seed=spec.seed,
            rate_qps=spec.rate_qps,
            options=tuple(extras),
            **fields,
        )
    raise ConfigurationError(
        f"{spec.kind!r} cells have no scenario form"
    )


def spec_digest(spec: CellSpec) -> str:
    """Stable SHA-256 content address of a cell spec.

    Two specs share a digest exactly when they describe the same cell
    under the same :data:`CACHE_VERSION`; the digest is the cache key and
    the cache file name.  Latency and QoS cells digest through the
    scenario layer's canonical form, so a cell and the equivalent
    ``repro run --scenario`` spec hit the same cache entry; artefact
    cells (no scenario form) keep the engine's own scheme.
    """
    if spec.kind in ("latency", "qos"):
        return cell_to_scenario(spec).digest()
    canonical = json.dumps(
        {"version": CACHE_VERSION, "spec": dataclasses.asdict(spec)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Cell execution (runs inside worker processes — module level, picklable)
# ----------------------------------------------------------------------
def execute_cell(spec: CellSpec) -> dict[str, Any]:
    """Run one cell and return its JSON-serialisable payload."""
    from repro.scenario.builder import run_scenario

    if spec.kind == "latency":
        result = run_scenario(cell_to_scenario(spec))
        assert isinstance(result, RunResult)
        return {"kind": "latency", "result": run_result_to_dict(result)}
    if spec.kind == "qos":
        qos_result = run_scenario(cell_to_scenario(spec))
        assert isinstance(qos_result, QosRunResult)
        return {"kind": "qos", "result": qos_result_to_dict(qos_result)}
    # Artefact cells resolve the campaign registry lazily so the campaign
    # module can itself be built on this engine without an import cycle.
    from repro.experiments.campaign import default_registry

    registry = default_registry()
    if spec.app not in registry:
        raise ExperimentError(f"campaign has no artefact {spec.app!r}")
    return {"kind": "artefact", "render": registry[spec.app]()}


def payload_to_result(
    payload: dict[str, Any],
) -> Union[RunResult, QosRunResult, str]:
    """Rebuild the first-class result object a cell payload encodes."""
    kind = payload.get("kind")
    if kind == "latency":
        return run_result_from_dict(payload["result"])
    if kind == "qos":
        return qos_result_from_dict(payload["result"])
    if kind == "artefact":
        return payload["render"]
    raise ExperimentError(f"unknown cell payload kind {kind!r}")


def _timed_execute(spec: CellSpec) -> dict[str, Any]:
    """Worker entry point: execute one cell, recording wall clock and pid.

    The payload is normalised through a JSON round trip here, at the
    single choke point every execution path shares, so a cell's payload
    compares equal whether it was just computed, shipped back from a
    worker, or read from the on-disk cache.
    """
    start = time.perf_counter()
    payload = json.loads(json.dumps(execute_cell(spec)))
    return {
        "payload": payload,
        "elapsed_s": time.perf_counter() - start,
        "worker": os.getpid(),
    }


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of completed cells: one JSON file per digest.

    A cache entry records the spec it was computed from, its payload and
    the compute time, versioned by :data:`CACHE_VERSION`.  Corrupt,
    mismatched or stale-version entries read as misses and are
    overwritten on the next store, so a cache directory can never poison
    a campaign.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ConfigurationError(
                f"cache directory {self.directory} is not usable: {error}"
            ) from error
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict[str, Any]]:
        """The stored record for a digest, or ``None`` (counted as a miss)."""
        path = self.path_for(digest)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            record.get("version") != CACHE_VERSION
            or record.get("digest") != digest
            or "payload" not in record
        ):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(
        self,
        spec: Union[CellSpec, "ScenarioSpec", dict[str, Any]],
        digest: str,
        record: dict[str, Any],
    ) -> None:
        """Store a computed cell; written atomically via a temp file.

        ``spec`` may be a :class:`CellSpec`, a scenario spec, or an
        already-serialised dict — whatever described the run the payload
        came from; it is stored verbatim for provenance only (the digest
        is the lookup key).
        """
        if isinstance(spec, ScenarioSpec):
            spec_payload: dict[str, Any] = spec.to_dict()
        elif dataclasses.is_dataclass(spec) and not isinstance(spec, type):
            spec_payload = dataclasses.asdict(spec)
        else:
            spec_payload = dict(spec)
        entry = {
            "version": CACHE_VERSION,
            "digest": digest,
            "spec": spec_payload,
            "elapsed_s": record.get("elapsed_s", 0.0),
            "payload": record["payload"],
        }
        path = self.path_for(digest)
        scratch = path.with_suffix(".tmp")
        scratch.write_text(json.dumps(entry, sort_keys=True) + "\n")
        scratch.replace(path)
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def _resolve_cache(
    cache: Union[ResultCache, str, Path, None],
) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellOutcome:
    """Progress/timing record for one completed cell.

    ``source`` says where the result came from: ``cache`` (warm hit),
    ``pool`` (worker process), ``serial`` (in-process, either
    ``max_workers=1`` or degradation after the pool died) or ``retry``
    (recomputed in-process after a worker crash or timeout).
    """

    spec: CellSpec
    digest: str
    payload: dict[str, Any]
    elapsed_s: float
    source: str
    attempts: int
    worker: Optional[int] = None

    def result(self) -> Union[RunResult, QosRunResult, str]:
        return payload_to_result(self.payload)


@dataclass
class EngineReport:
    """Everything one :func:`run_cells` fan-out produced, in spec order."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    wall_clock_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.source == "cache")

    @property
    def computed(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def compute_seconds(self) -> float:
        """Total per-cell compute time (> wall clock when workers overlap)."""
        return sum(
            outcome.elapsed_s
            for outcome in self.outcomes
            if outcome.source != "cache"
        )

    def results(self) -> list[Union[RunResult, QosRunResult, str]]:
        return [outcome.result() for outcome in self.outcomes]

    def format_timing(self) -> str:
        """A where-did-the-wall-clock-go table, slowest cells first."""
        rows = [
            (
                outcome.spec.label,
                f"{outcome.elapsed_s:.2f}s",
                outcome.source,
                "-" if outcome.worker is None else str(outcome.worker),
            )
            for outcome in sorted(
                self.outcomes, key=lambda o: o.elapsed_s, reverse=True
            )
        ]
        summary = (
            f"{len(self.outcomes)} cells: {self.cache_hits} cached, "
            f"{self.computed} computed in {self.compute_seconds:.2f}s "
            f"compute / {self.wall_clock_s:.2f}s wall clock"
        )
        return (
            format_heading("Campaign execution timing")
            + "\n"
            + format_table(["cell", "elapsed", "source", "worker"], rows)
            + "\n"
            + summary
        )


#: Elapsed-time buckets for per-cell compute (sub-second figure renders
#: up to multi-minute QoS timelines).
_CELL_ELAPSED_BUCKETS_S = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 180.0)


def run_cells(
    specs: Sequence[CellSpec],
    max_workers: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> EngineReport:
    """Execute every cell, fanning out across processes when asked to.

    Results come back in spec order regardless of completion order, and
    each payload is identical whether computed serially, in a worker, or
    served from the cache.  Failure handling:

    * a worker crash (:class:`BrokenProcessPool`) or per-cell timeout
      triggers exactly one in-process retry of that cell;
    * a dead pool degrades the rest of the campaign to serial execution
      rather than failing it;
    * in serial mode exceptions propagate immediately — the simulations
      are deterministic, so a serial failure would only repeat.

    ``progress`` is invoked once per completed cell with its
    :class:`CellOutcome` (cache hits first, then computed cells).
    ``registry`` routes the engine's bookkeeping — cells by source,
    cache hits/misses, retries, per-cell elapsed time — through the
    metrics registry, at the single choke point every path shares.
    """
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    store = _resolve_cache(cache)
    started = time.perf_counter()
    report = EngineReport()
    outcomes: dict[int, CellOutcome] = {}

    def finish(index: int, outcome: CellOutcome) -> None:
        outcomes[index] = outcome
        if registry is not None:
            registry.counter(
                "repro_cells_total", "Cells finished, by result source"
            ).inc(source=outcome.source)
            if outcome.source == "cache":
                registry.counter(
                    "repro_cell_cache_hits_total", "Cells served from the cache"
                ).inc()
            else:
                registry.counter(
                    "repro_cell_cache_misses_total", "Cells that had to compute"
                ).inc()
                registry.histogram(
                    "repro_cell_elapsed_seconds",
                    "Per-cell compute time",
                    buckets=_CELL_ELAPSED_BUCKETS_S,
                ).observe(outcome.elapsed_s)
            if outcome.attempts > 1:
                registry.counter(
                    "repro_cell_retries_total",
                    "Cells recomputed after a worker crash or timeout",
                ).inc()
        if progress is not None:
            progress(outcome)

    pending: list[tuple[int, CellSpec, str]] = []
    for index, spec in enumerate(specs):
        digest = spec_digest(spec)
        record = store.get(digest) if store is not None else None
        if record is not None:
            finish(
                index,
                CellOutcome(
                    spec=spec,
                    digest=digest,
                    payload=record["payload"],
                    elapsed_s=0.0,
                    source="cache",
                    attempts=0,
                ),
            )
        else:
            pending.append((index, spec, digest))

    def compute_serial(
        index: int, spec: CellSpec, digest: str, source: str, attempts: int
    ) -> None:
        record = _timed_execute(spec)
        if store is not None:
            store.put(spec, digest, record)
        finish(
            index,
            CellOutcome(
                spec=spec,
                digest=digest,
                payload=record["payload"],
                elapsed_s=record["elapsed_s"],
                source=source,
                attempts=attempts,
                worker=record["worker"],
            ),
        )

    executor: Optional[ProcessPoolExecutor] = None
    if pending and max_workers > 1:
        try:
            executor = ProcessPoolExecutor(max_workers=max_workers)
        except (OSError, ValueError):
            executor = None  # no pool available: degrade to serial

    if executor is None:
        for index, spec, digest in pending:
            compute_serial(index, spec, digest, "serial", 1)
    else:
        try:
            futures = [
                (index, spec, digest, executor.submit(_timed_execute, spec))
                for index, spec, digest in pending
            ]
            pool_broken = False
            for index, spec, digest, future in futures:
                record: Optional[dict[str, Any]] = None
                if not pool_broken:
                    try:
                        record = future.result(timeout=timeout_s)
                    except BrokenProcessPool:
                        pool_broken = True
                    except FutureTimeoutError:
                        future.cancel()
                    except Exception:
                        # Worker died mid-cell (or the cell itself raised
                        # inside the pool): fall through to the retry.
                        pass
                else:
                    future.cancel()
                if record is not None:
                    if store is not None:
                        store.put(spec, digest, record)
                    finish(
                        index,
                        CellOutcome(
                            spec=spec,
                            digest=digest,
                            payload=record["payload"],
                            elapsed_s=record["elapsed_s"],
                            source="pool",
                            attempts=1,
                            worker=record["worker"],
                        ),
                    )
                elif pool_broken:
                    compute_serial(index, spec, digest, "serial", 1)
                else:
                    compute_serial(index, spec, digest, "retry", 2)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    report.outcomes = [outcomes[index] for index in range(len(specs))]
    report.wall_clock_s = time.perf_counter() - started
    return report


# ----------------------------------------------------------------------
# Generic fan-out (for work that is not cell-shaped)
# ----------------------------------------------------------------------
def fan_out(
    func: Callable[..., Any],
    argument_tuples: Sequence[tuple],
    max_workers: int = 1,
) -> list[Any]:
    """Run ``func(*args)`` for each tuple, in a pool when asked.

    For independent jobs that are not :class:`CellSpec`-shaped (the
    sharding benchmark's per-deployment simulations, for instance).
    ``func`` must be a module-level callable and both arguments and
    return values must pickle.  Results come back in argument order; the
    serial path and any pool failure fall back to direct calls.
    """
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if max_workers == 1 or len(argument_tuples) <= 1:
        return [func(*args) for args in argument_tuples]
    try:
        executor = ProcessPoolExecutor(max_workers=max_workers)
    except (OSError, ValueError):
        return [func(*args) for args in argument_tuples]
    results: list[Any] = []
    try:
        futures = [executor.submit(func, *args) for args in argument_tuples]
        for future, args in zip(futures, argument_tuples):
            try:
                results.append(future.result())
            except Exception:
                results.append(func(*args))
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return results
