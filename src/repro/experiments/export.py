"""Result export: experiment results as plain dicts / JSON files.

Experiment campaigns are cheap to re-run but their outputs should be
archivable and diffable; these helpers flatten the result dataclasses
(including action logs and timeline samples) into JSON-serialisable
structures.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.experiments.runner import QosRunResult, RunResult

__all__ = ["run_result_to_dict", "qos_result_to_dict", "write_json"]


def _action_to_dict(action: Any) -> dict[str, Any]:
    payload = dataclasses.asdict(action)
    payload["type"] = type(action).__name__
    return payload


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """A latency-mitigation run as a JSON-serialisable dict."""
    return {
        "app": result.app,
        "policy": result.policy,
        "duration_s": result.duration_s,
        "queries_submitted": result.queries_submitted,
        "queries_completed": result.queries_completed,
        "latency": dataclasses.asdict(result.latency),
        "average_power_watts": result.average_power_watts,
        "actions": [_action_to_dict(action) for action in result.actions],
        "state_samples": [
            dataclasses.asdict(sample) for sample in result.state_samples
        ],
    }


def qos_result_to_dict(result: QosRunResult) -> dict[str, Any]:
    """A QoS-mode run as a JSON-serialisable dict."""
    return {
        "app": result.app,
        "policy": result.policy,
        "duration_s": result.duration_s,
        "qos_target_s": result.qos_target_s,
        "reference_power_watts": result.reference_power_watts,
        "queries_submitted": result.queries_submitted,
        "queries_completed": result.queries_completed,
        "latency": dataclasses.asdict(result.latency),
        "average_power_fraction": result.average_power_fraction,
        "power_saving_fraction": result.power_saving_fraction,
        "violation_fraction": result.violation_fraction,
        "actions": [_action_to_dict(action) for action in result.actions],
        "qos_samples": [dataclasses.asdict(sample) for sample in result.qos_samples],
    }


def write_json(path: str | Path, payload: Any) -> Path:
    """Write a payload as pretty-printed JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
