"""Result export: experiment results as plain dicts / JSON files.

Experiment campaigns are cheap to re-run but their outputs should be
archivable and diffable; these helpers flatten the result dataclasses
(including action logs and timeline samples) into JSON-serialisable
structures.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.core.actions import (
    ActionRecord,
    FrequencyChangeAction,
    InstanceLaunchAction,
    InstanceWithdrawAction,
    SkipAction,
)
from repro.errors import ExperimentError
from repro.scenario.results import (
    QosRunResult,
    RunResult,
    ShardResult,
    ShardedRunResult,
)
from repro.scenario.sampling import QosSample, StageSnapshot, StateSample
from repro.util.percentile import LatencySummary

__all__ = [
    "run_result_to_dict",
    "run_result_from_dict",
    "qos_result_to_dict",
    "qos_result_from_dict",
    "sharded_result_to_dict",
    "sharded_result_from_dict",
    "scenario_payload",
    "scenario_result_from_payload",
    "write_json",
]

_ACTION_TYPES: dict[str, type[ActionRecord]] = {
    cls.__name__: cls
    for cls in (
        FrequencyChangeAction,
        InstanceLaunchAction,
        InstanceWithdrawAction,
        SkipAction,
    )
}


def _action_to_dict(action: Any) -> dict[str, Any]:
    payload = dataclasses.asdict(action)
    payload["type"] = type(action).__name__
    return payload


def _action_from_dict(payload: dict[str, Any]) -> ActionRecord:
    fields = dict(payload)
    type_name = fields.pop("type", None)
    try:
        action_type = _ACTION_TYPES[type_name]
    except KeyError:
        raise ExperimentError(f"unknown action type {type_name!r}") from None
    return action_type(**fields)


def _state_sample_from_dict(payload: dict[str, Any]) -> StateSample:
    stages = tuple(
        StageSnapshot(
            stage_name=stage["stage_name"],
            instance_count=stage["instance_count"],
            frequencies=tuple(
                (name, freq) for name, freq in stage["frequencies"]
            ),
            queue_length=stage["queue_length"],
        )
        for stage in payload["stages"]
    )
    return StateSample(
        time=payload["time"],
        stages=stages,
        total_power_watts=payload["total_power_watts"],
    )


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """A latency-mitigation run as a JSON-serialisable dict."""
    return {
        "app": result.app,
        "policy": result.policy,
        "duration_s": result.duration_s,
        "queries_submitted": result.queries_submitted,
        "queries_completed": result.queries_completed,
        "latency": dataclasses.asdict(result.latency),
        "average_power_watts": result.average_power_watts,
        "actions": [_action_to_dict(action) for action in result.actions],
        "state_samples": [
            dataclasses.asdict(sample) for sample in result.state_samples
        ],
    }


def run_result_from_dict(payload: dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_result_to_dict` output.

    The JSON round trip is lossless: ``run_result_from_dict(json.loads(
    json.dumps(run_result_to_dict(result)))) == result``, which is what
    lets the experiment cache hand back cached cells as first-class
    results.
    """
    return RunResult(
        app=payload["app"],
        policy=payload["policy"],
        duration_s=payload["duration_s"],
        queries_submitted=payload["queries_submitted"],
        queries_completed=payload["queries_completed"],
        latency=LatencySummary(**payload["latency"]),
        average_power_watts=payload["average_power_watts"],
        actions=tuple(
            _action_from_dict(action) for action in payload["actions"]
        ),
        state_samples=tuple(
            _state_sample_from_dict(sample)
            for sample in payload["state_samples"]
        ),
    )


def qos_result_to_dict(result: QosRunResult) -> dict[str, Any]:
    """A QoS-mode run as a JSON-serialisable dict."""
    return {
        "app": result.app,
        "policy": result.policy,
        "duration_s": result.duration_s,
        "qos_target_s": result.qos_target_s,
        "reference_power_watts": result.reference_power_watts,
        "queries_submitted": result.queries_submitted,
        "queries_completed": result.queries_completed,
        "latency": dataclasses.asdict(result.latency),
        "average_power_fraction": result.average_power_fraction,
        "power_saving_fraction": result.power_saving_fraction,
        "violation_fraction": result.violation_fraction,
        "actions": [_action_to_dict(action) for action in result.actions],
        "qos_samples": [dataclasses.asdict(sample) for sample in result.qos_samples],
    }


def qos_result_from_dict(payload: dict[str, Any]) -> QosRunResult:
    """Rebuild a :class:`QosRunResult` from :func:`qos_result_to_dict` output."""
    return QosRunResult(
        app=payload["app"],
        policy=payload["policy"],
        duration_s=payload["duration_s"],
        qos_target_s=payload["qos_target_s"],
        reference_power_watts=payload["reference_power_watts"],
        queries_submitted=payload["queries_submitted"],
        queries_completed=payload["queries_completed"],
        latency=LatencySummary(**payload["latency"]),
        average_power_fraction=payload["average_power_fraction"],
        violation_fraction=payload["violation_fraction"],
        actions=tuple(
            _action_from_dict(action) for action in payload["actions"]
        ),
        qos_samples=tuple(
            QosSample(
                time=sample["time"],
                latency_fraction=sample["latency_fraction"],
                power_fraction=sample["power_fraction"],
            )
            for sample in payload["qos_samples"]
        ),
    )


def sharded_result_to_dict(result: ShardedRunResult) -> dict[str, Any]:
    """A sharded latency run as a JSON-serialisable dict."""
    return {
        "app": result.app,
        "policy": result.policy,
        "duration_s": result.duration_s,
        "n_shards": result.n_shards,
        "splitter": result.splitter,
        "queries_submitted": result.queries_submitted,
        "queries_completed": result.queries_completed,
        "latency": dataclasses.asdict(result.latency),
        "average_power_watts": result.average_power_watts,
        "shards": [
            {
                "index": shard.index,
                "queries_completed": shard.queries_completed,
                "latency": (
                    None
                    if shard.latency is None
                    else dataclasses.asdict(shard.latency)
                ),
                "average_power_watts": shard.average_power_watts,
                "actions": [_action_to_dict(action) for action in shard.actions],
            }
            for shard in result.shards
        ],
    }


def sharded_result_from_dict(payload: dict[str, Any]) -> ShardedRunResult:
    """Rebuild a :class:`ShardedRunResult` from its dict form."""
    return ShardedRunResult(
        app=payload["app"],
        policy=payload["policy"],
        duration_s=payload["duration_s"],
        n_shards=payload["n_shards"],
        splitter=payload["splitter"],
        queries_submitted=payload["queries_submitted"],
        queries_completed=payload["queries_completed"],
        latency=LatencySummary(**payload["latency"]),
        average_power_watts=payload["average_power_watts"],
        shards=tuple(
            ShardResult(
                index=shard["index"],
                queries_completed=shard["queries_completed"],
                latency=(
                    None
                    if shard["latency"] is None
                    else LatencySummary(**shard["latency"])
                ),
                average_power_watts=shard["average_power_watts"],
                actions=tuple(
                    _action_from_dict(action) for action in shard["actions"]
                ),
            )
            for shard in payload["shards"]
        ),
    )


def scenario_payload(
    result: RunResult | QosRunResult | ShardedRunResult,
) -> dict[str, Any]:
    """A kind-tagged payload for whatever a scenario run returned.

    The shape matches the parallel engine's cell payloads, so a scenario
    run's cache entry and a campaign cell's cache entry decode the same
    way.
    """
    if isinstance(result, ShardedRunResult):
        return {"kind": "sharded", "result": sharded_result_to_dict(result)}
    if isinstance(result, QosRunResult):
        return {"kind": "qos", "result": qos_result_to_dict(result)}
    return {"kind": "latency", "result": run_result_to_dict(result)}


def scenario_result_from_payload(
    payload: dict[str, Any],
) -> RunResult | QosRunResult | ShardedRunResult:
    """Rebuild the result object a :func:`scenario_payload` dict encodes."""
    kind = payload.get("kind")
    if kind == "latency":
        return run_result_from_dict(payload["result"])
    if kind == "qos":
        return qos_result_from_dict(payload["result"])
    if kind == "sharded":
        return sharded_result_from_dict(payload["result"])
    raise ExperimentError(f"unknown scenario payload kind {kind!r}")


def write_json(path: str | Path, payload: Any) -> Path:
    """Write a payload as pretty-printed JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
