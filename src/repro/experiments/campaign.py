"""Full evaluation campaigns: every figure and table in one run.

``run_campaign`` regenerates the complete evaluation section — Figures
2-14 and Tables 1/4 — renders each as text, and optionally archives the
renders plus a combined Markdown report to a directory.  This is what
``python -m repro campaign`` drives; the per-figure shape assertions live
in the benchmark suite, not here.

With the default registry the campaign executes through the parallel
cell engine (:mod:`repro.experiments.parallel`): each artefact becomes a
cell, ``max_workers`` fans them out across processes, and ``cache_dir``
memoizes finished artefacts so a re-run only recomputes what changed.  A
custom registry (arbitrary callables, not necessarily picklable) always
runs serially in-process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from repro.errors import ExperimentError
from repro.obs.metrics import MetricsRegistry
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    ResultCache,
    run_cells,
)
from repro.experiments.report import format_heading, format_table

__all__ = ["CampaignResult", "default_registry", "run_campaign"]


@dataclass
class CampaignResult:
    """Rendered artefacts of one campaign run, plus where the time went."""

    renders: dict[str, str] = field(default_factory=dict)
    output_dir: Optional[Path] = None
    #: (artefact, elapsed seconds, source) per artefact, in artefact order.
    timings: list[tuple[str, float, str]] = field(default_factory=list)
    cache_hits: int = 0
    computed: int = 0
    wall_clock_s: float = 0.0

    @property
    def artefacts(self) -> list[str]:
        return sorted(self.renders)

    def render(self, name: str) -> str:
        try:
            return self.renders[name]
        except KeyError:
            raise ExperimentError(f"campaign has no artefact {name!r}") from None

    def combined_report(self) -> str:
        """All renders concatenated into one Markdown document."""
        sections = ["# PowerChief reproduction — evaluation campaign\n"]
        for name in self.artefacts:
            sections.append(f"## {name}\n\n```\n{self.renders[name]}\n```\n")
        if self.timings:
            sections.append(f"## timing\n\n```\n{self.timing_report()}\n```\n")
        return "\n".join(sections)

    def timing_report(self) -> str:
        """Per-artefact wall-clock breakdown, slowest first."""
        rows = [
            (name, f"{elapsed:.2f}s", source)
            for name, elapsed, source in sorted(
                self.timings, key=lambda item: item[1], reverse=True
            )
        ]
        summary = (
            f"{len(self.timings)} artefacts: {self.cache_hits} cached, "
            f"{self.computed} computed, {self.wall_clock_s:.2f}s wall clock"
        )
        return (
            format_heading("Campaign timing")
            + "\n"
            + format_table(["artefact", "elapsed", "source"], rows)
            + "\n"
            + summary
        )


def default_registry() -> dict[str, Callable[[], str]]:
    """The full evaluation: every figure/table keyed by artefact id."""
    from repro.experiments import figures as fig

    return {
        "fig02": lambda: fig.render_fig02(fig.run_fig02()),
        "fig04": lambda: fig.render_fig04(fig.run_fig04()),
        "fig10": lambda: fig.render_improvement_figure(fig.run_fig10()),
        "fig11": lambda: fig.render_fig11(fig.run_fig11()),
        "fig12": lambda: fig.render_fig12(fig.run_fig12()),
        "fig13": lambda: fig.render_fig13(fig.run_fig13()),
        "fig14": lambda: fig.render_fig14(fig.run_fig14()),
        "table1": fig.render_table1,
        "table4": fig.render_table4,
    }


def run_campaign(
    output_dir: Optional[str | Path] = None,
    registry: Optional[Mapping[str, Callable[[], str]]] = None,
    max_workers: int = 1,
    cache_dir: Union[ResultCache, str, Path, None] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> CampaignResult:
    """Run every registered artefact; optionally archive the renders.

    When ``output_dir`` is given, each artefact is written as
    ``<name>.txt`` alongside a combined ``report.md``.  ``max_workers``
    and ``cache_dir`` only apply to the default registry (artefact cells
    run through the parallel engine); a custom registry runs serially.
    ``metrics`` routes the engine's cache and timing bookkeeping through
    a :class:`~repro.obs.metrics.MetricsRegistry`.
    """
    started = time.perf_counter()
    result = CampaignResult()
    if registry is None:
        names = sorted(default_registry())
        report = run_cells(
            [CellSpec.artefact(name) for name in names],
            max_workers=max_workers,
            cache=cache_dir,
            progress=progress,
            registry=metrics,
        )
        for name, outcome in zip(names, report.outcomes):
            result.renders[name] = outcome.payload["render"]
            result.timings.append((name, outcome.elapsed_s, outcome.source))
        result.cache_hits = report.cache_hits
        result.computed = report.computed
    else:
        chosen = dict(registry)
        if not chosen:
            raise ExperimentError("campaign registry is empty")
        for name in sorted(chosen):
            cell_started = time.perf_counter()
            result.renders[name] = chosen[name]()
            result.timings.append(
                (name, time.perf_counter() - cell_started, "serial")
            )
        result.computed = len(chosen)
    result.wall_clock_s = time.perf_counter() - started
    if output_dir is not None:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        for name, text in result.renders.items():
            (target / f"{name}.txt").write_text(text + "\n")
        (target / "report.md").write_text(result.combined_report())
        result.output_dir = target
    return result
