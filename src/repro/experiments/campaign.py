"""Full evaluation campaigns: every figure and table in one run.

``run_campaign`` regenerates the complete evaluation section — Figures
2-14 and Tables 1/4 — renders each as text, and optionally archives the
renders plus a combined Markdown report to a directory.  This is what
``python -m repro campaign`` drives; the per-figure shape assertions live
in the benchmark suite, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro.errors import ExperimentError

__all__ = ["CampaignResult", "default_registry", "run_campaign"]


@dataclass
class CampaignResult:
    """Rendered artefacts of one campaign run."""

    renders: dict[str, str] = field(default_factory=dict)
    output_dir: Optional[Path] = None

    @property
    def artefacts(self) -> list[str]:
        return sorted(self.renders)

    def render(self, name: str) -> str:
        try:
            return self.renders[name]
        except KeyError:
            raise ExperimentError(f"campaign has no artefact {name!r}") from None

    def combined_report(self) -> str:
        """All renders concatenated into one Markdown document."""
        sections = ["# PowerChief reproduction — evaluation campaign\n"]
        for name in self.artefacts:
            sections.append(f"## {name}\n\n```\n{self.renders[name]}\n```\n")
        return "\n".join(sections)


def default_registry() -> dict[str, Callable[[], str]]:
    """The full evaluation: every figure/table keyed by artefact id."""
    from repro.experiments import figures as fig

    return {
        "fig02": lambda: fig.render_fig02(fig.run_fig02()),
        "fig04": lambda: fig.render_fig04(fig.run_fig04()),
        "fig10": lambda: fig.render_improvement_figure(fig.run_fig10()),
        "fig11": lambda: fig.render_fig11(fig.run_fig11()),
        "fig12": lambda: fig.render_fig12(fig.run_fig12()),
        "fig13": lambda: fig.render_fig13(fig.run_fig13()),
        "fig14": lambda: fig.render_fig14(fig.run_fig14()),
        "table1": fig.render_table1,
        "table4": fig.render_table4,
    }


def run_campaign(
    output_dir: Optional[str | Path] = None,
    registry: Optional[Mapping[str, Callable[[], str]]] = None,
) -> CampaignResult:
    """Run every registered artefact; optionally archive the renders.

    When ``output_dir`` is given, each artefact is written as
    ``<name>.txt`` alongside a combined ``report.md``.
    """
    chosen = dict(registry) if registry is not None else default_registry()
    if not chosen:
        raise ExperimentError("campaign registry is empty")
    result = CampaignResult()
    for name in sorted(chosen):
        result.renders[name] = chosen[name]()
    if output_dir is not None:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        for name, text in result.renders.items():
            (target / f"{name}.txt").write_text(text + "\n")
        (target / "report.md").write_text(result.combined_report())
        result.output_dir = target
    return result
