"""Compatibility shim: the Table-2/3 configs live in the scenario layer.

The declarative scenario package owns the paper's deployment defaults
now (:mod:`repro.scenario.config`); every historical import path through
``repro.experiments.config`` keeps working via this re-export.
"""

from repro.scenario.config import (
    TABLE2_CONTROLLER_CONFIG,
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
    TABLE3_SETUPS,
    TABLE3_SIRIUS,
    TABLE3_WEBSEARCH,
    Table3Setup,
)

__all__ = [
    "TABLE2_POWER_BUDGET_WATTS",
    "TABLE2_INITIAL_FREQ_GHZ",
    "TABLE2_CONTROLLER_CONFIG",
    "Table3Setup",
    "TABLE3_SIRIUS",
    "TABLE3_WEBSEARCH",
    "TABLE3_SETUPS",
]
