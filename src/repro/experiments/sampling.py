"""Compatibility shim: the timeline samplers live in the scenario layer.

:class:`StateSampler` and :class:`QosSampler` moved to
:mod:`repro.scenario.sampling` with the scenario refactor (the stack
builder owns them now); every historical import path through
``repro.experiments.sampling`` keeps working via this re-export.
"""

from repro.scenario.sampling import (
    QosSample,
    QosSampler,
    StageSnapshot,
    StateSample,
    StateSampler,
)

__all__ = [
    "StageSnapshot",
    "StateSample",
    "StateSampler",
    "QosSample",
    "QosSampler",
]
