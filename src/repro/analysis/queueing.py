"""Analytical queueing formulas for validating the simulator.

The whole evaluation rests on the substrate's queueing behaviour being
right, so this module provides the closed-form results — M/M/1 and
M/G/1 (Pollaczek-Khinchine) waiting times — that the validation tests
compare simulated pipelines against.  It is also useful on its own for
capacity planning: ``required_instances`` answers "how many instances
does stage X need at frequency f to keep its queuing delay under d".
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.units import exactly

__all__ = [
    "utilization",
    "mm1_mean_wait",
    "mm1_mean_response",
    "mg1_mean_wait",
    "lognormal_cv2",
    "required_instances",
]


def utilization(arrival_rate: float, service_rate: float) -> float:
    """Offered load ``rho = lambda / mu``; must be in [0, 1) to be stable."""
    if arrival_rate < 0.0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0.0:
        raise ConfigurationError(f"service rate must be > 0, got {service_rate}")
    return arrival_rate / service_rate


def _require_stable(rho: float) -> None:
    if rho >= 1.0:
        raise ConfigurationError(
            f"queue is unstable at utilization {rho:.3f} (>= 1); "
            f"closed-form waiting time does not exist"
        )


def mm1_mean_wait(arrival_rate: float, mean_service_time: float) -> float:
    """Mean queuing delay of an M/M/1 queue: ``rho * s / (1 - rho)``."""
    rho = utilization(arrival_rate, 1.0 / mean_service_time)
    _require_stable(rho)
    return rho * mean_service_time / (1.0 - rho)


def mm1_mean_response(arrival_rate: float, mean_service_time: float) -> float:
    """Mean response (wait + service) of an M/M/1 queue."""
    return mm1_mean_wait(arrival_rate, mean_service_time) + mean_service_time


def mg1_mean_wait(
    arrival_rate: float, mean_service_time: float, service_cv2: float
) -> float:
    """Pollaczek-Khinchine mean wait for M/G/1.

    ``W = rho * s * (1 + cv^2) / (2 * (1 - rho))`` where ``cv^2`` is the
    squared coefficient of variation of the service time.
    """
    if service_cv2 < 0.0:
        raise ConfigurationError(f"cv^2 must be >= 0, got {service_cv2}")
    rho = utilization(arrival_rate, 1.0 / mean_service_time)
    _require_stable(rho)
    return rho * mean_service_time * (1.0 + service_cv2) / (2.0 * (1.0 - rho))


def lognormal_cv2(sigma: float) -> float:
    """Squared coefficient of variation of a log-normal: ``exp(sigma^2)-1``."""
    if sigma < 0.0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    return math.exp(sigma * sigma) - 1.0


def required_instances(
    arrival_rate: float,
    mean_service_time: float,
    max_utilization: float = 0.8,
) -> int:
    """Instances needed to keep per-instance utilization under a cap.

    Assumes an even load split (the shortest-queue dispatcher approaches
    this); used for capacity planning of stage pools.
    """
    if not 0.0 < max_utilization < 1.0:
        raise ConfigurationError(
            f"max utilization must be in (0, 1), got {max_utilization}"
        )
    if arrival_rate < 0.0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {arrival_rate}")
    if mean_service_time <= 0.0:
        raise ConfigurationError(
            f"mean service time must be > 0, got {mean_service_time}"
        )
    if exactly(arrival_rate, 0.0):
        return 1
    return max(1, math.ceil(arrival_rate * mean_service_time / max_utilization))
