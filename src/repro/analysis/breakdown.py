"""Latency breakdown: where does the response time (and its tail) go?

The paper's conclusion names "analyz[ing] the tail latency behavior
under the power constraint in more depth" as future work; this module is
that analysis.  Given the completed queries of a run it decomposes:

* per-stage mean/p99 queuing and serving contributions;
* the *tail composition*: for the p99-slowest queries, which stage's
  queuing or serving dominated — the actionable signal for whether the
  next watt should buy a clone (queuing-dominated) or a frequency step
  (serving-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ExperimentError
from repro.service.query import Query
from repro.util.percentile import percentile

__all__ = ["StageContribution", "TailProfile", "LatencyBreakdown", "analyze_queries"]


@dataclass(frozen=True)
class StageContribution:
    """One stage's share of the end-to-end latency."""

    stage_name: str
    mean_queuing_s: float
    mean_serving_s: float
    p99_queuing_s: float
    p99_serving_s: float
    #: Fraction of the summed mean end-to-end latency this stage accounts for.
    mean_share: float

    @property
    def mean_total_s(self) -> float:
        return self.mean_queuing_s + self.mean_serving_s

    @property
    def queuing_dominated(self) -> bool:
        """Whether waiting (not serving) is this stage's main cost."""
        return self.mean_queuing_s > self.mean_serving_s


@dataclass(frozen=True)
class TailProfile:
    """What the slowest (>= p99) queries spent their time on."""

    tail_count: int
    tail_threshold_s: float
    dominant_stage: str
    #: Fraction of tail-query latency spent queuing (vs serving), overall.
    queuing_fraction: float


@dataclass(frozen=True)
class LatencyBreakdown:
    """Full decomposition of a run's completed queries."""

    query_count: int
    mean_latency_s: float
    p99_latency_s: float
    stages: tuple[StageContribution, ...]
    tail: TailProfile

    def stage(self, name: str) -> StageContribution:
        for contribution in self.stages:
            if contribution.stage_name == name:
                return contribution
        raise ExperimentError(f"no stage {name!r} in breakdown")

    def bottleneck_stage(self) -> StageContribution:
        """The stage with the largest mean contribution."""
        return max(self.stages, key=lambda c: c.mean_total_s)


def analyze_queries(
    queries: Iterable[Query], stage_order: Sequence[str]
) -> LatencyBreakdown:
    """Decompose completed queries' latency by stage and tail.

    Queries lacking a completion or a record for a listed stage are
    skipped (in-flight queries at the end of a run); an empty result is
    an error — there is nothing to analyse.
    """
    latencies: list[float] = []
    per_stage: dict[str, list[tuple[float, float]]] = {name: [] for name in stage_order}
    usable: list[Query] = []
    for query in queries:
        if not query.completed:
            continue
        records = {record.stage_name: record for record in query.records}
        if any(name not in records for name in stage_order):
            continue
        usable.append(query)
        latencies.append(query.end_to_end_latency)
        for name in stage_order:
            record = records[name]
            per_stage[name].append((record.queuing_time, record.serving_time))
    if not usable:
        raise ExperimentError("no completed queries to analyse")

    total_mean = sum(
        sum(q + s for q, s in samples) / len(samples)
        for samples in per_stage.values()
    )
    stages = []
    for name in stage_order:
        samples = per_stage[name]
        queuing = [q for q, _ in samples]
        serving = [s for _, s in samples]
        mean_q = sum(queuing) / len(queuing)
        mean_s = sum(serving) / len(serving)
        stages.append(
            StageContribution(
                stage_name=name,
                mean_queuing_s=mean_q,
                mean_serving_s=mean_s,
                p99_queuing_s=percentile(queuing, 99.0),
                p99_serving_s=percentile(serving, 99.0),
                mean_share=(mean_q + mean_s) / total_mean if total_mean > 0 else 0.0,
            )
        )

    threshold = percentile(latencies, 99.0)
    # The tail is the slowest ~1% of queries (at least one): selecting by
    # ">= p99" would sweep in every query when the distribution has ties
    # at the percentile.
    tail_size = max(1, round(0.01 * len(usable)))
    tail_queries = sorted(
        usable, key=lambda q: q.end_to_end_latency, reverse=True
    )[:tail_size]
    stage_cost: dict[str, float] = {name: 0.0 for name in stage_order}
    queuing_total = 0.0
    grand_total = 0.0
    for query in tail_queries:
        for record in query.records:
            if record.stage_name not in stage_cost:
                continue
            stage_cost[record.stage_name] += record.processing_delay
            queuing_total += record.queuing_time
            grand_total += record.processing_delay
    dominant = max(stage_cost, key=lambda name: stage_cost[name])
    tail = TailProfile(
        tail_count=len(tail_queries),
        tail_threshold_s=threshold,
        dominant_stage=dominant,
        queuing_fraction=queuing_total / grand_total if grand_total > 0 else 0.0,
    )
    return LatencyBreakdown(
        query_count=len(usable),
        mean_latency_s=sum(latencies) / len(latencies),
        p99_latency_s=percentile(latencies, 99.0),
        stages=tuple(stages),
        tail=tail,
    )
