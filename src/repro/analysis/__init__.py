"""Analysis tools: queueing-theory validation and latency breakdowns.

:mod:`repro.analysis.queueing` provides the closed-form M/M/1 and M/G/1
results the simulator is validated against; :mod:`repro.analysis.breakdown`
implements the per-stage and tail-latency decomposition the paper's
conclusion names as future work.
"""

from repro.analysis.breakdown import (
    LatencyBreakdown,
    StageContribution,
    TailProfile,
    analyze_queries,
)
from repro.analysis.queueing import (
    lognormal_cv2,
    mg1_mean_wait,
    mm1_mean_response,
    mm1_mean_wait,
    required_instances,
    utilization,
)

__all__ = [
    "LatencyBreakdown",
    "StageContribution",
    "TailProfile",
    "analyze_queries",
    "lognormal_cv2",
    "mg1_mean_wait",
    "mm1_mean_response",
    "mm1_mean_wait",
    "required_instances",
    "utilization",
]
