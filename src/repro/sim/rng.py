"""Deterministic random-number streams for simulation components.

Every stochastic component (load generator, per-stage demand sampling, ...)
draws from its own named stream derived from a single master seed.  This
keeps experiments reproducible *and* decoupled: adding draws to one
component does not perturb the sequence seen by another, so an ablation
that changes the controller leaves the workload byte-identical.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator

from repro.units import exactly

__all__ = ["RandomStreams", "SeededStream"]


class SeededStream(random.Random):
    """A ``random.Random`` that remembers the name it was derived from."""

    def __init__(self, seed: int, name: str) -> None:
        super().__init__(seed)
        self.name = name
        self.derived_seed = seed

    # Convenience distributions used across the workload models -------
    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (mean > 0)."""
        if mean <= 0.0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        return self.expovariate(1.0 / mean)

    def lognormal_mean(self, mean: float, sigma: float) -> float:
        """Log-normal variate parameterised by its *arithmetic* mean.

        ``sigma`` is the shape parameter of the underlying normal; ``mu``
        is solved so that ``E[X] == mean``, which makes demand profiles easy
        to read ("mean serving demand is 0.8 s").
        """
        if mean <= 0.0:
            raise ValueError(f"lognormal mean must be > 0, got {mean}")
        if sigma < 0.0:
            raise ValueError(f"lognormal sigma must be >= 0, got {sigma}")
        if exactly(sigma, 0.0):
            return mean
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self.lognormvariate(mu, sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededStream(name={self.name!r}, seed={self.derived_seed})"


class RandomStreams:
    """A factory of independent, reproducible random streams.

    >>> streams = RandomStreams(master_seed=42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("demand/asr")
    >>> a is streams.stream("arrivals")   # streams are cached by name
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, SeededStream] = {}

    def stream(self, name: str) -> SeededStream:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = SeededStream(self._derive_seed(name), name)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(self._derive_seed(f"fork/{name}"))

    def names(self) -> Iterator[str]:
        """Names of the streams created so far."""
        return iter(sorted(self._streams))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(master_seed={self.master_seed}, streams={len(self._streams)})"
