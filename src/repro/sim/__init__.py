"""Discrete-event simulation substrate.

This package provides the simulation engine that the PowerChief
reproduction runs on: a deterministic event loop (:class:`Simulator`),
cancellable :class:`Event` objects with stable tie-breaking
(:class:`EventPriority`), reproducible named random streams
(:class:`RandomStreams`) and periodic control-loop processes
(:class:`PeriodicProcess`).
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams, SeededStream

__all__ = [
    "Simulator",
    "Event",
    "EventPriority",
    "PeriodicProcess",
    "RandomStreams",
    "SeededStream",
]
