"""Event objects for the discrete-event simulation engine.

An :class:`Event` couples a firing time with a callback.  Events are
orderable by ``(time, priority, seq)`` which gives the engine a stable,
deterministic ordering even when many events share a timestamp: ties are
broken first by explicit priority and then by scheduling order.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Protocol

__all__ = ["Event", "EventPriority"]


class _EventOwner(Protocol):
    """What an :class:`Event` needs from the simulator that queued it."""

    def _note_cancelled(self, event: "Event") -> None: ...


class EventPriority(enum.IntEnum):
    """Tie-break priority for events that fire at the same instant.

    Lower values fire first.  The defaults are arranged so that work
    completions are observed before new arrivals, and controller ticks run
    last within a timestamp — mirroring a real system where the runtime
    samples state that the data path has already updated.
    """

    COMPLETION = 0
    ARRIVAL = 1
    NORMAL = 2
    CONTROL = 3


class Event:
    """A scheduled callback in simulated time.

    Events are created by :meth:`repro.sim.engine.Simulator.schedule`; user
    code normally only keeps them around to :meth:`cancel` them.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "action",
        "args",
        "_cancelled",
        "_fired",
        "_owner",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.args = args
        self._cancelled = False
        self._fired = False
        # The simulator whose queue holds this event, if any.  Cancelling
        # notifies it exactly once so it can keep its pending/cancelled
        # counters live instead of scanning the heap.
        self._owner: Optional["_EventOwner"] = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event's callback has already run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling is idempotent; cancelling an event that already fired is
        a no-op as well (the work cannot be undone), which keeps callers
        that race against completions simple.
        """
        if not self._cancelled and not self._fired and self._owner is not None:
            self._owner._note_cancelled(self)
        self._cancelled = True

    def _mark_fired(self) -> None:
        self._fired = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.action, "__name__", repr(self.action))
        return f"Event(t={self.time:.6f}, prio={self.priority}, {name}, {state})"
