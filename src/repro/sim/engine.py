"""The discrete-event simulation engine.

The :class:`Simulator` is the heartbeat of the whole reproduction: the CMP
power substrate, the multi-stage service pipeline, the load generators and
the PowerChief controllers all advance by scheduling callbacks on a single
shared simulator.  Time is a ``float`` in seconds.

The engine is intentionally minimal and deterministic:

* events fire in ``(time, priority, seq)`` order (see
  :class:`repro.sim.events.EventPriority`),
* cancelled events are lazily skipped when popped, and the heap is
  compacted outright once cancelled stragglers outnumber live entries,
* exceptions raised by callbacks abort the run — silent failure would make
  experiment results meaningless.

The heap stores ``(time, priority, seq, event)`` tuples rather than bare
events so ordering compares native floats and ints without entering
``Event.__lt__``, and the engine keeps live pending/cancelled counters
(events report their own cancellation) so :attr:`pending_count` and
:meth:`empty` never scan the queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventPriority

__all__ = ["Simulator"]

#: Compact the heap once cancelled entries both exceed this floor and
#: outnumber the live entries; the floor keeps tiny queues from thrashing.
_COMPACT_MIN_CANCELLED = 32

_HeapEntry = tuple[float, int, int, Event]


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if start_time < 0.0:
            raise SimulationError(f"start_time must be >= 0, got {start_time}")
        self._now = float(start_time)
        self._queue: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._pending = 0
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._running = False
        self._event_hooks: list[Callable[[Event], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have run."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of events still scheduled and not cancelled."""
        return self._pending

    @property
    def heap_size(self) -> int:
        """Physical heap length, counting cancelled stragglers."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the heap shed its cancelled entries wholesale."""
        return self._compactions

    def empty(self) -> bool:
        """Whether no pending (non-cancelled) events remain."""
        return self._pending == 0

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._cancelled_in_queue -= 1
        if not queue:
            return None
        return queue[0][0]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SchedulingError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, action, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time}; simulator is already at t={self._now}"
            )
        if not callable(action):
            raise SchedulingError(f"event action must be callable, got {action!r}")
        seq = next(self._seq)
        event = Event(time, int(priority), seq, action, args)
        event._owner = self
        heapq.heappush(self._queue, (time, event.priority, seq, event))
        self._pending += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        queue = self._queue
        while queue:
            time, _priority, _seq, event = heapq.heappop(queue)
            if event._cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._pending -= 1
            self._now = time
            event._fired = True
            self._events_processed += 1
            if self._event_hooks:
                for hook in self._event_hooks:
                    hook(event)
            event.action(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget hits.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is advanced to ``until`` so periodic processes can be
            resumed seamlessly by a later ``run`` call.
        max_events:
            Safety valve for tests; raises :class:`SimulationError` when
            exceeded, which usually indicates a runaway event loop.
        """
        self._advance(until, max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Advance the clock to exactly ``until``, firing every due event.

        The stepper contract for external drivers (the :class:`StackBuilder`
        tick loop, the ``reprod`` daemon): events at ``t <= until`` fire in
        order, then the clock lands exactly on ``until`` — never short,
        never past — so a run split across any sequence of deadlines
        replays the same event sequence as one uninterrupted
        :meth:`run`.  ``until == now`` is a legal no-op; ``until < now``
        raises.  Returns the number of events fired this call.
        """
        if until is None:  # explicit: the stepper always has a deadline
            raise SimulationError("run_until() needs a deadline")
        return self._advance(until, max_events)

    def _advance(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until}; simulator is already at t={self._now}"
            )
        self._running = True
        processed = 0
        # Bound per-event overhead: one heappop plus a handful of attribute
        # stores between callbacks.  ``self._queue`` is never rebound (the
        # compactor rewrites it in place), so the local alias stays valid.
        queue = self._queue
        hooks = self._event_hooks
        try:
            while queue:
                head = queue[0]
                event = head[3]
                if event._cancelled:
                    heapq.heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                heapq.heappop(queue)
                self._pending -= 1
                self._now = time
                event._fired = True
                self._events_processed += 1
                if hooks:
                    for hook in hooks:
                        hook(event)
                event.action(*event.args)
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return processed

    # ------------------------------------------------------------------
    # Observability hooks
    # ------------------------------------------------------------------
    def add_event_hook(self, hook: Callable[[Event], None]) -> None:
        """Invoke ``hook(event)`` just before each fired event's callback.

        The engine's hot loop pays one truthiness check when no hook is
        registered; observability (event counters by priority class,
        progress heartbeats) attaches here rather than wrapping every
        callback.  Hooks must not schedule or cancel events.
        """
        self._event_hooks.append(hook)

    def remove_event_hook(self, hook: Callable[[Event], None]) -> None:
        self._event_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_cancelled(self, event: Event) -> None:
        """A queued event was cancelled; keep counters live, maybe compact.

        Called (once per event) from :meth:`Event.cancel`.  Compaction
        rewrites ``self._queue`` in place so aliases held by a running
        :meth:`run` loop stay valid.
        """
        self._pending -= 1
        self._cancelled_in_queue += 1
        queue = self._queue
        if (
            self._cancelled_in_queue >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(queue)
        ):
            queue[:] = [entry for entry in queue if not entry[3]._cancelled]
            heapq.heapify(queue)
            self._cancelled_in_queue = 0
            self._compactions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={self.pending_count})"
