"""Recurring simulated processes.

:class:`PeriodicProcess` is the building block behind every controller in
this reproduction: PowerChief's 25 s adjust interval, the 150 s withdraw
interval, Pegasus's 2 s / 10 s control loops and the power telemetry
sampler are all periodic callbacks on the shared simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventPriority

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """Invoke a callback every ``interval`` simulated seconds.

    The callback receives the current simulated time.  The process arms its
    next tick *after* the callback returns, so a callback that stops the
    process does not leave a stray event behind.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[float], Any],
        *,
        start_delay: Optional[float] = None,
        priority: int = EventPriority.CONTROL,
        name: str = "periodic",
    ) -> None:
        if interval <= 0.0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.priority = priority
        self.name = name
        self._event: Optional[Event] = None
        self._running = False
        self._ticks = 0
        self._start_delay = self.interval if start_delay is None else float(start_delay)
        if self._start_delay < 0.0:
            raise SimulationError(f"start_delay must be >= 0, got {self._start_delay}")

    @property
    def running(self) -> bool:
        """Whether the process currently has a tick scheduled."""
        return self._running

    @property
    def ticks(self) -> int:
        """Number of times the callback has run."""
        return self._ticks

    def start(self) -> None:
        """Arm the first tick; starting an already-running process fails."""
        if self._running:
            raise SimulationError(f"process {self.name!r} is already running")
        self._running = True
        self._event = self.sim.schedule(
            self._start_delay, self._tick, priority=self.priority
        )

    def stop(self) -> None:
        """Cancel the pending tick, if any.  Stopping twice is a no-op."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._ticks += 1
        self.callback(self.sim.now)
        if self._running:
            self._event = self.sim.schedule(
                self.interval, self._tick, priority=self.priority
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"PeriodicProcess({self.name!r}, every {self.interval}s, {state})"
