"""Sharded deployments: scaling PowerChief beyond one command center.

Section 7.2: "The boosting decision may become a bottleneck when the
number of services scales beyond a certain point.  In that case, we can
duplicate the services into multiple shardings across CMP servers and
use PowerChief to manage them separately with acceptable overhead."

A :class:`ShardedDeployment` owns N :class:`Shard` replicas — each a full
(machine, application, command center, budget, controller) stack, i.e.
one CMP server — and splits incoming queries across them.  Each shard's
PowerChief sees only its own instances, so the per-decision cost stays
flat as the fleet grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.cluster.budget import PowerBudget
from repro.core.controller import BaseController
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.query import Query
from repro.sim.engine import Simulator
from repro.util.percentile import LatencySummary, summarize

__all__ = ["Shard", "QuerySplitter", "RoundRobinSplitter", "LeastInFlightSplitter", "ShardedDeployment"]


@dataclass
class Shard:
    """One replica: an application stack on its own CMP server."""

    index: int
    application: Application
    command_center: CommandCenter
    budget: PowerBudget
    controller: Optional[BaseController] = None

    @property
    def in_flight(self) -> int:
        return self.application.in_flight


class QuerySplitter:
    """Chooses the shard for each incoming query."""

    def select(self, shards: Sequence[Shard]) -> Shard:  # pragma: no cover - abstract
        raise NotImplementedError


class RoundRobinSplitter(QuerySplitter):
    """Cycle through shards — the stateless front-end load balancer."""

    def __init__(self) -> None:
        self._next = 0

    def select(self, shards: Sequence[Shard]) -> Shard:
        shard = shards[self._next % len(shards)]
        self._next += 1
        return shard


class LeastInFlightSplitter(QuerySplitter):
    """Send each query to the shard with the fewest in-flight queries."""

    def select(self, shards: Sequence[Shard]) -> Shard:
        return min(shards, key=lambda shard: (shard.in_flight, shard.index))


class ShardedDeployment:
    """N application replicas behind a query splitter.

    ``shard_factory(sim, index)`` builds one complete shard; the
    deployment starts/stops every shard's controller and aggregates
    their statistics.
    """

    def __init__(
        self,
        sim: Simulator,
        n_shards: int,
        shard_factory: Callable[[Simulator, int], Shard],
        splitter: Optional[QuerySplitter] = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"need >= 1 shard, got {n_shards}")
        self.sim = sim
        self.shards: list[Shard] = [
            shard_factory(sim, index) for index in range(n_shards)
        ]
        self.splitter = splitter if splitter is not None else LeastInFlightSplitter()
        self._submitted = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every shard's controller (if it has one)."""
        for shard in self.shards:
            if shard.controller is not None:
                shard.controller.start()

    def stop(self) -> None:
        for shard in self.shards:
            if shard.controller is not None:
                shard.controller.stop()

    # ------------------------------------------------------------------
    def submit(self, query: Query) -> Shard:
        """Route a query to a shard; returns the shard that took it."""
        shard = self.splitter.select(self.shards)
        shard.application.submit(query)
        self._submitted += 1
        return shard

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def completed(self) -> int:
        return sum(shard.application.completed for shard in self.shards)

    @property
    def in_flight(self) -> int:
        return sum(shard.in_flight for shard in self.shards)

    # ------------------------------------------------------------------
    def all_latencies(self) -> list[float]:
        """End-to-end latencies pooled across every shard."""
        latencies: list[float] = []
        for shard in self.shards:
            latencies.extend(shard.command_center.all_latencies)
        return latencies

    def summary(self) -> LatencySummary:
        """Pooled latency summary across the deployment."""
        return summarize(self.all_latencies())

    def total_power(self) -> float:
        return sum(shard.application.total_power() for shard in self.shards)

    def assert_budgets(self) -> None:
        """Every shard's budget invariant, in one call."""
        for shard in self.shards:
            shard.budget.assert_within()
