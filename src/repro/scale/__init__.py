"""Scale-out support: sharded deployments (Section 7.2)."""

from repro.scale.sharding import (
    LeastInFlightSplitter,
    QuerySplitter,
    RoundRobinSplitter,
    Shard,
    ShardedDeployment,
)

__all__ = [
    "LeastInFlightSplitter",
    "QuerySplitter",
    "RoundRobinSplitter",
    "Shard",
    "ShardedDeployment",
]
