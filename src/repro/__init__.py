"""PowerChief reproduction.

A full Python reproduction of *PowerChief: Intelligent Power Allocation
for Multi-Stage Applications to Improve Responsiveness on Power
Constrained CMP* (Yang et al., ISCA 2017), including the discrete-event
CMP/service substrate the evaluation needs.

Quick start::

    from repro import (
        Simulator, Machine, PowerBudget, DvfsActuator, CommandCenter,
        PowerChiefController, build_sirius, HASWELL_LADDER,
    )

    sim = Simulator()
    machine = Machine(sim)
    app = build_sirius(sim, machine, HASWELL_LADDER.level_of(1.8))
    command_center = CommandCenter(sim, app)
    controller = PowerChiefController(
        sim, app, command_center, PowerBudget(machine, 13.56),
        DvfsActuator(sim),
    )
    controller.start()
    # ... submit queries, sim.run(...)

or use the pre-wired experiment harness::

    from repro.experiments import run_latency_experiment
    from repro.workloads import ConstantLoad, sirius_load_levels

    result = run_latency_experiment(
        "sirius", "powerchief",
        ConstantLoad(sirius_load_levels().high_qps), duration_s=600.0,
    )
    print(result.latency)

or describe the whole run declaratively and let the scenario layer
assemble it (the experiment harness itself goes through this path)::

    from repro import ScenarioSpec, run_scenario

    spec = ScenarioSpec.latency(
        "sirius", "powerchief", ("constant", 1.5), 600.0, shards=2,
    )
    print(run_scenario(spec).latency)
"""

from repro.analysis import (
    LatencyBreakdown,
    analyze_queries,
    mg1_mean_wait,
    mm1_mean_wait,
)
from repro.cluster import (
    DEFAULT_POWER_MODEL,
    HASWELL_LADDER,
    CubicPowerModel,
    DvfsActuator,
    FrequencyLadder,
    Machine,
    PowerBudget,
    PowerModel,
    PowerTelemetry,
    TabularPowerModel,
)
from repro.core import (
    BoostingDecisionEngine,
    BoostKind,
    BottleneckIdentifier,
    ControllerConfig,
    FreqBoostController,
    InstanceWithdrawer,
    InstBoostController,
    MetricKind,
    PegasusController,
    PowerChiefConserveController,
    PowerChiefController,
    PowerRecycler,
    StaticController,
)
from repro.cluster.calibration import fit_cubic_model, reference_power_table
from repro.errors import ReproError
from repro.scale import LeastInFlightSplitter, RoundRobinSplitter, Shard, ShardedDeployment
from repro.scenario import (
    ScenarioSpec,
    ShardedRunResult,
    StackBuilder,
    run_scenario,
)
from repro.service import (
    Application,
    CommandCenter,
    LogNormalDemand,
    PowerLawSpeedup,
    Query,
    ServiceInstance,
    ServiceProfile,
    Stage,
    StageKind,
)
from repro.sim import PeriodicProcess, RandomStreams, Simulator
from repro.workloads import (
    ConstantLoad,
    PiecewiseLoad,
    PoissonLoadGenerator,
    QueryFactory,
    build_application,
    build_nlp,
    build_sirius,
    build_websearch,
    nlp_load_levels,
    sirius_load_levels,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # analysis
    "LatencyBreakdown",
    "analyze_queries",
    "mm1_mean_wait",
    "mg1_mean_wait",
    # calibration
    "fit_cubic_model",
    "reference_power_table",
    # scale
    "Shard",
    "ShardedDeployment",
    "RoundRobinSplitter",
    "LeastInFlightSplitter",
    # scenario
    "ScenarioSpec",
    "StackBuilder",
    "run_scenario",
    "ShardedRunResult",
    # sim
    "Simulator",
    "PeriodicProcess",
    "RandomStreams",
    # cluster
    "FrequencyLadder",
    "HASWELL_LADDER",
    "PowerModel",
    "CubicPowerModel",
    "TabularPowerModel",
    "DEFAULT_POWER_MODEL",
    "Machine",
    "PowerBudget",
    "DvfsActuator",
    "PowerTelemetry",
    # service
    "Application",
    "CommandCenter",
    "Query",
    "ServiceInstance",
    "ServiceProfile",
    "Stage",
    "StageKind",
    "LogNormalDemand",
    "PowerLawSpeedup",
    # core
    "MetricKind",
    "BottleneckIdentifier",
    "BoostingDecisionEngine",
    "BoostKind",
    "PowerRecycler",
    "InstanceWithdrawer",
    "ControllerConfig",
    "PowerChiefController",
    "StaticController",
    "FreqBoostController",
    "InstBoostController",
    "PegasusController",
    "PowerChiefConserveController",
    # workloads
    "ConstantLoad",
    "PiecewiseLoad",
    "PoissonLoadGenerator",
    "QueryFactory",
    "build_application",
    "build_sirius",
    "build_nlp",
    "build_websearch",
    "sirius_load_levels",
    "nlp_load_levels",
]
