"""Small AST utilities shared by the checkers."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = [
    "dotted_name",
    "import_origins",
    "resolve_call_target",
    "unit_of_identifier",
    "UNIT_SUFFIXES",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def import_origins(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    time as now`` maps ``now -> time.time``.  Only top-level and
    function-local imports are walked — good enough for origin checks.
    """
    origins: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origins[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                origins[local] = f"{node.module}.{alias.name}"
    return origins


def resolve_call_target(
    call: ast.Call, origins: dict[str, str]
) -> Optional[str]:
    """The fully-qualified dotted target of a call, import-aware.

    ``np.random.rand()`` resolves to ``numpy.random.rand`` when ``np``
    was imported as ``numpy``; a bare ``now()`` resolves through a
    ``from time import time as now`` origin to ``time.time``.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = origins.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


#: Identifier-suffix heuristics mapping names to physical units.  Keys
#: are tried longest-first so ``_seconds`` wins over ``_s``.
UNIT_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_watts", "W"),
    ("_joules", "J"),
    ("_seconds", "s"),
    ("_ghz", "GHz"),
    ("_hz", "Hz"),
    ("_qps", "qps"),
    ("_s", "s"),
)


def unit_of_identifier(name: str) -> Optional[str]:
    """Infer a unit from an identifier's suffix (``budget_watts`` -> W)."""
    lowered = name.lower()
    for suffix, unit in UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return None
