"""Apply the mechanically fixable subset: ``repro lint --fix``.

A checker that knows the exact rewrite attaches a
:class:`~repro.lint.findings.Fix` (a list of
:class:`~repro.lint.findings.TextEdit` ranges) to its finding —
``unordered-iteration`` wraps the iterable in ``sorted(...)``,
``float-equality`` rewrites ``a == b`` to ``approx_eq(a, b)`` and
inserts the import.  This module applies those edits to the files on
disk, conservatively:

* duplicate edits (two findings both inserting the same import at the
  same spot) collapse to one;
* a fix whose edits overlap a range already claimed by an earlier fix
  is skipped whole — half-applied rewrites are worse than none;
* edits apply bottom-up so earlier positions stay valid.

Callers re-lint afterwards: applying a fix changes line numbers, so the
authoritative "what is still wrong" answer is a fresh run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding, LintReport, TextEdit

__all__ = ["FixResult", "apply_fixes"]

_Pos = Tuple[int, int]


@dataclass
class FixResult:
    """What ``--fix`` did: which files changed, what was skipped."""

    files_changed: List[str] = field(default_factory=list)
    fixes_applied: int = 0
    fixes_skipped: int = 0

    def summary(self) -> str:
        return (
            f"applied {self.fixes_applied} fix(es) across "
            f"{len(self.files_changed)} file(s)"
            + (
                f", skipped {self.fixes_skipped} conflicting"
                if self.fixes_skipped
                else ""
            )
        )


def _start(edit: TextEdit) -> _Pos:
    return (edit.line, edit.col)


def _end(edit: TextEdit) -> _Pos:
    return (edit.end_line, edit.end_col)


def _overlaps(edit: TextEdit, claimed: List[TextEdit]) -> bool:
    """Whether ``edit``'s range intersects any claimed range.

    Zero-width insertions at a range boundary do not conflict; two
    zero-width insertions at the *same point* do (their order would be
    ambiguous) unless they are identical — identical duplicates are
    collapsed before this check.
    """
    for other in claimed:
        if edit == other:
            return True
        zero_self = _start(edit) == _end(edit)
        zero_other = _start(other) == _end(other)
        if zero_self and zero_other:
            if _start(edit) == _start(other):
                return True
            continue
        if _end(edit) <= _start(other) or _end(other) <= _start(edit):
            continue
        return True
    return False


def _apply_edit(lines: List[str], edit: TextEdit) -> None:
    """Splice one edit into the line list (lines carry no newlines)."""
    prefix = lines[edit.line - 1][: edit.col]
    suffix = lines[edit.end_line - 1][edit.end_col :]
    merged = (prefix + edit.replacement + suffix).split("\n")
    lines[edit.line - 1 : edit.end_line] = merged


def apply_fixes(report: LintReport) -> FixResult:
    """Write every non-conflicting attached fix back to disk."""
    by_path: Dict[str, List[Finding]] = {}
    for finding in report.findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)

    result = FixResult()
    for path in sorted(by_path):
        claimed: List[TextEdit] = []
        accepted: List[TextEdit] = []
        for finding in sorted(by_path[path], key=Finding.sort_key):
            assert finding.fix is not None
            edits = [e for e in finding.fix.edits if e not in claimed]
            fresh = [e for e in edits if not _overlaps(e, claimed)]
            if len(fresh) != len(edits):
                result.fixes_skipped += 1
                continue
            claimed.extend(finding.fix.edits)
            accepted.extend(fresh)
            result.fixes_applied += 1
        if not accepted:
            continue
        file = Path(path)
        text = file.read_text(encoding="utf-8")
        trailing_newline = text.endswith("\n")
        lines = text.split("\n")
        for edit in sorted(
            accepted, key=lambda e: (_start(e), _end(e)), reverse=True
        ):
            _apply_edit(lines, edit)
        rebuilt = "\n".join(lines)
        if trailing_newline and not rebuilt.endswith("\n"):
            rebuilt += "\n"
        file.write_text(rebuilt, encoding="utf-8")
        result.files_changed.append(path)
    return result
