"""Parsed source modules and suppression-comment handling."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SourceModule", "Suppressions", "parse_suppressions"]

#: ``# repro-lint: disable=rule-a,rule-b`` — suppresses those rules on the
#: physical line the comment sits on.  ``disable-file=`` suppresses for
#: the whole module.  ``disable=all`` matches every rule.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)"
)


@dataclass
class Suppressions:
    """Which rules are switched off, per line and per file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def covers(self, line: int, rule: str) -> bool:
        """Whether a finding of ``rule`` on ``line`` is suppressed."""
        if rule in self.file_wide or "all" in self.file_wide:
            return True
        rules = self.by_line.get(line, ())
        return rule in rules or "all" in rules


def parse_suppressions(text: str) -> Suppressions:
    """Extract suppression comments from source text.

    The scan is line-based on purpose: a suppression applies to findings
    reported on the same physical line, which matches how every AST node
    in this package is located.
    """
    suppressions = Suppressions()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {rule.strip() for rule in match.group(2).split(",") if rule.strip()}
        if match.group(1) == "disable-file":
            suppressions.file_wide |= rules
        else:
            suppressions.by_line.setdefault(lineno, set()).update(rules)
    return suppressions


@dataclass
class SourceModule:
    """One parsed Python file, ready for checkers.

    ``package_path`` is the path relative to the ``repro`` package root
    when the file lives under one (``sim/engine.py``), otherwise relative
    to the scanned root — checker scopes match against it with simple
    prefix tests, so golden-test trees can mimic the package layout.
    """

    path: Path
    package_path: str
    text: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def parse(cls, path: Path, package_path: str) -> "SourceModule":
        """Parse a file; raises :class:`SyntaxError` on unparsable source."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            package_path=package_path,
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
        )

    def in_scope(self, prefixes: tuple[str, ...]) -> bool:
        """Whether this module matches any scope prefix (empty = all)."""
        if not prefixes:
            return True
        return any(self.package_path.startswith(prefix) for prefix in prefixes)
