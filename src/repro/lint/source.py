"""Parsed source modules and suppression-comment handling."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = [
    "SourceModule",
    "Suppressions",
    "parse_suppressions",
    "resolve_suppressions",
]

#: ``# repro-lint: disable=rule-a,rule-b`` — suppresses those rules on the
#: physical line the comment sits on.  ``disable-file=`` suppresses for
#: the whole module.  ``disable=all`` matches every rule.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)"
)

_COMPOUND_STMTS = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Match,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


@dataclass
class Suppressions:
    """Which rules are switched off, per line and per file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def covers(self, line: int, rule: str) -> bool:
        """Whether a finding of ``rule`` on ``line`` is suppressed."""
        if rule in self.file_wide or "all" in self.file_wide:
            return True
        rules = self.by_line.get(line, ())
        return rule in rules or "all" in rules

    def add(self, line: int, rules: set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rules)


def parse_suppressions(text: str) -> Suppressions:
    """Extract suppression comments from source text, line-scoped.

    The base scan is line-based: a same-line comment applies to findings
    reported on that physical line.  A *standalone* suppression comment
    (nothing but the comment on its line) applies to the next code line
    instead, and consecutive standalone comments stack onto the same
    target — see :func:`resolve_suppressions` for the AST-aware pass
    that additionally maps decorator lines and multiline statements to
    their finding anchors.
    """
    suppressions = Suppressions()
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {rule.strip() for rule in match.group(2).split(",") if rule.strip()}
        if match.group(1) == "disable-file":
            suppressions.file_wide |= rules
            continue
        if line.strip().startswith("#"):
            target = _next_code_line(lines, lineno)
            if target is not None:
                suppressions.add(target, rules)
        else:
            suppressions.add(lineno, rules)
    return suppressions


def _next_code_line(lines: list[str], after: int) -> Optional[int]:
    """First 1-based line after ``after`` that holds code (not blank,
    not a pure comment) — where a standalone suppression lands."""
    for lineno in range(after + 1, len(lines) + 1):
        stripped = lines[lineno - 1].strip()
        if stripped and not stripped.startswith("#"):
            return lineno
    return None


def _anchor_map(tree: ast.Module) -> dict[int, int]:
    """Physical line -> the line findings for that statement anchor at.

    Two cases beyond the identity: every physical line of a *simple*
    multiline statement maps to its first line (where AST nodes anchor),
    and decorator lines map to their ``def``/``class`` line.  Compound
    statements are excluded — their extent covers whole bodies whose
    statements anchor themselves.
    """
    anchors: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, _COMPOUND_STMTS):
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                for line in range(decorators[0].lineno, node.lineno):
                    anchors[line] = node.lineno
            continue
        end = getattr(node, "end_lineno", None)
        if end is not None and end > node.lineno:
            for line in range(node.lineno, end + 1):
                anchors.setdefault(line, node.lineno)
    return anchors


def resolve_suppressions(text: str, tree: ast.Module) -> Suppressions:
    """Line suppressions with AST-aware anchoring.

    On top of :func:`parse_suppressions`: a suppression landing anywhere
    inside a multiline simple statement also covers the statement's
    anchor line, and one landing on a decorator covers the decorated
    ``def``/``class`` line.  The original line keeps its suppression
    too, so rules that anchor findings mid-statement stay coverable.
    """
    suppressions = parse_suppressions(text)
    anchors = _anchor_map(tree)
    for line, rules in list(suppressions.by_line.items()):
        anchor = anchors.get(line)
        if anchor is not None and anchor != line:
            suppressions.add(anchor, set(rules))
    return suppressions


@dataclass
class SourceModule:
    """One parsed Python file, ready for checkers.

    ``package_path`` is the path relative to the ``repro`` package root
    when the file lives under one (``sim/engine.py``), otherwise relative
    to the scanned root — checker scopes match against it with simple
    prefix tests, so golden-test trees can mimic the package layout.
    """

    path: Path
    package_path: str
    text: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def parse(cls, path: Path, package_path: str) -> "SourceModule":
        """Parse a file; raises :class:`SyntaxError` on unparsable source."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            package_path=package_path,
            text=text,
            tree=tree,
            suppressions=resolve_suppressions(text, tree),
        )

    def in_scope(self, prefixes: tuple[str, ...]) -> bool:
        """Whether this module matches any scope prefix (empty = all)."""
        if not prefixes:
            return True
        return any(self.package_path.startswith(prefix) for prefix in prefixes)
