"""Structured lint findings and the report that aggregates them."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["Finding", "Fix", "LintReport", "TextEdit"]


@dataclass(frozen=True)
class TextEdit:
    """Replace one source range with ``replacement``.

    Lines are 1-based, columns 0-based (AST convention).  A zero-width
    range (``line == end_line`` and ``col == end_col``) is an insertion.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Fix:
    """A mechanical rewrite that removes the finding."""

    description: str
    edits: Tuple[TextEdit, ...]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as given to the runner; ``package_path`` is its
    location relative to the ``repro`` package root (``sim/engine.py``),
    which is what checker scopes match against.  ``hint`` says how to fix
    the violation, not just what it is.  ``fix``, when present, is a
    mechanical rewrite ``repro lint --fix`` can apply.
    """

    path: str
    package_path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str = ""
    fix: Optional[Fix] = None

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def format(self) -> str:
        """The one-line human rendering: ``path:line:col: rule message``."""
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "package_path": self.package_path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "fixable": self.fix is not None,
        }


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``findings`` are the live violations; ``baselined`` holds findings
    matched by an accepted-debt baseline file (see
    :mod:`repro.lint.baseline`) — suppressed for exit-code purposes but
    still carried so SARIF can mark them ``suppressed`` rather than
    pretend they do not exist.
    """

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def rules_fired(self) -> dict[str, int]:
        """Finding counts by rule id, for the summary line."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [finding.format() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_scanned} file(s)"
        )
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        if self.baselined:
            summary += f", {len(self.baselined)} baselined"
        if self.findings:
            by_rule = ", ".join(
                f"{rule}: {count}" for rule, count in self.rules_fired().items()
            )
            summary += f" [{by_rule}]"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload for ``repro lint --format json``."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "baselined": len(self.baselined),
            "findings": [finding.to_dict() for finding in self.findings],
        }
