"""Discover files, run every checker, aggregate the report.

Since the flow-aware engine the run is two-phase: every file is parsed
up front, the run-wide :class:`~repro.lint.context.LintContext` (module
list + cross-module call graph, optionally disk-cached) is built from
the parsed set, and only then do checkers see modules.  That ordering is
what lets interprocedural rules resolve a helper defined in a file that
happens to sort later.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.lint.callgraph import build_call_graph
from repro.lint.context import LintContext
from repro.lint.findings import Finding, LintReport
from repro.lint.registry import CheckerRegistry, default_registry
from repro.lint.source import SourceModule, Suppressions

__all__ = ["lint_paths", "discover_files", "package_relative"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})

#: Scan roots whose *name* is kept as a package-path prefix: linting the
#: real ``tests/`` or ``examples/`` tree must not make ``tests/sim/...``
#: look like simulator source to scoped rules.
_PREFIXED_ROOTS = frozenset({"tests", "examples"})


def discover_files(paths: Sequence[Union[str, Path]]) -> list[tuple[Path, Path]]:
    """Expand files/directories into ``(file, scan root)`` pairs, sorted."""
    pairs: list[tuple[Path, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(file.parts):
                    pairs.append((file, path))
        elif path.is_file():
            pairs.append((path, path.parent))
        else:
            raise ConfigurationError(f"lint target {path} does not exist")
    return pairs


def package_relative(file: Path, root: Path) -> str:
    """The path checker scopes match against.

    Strips everything up to and including the ``repro`` package directory
    when the file lives under one (``src/repro/sim/engine.py`` ->
    ``sim/engine.py``); otherwise the path relative to the scanned root,
    so golden-test trees mimic the layout with plain subdirectories.
    Scanning a root literally named ``tests`` or ``examples`` keeps that
    name as a prefix (``tests/sim/test_engine.py``), so simulator-scoped
    rules never mistake a test tree for the simulator.
    """
    relative = file.resolve().relative_to(root.resolve())
    parts = list(relative.parts)
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    elif root.name in _PREFIXED_ROOTS:
        parts = [root.name, *parts]
    if not parts:  # the root itself was a file directly inside repro/
        parts = [file.name]
    return "/".join(parts)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    registry: Optional[CheckerRegistry] = None,
    select: Optional[Union[str, Iterable[str]]] = None,
    callgraph_cache: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Run the lint pass over files and directories.

    Unparsable files become ``parse-error`` findings rather than
    crashing the run; checker exceptions propagate (a crash in the tool
    itself must exit 2, not masquerade as a clean pass).
    ``callgraph_cache`` names an optional JSON file reused across runs
    so unchanged modules are never re-summarised.
    """
    registry = registry if registry is not None else default_registry()
    checkers = registry.instantiate(select)
    report = LintReport()
    raw_findings: list[Finding] = []
    suppressions_by_path: dict[str, Suppressions] = {}

    modules: list[SourceModule] = []
    for file, root in discover_files(paths):
        package_path = package_relative(file, root)
        report.files_scanned += 1
        try:
            module = SourceModule.parse(file, package_path)
        except SyntaxError as error:
            raw_findings.append(
                Finding(
                    path=str(file),
                    package_path=package_path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule="parse-error",
                    message=f"file does not parse: {error.msg}",
                    hint="fix the syntax error; nothing else was checked",
                )
            )
            continue
        suppressions_by_path[str(file)] = module.suppressions
        modules.append(module)

    context = LintContext(
        modules=modules,
        call_graph=build_call_graph(modules, cache_path=callgraph_cache),
    )
    for checker in checkers:
        checker.configure(context)

    for module in modules:
        for checker in checkers:
            if module.in_scope(checker.scope):
                raw_findings.extend(checker.check(module))

    for checker in checkers:
        raw_findings.extend(checker.finish())

    for finding in raw_findings:
        suppressions = suppressions_by_path.get(finding.path)
        if suppressions is not None and suppressions.covers(
            finding.line, finding.rule
        ):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    report.findings.sort(key=Finding.sort_key)
    return report
