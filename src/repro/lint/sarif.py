"""SARIF 2.1.0 serialisation for lint reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_ is the
interchange format GitHub code scanning ingests; ``repro lint --format
sarif`` emits one run with the full rule catalog as
``reportingDescriptor`` objects and one ``result`` per finding.
Baseline-matched findings are *not* dropped: they appear with a
``suppressions`` entry of kind ``external`` so the dashboard shows them
as accepted debt rather than pretending they never existed.

The container has no jsonschema package, so :func:`validate_sarif`
implements a structural validator for the subset of the 2.1.0 schema the
emitter uses (and that code scanning rejects uploads over): required
top-level keys, rule/result/location shapes, level and kind enums,
ruleIndex consistency.  Tests run every emitted payload through it.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Any, Dict, List, Optional

from repro.lint.baseline import compute_fingerprints
from repro.lint.findings import Finding, LintReport
from repro.lint.registry import CheckerRegistry

__all__ = ["SARIF_SCHEMA_URI", "report_to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

#: The synthetic rule the runner emits for unparsable files; it has no
#: registered checker, so the catalog needs a hand-written descriptor.
_PARSE_ERROR_RULE = {
    "id": "parse-error",
    "shortDescription": {"text": "file does not parse"},
    "help": {"text": "fix the syntax error; nothing else was checked"},
}

_LEVELS = frozenset({"none", "note", "warning", "error"})
_SUPPRESSION_KINDS = frozenset({"inSource", "external"})


def _rule_catalog(
    registry: Optional[CheckerRegistry], report: LintReport
) -> List[Dict[str, Any]]:
    """Every rule as a ``reportingDescriptor``, parse-error included."""
    rules: List[Dict[str, Any]] = []
    if registry is not None:
        for rule_id, description, scope in registry.describe():
            checker = registry.get(rule_id)
            descriptor: Dict[str, Any] = {
                "id": rule_id,
                "shortDescription": {"text": description or rule_id},
            }
            if checker.hint:
                descriptor["help"] = {"text": checker.hint}
            if scope:
                descriptor["properties"] = {"scope": list(scope)}
            rules.append(descriptor)
    known = {rule["id"] for rule in rules}
    fired = {
        finding.rule for finding in [*report.findings, *report.baselined]
    }
    for rule_id in sorted(fired - known):
        if rule_id == "parse-error":
            rules.append(dict(_PARSE_ERROR_RULE))
        else:
            rules.append(
                {"id": rule_id, "shortDescription": {"text": rule_id}}
            )
    rules.sort(key=lambda rule: rule["id"])
    return rules


def _result(
    finding: Finding,
    fingerprint: str,
    rule_index: Dict[str, int],
    suppressed: bool,
) -> Dict[str, Any]:
    message = finding.message
    if finding.hint:
        message += f" (hint: {finding.hint})"
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": PurePath(finding.path).as_posix()
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.column, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": fingerprint},
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def report_to_sarif(
    report: LintReport, registry: Optional[CheckerRegistry] = None
) -> Dict[str, Any]:
    """The full SARIF 2.1.0 payload for one lint run."""
    rules = _rule_catalog(registry, report)
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    everything = [*report.findings, *report.baselined]
    fingerprints = compute_fingerprints(everything)
    live_count = len(report.findings)
    results = [
        _result(
            finding,
            fingerprint,
            rule_index,
            suppressed=index >= live_count,
        )
        for index, (finding, fingerprint) in enumerate(
            zip(everything, fingerprints)
        )
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/lint-rules"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


# ----------------------------------------------------------------------
# Structural validation (subset of the 2.1.0 schema).


def _expect(
    errors: List[str], condition: bool, where: str, message: str
) -> bool:
    if not condition:
        errors.append(f"{where}: {message}")
    return condition


def _validate_rule(rule: Any, where: str, errors: List[str]) -> None:
    if not _expect(errors, isinstance(rule, dict), where, "not an object"):
        return
    _expect(
        errors,
        isinstance(rule.get("id"), str) and bool(rule.get("id")),
        where,
        "missing non-empty string 'id'",
    )
    short = rule.get("shortDescription")
    if short is not None:
        _expect(
            errors,
            isinstance(short, dict) and isinstance(short.get("text"), str),
            where,
            "'shortDescription' must be an object with string 'text'",
        )


def _validate_result(
    result: Any, rule_count: int, where: str, errors: List[str]
) -> None:
    if not _expect(errors, isinstance(result, dict), where, "not an object"):
        return
    message = result.get("message")
    if _expect(errors, isinstance(message, dict), where, "missing 'message'"):
        _expect(
            errors,
            isinstance(message.get("text"), str),
            where,
            "'message.text' must be a string",
        )
    if "ruleId" in result:
        _expect(
            errors,
            isinstance(result["ruleId"], str),
            where,
            "'ruleId' must be a string",
        )
    if "ruleIndex" in result:
        index = result["ruleIndex"]
        _expect(
            errors,
            isinstance(index, int) and 0 <= index < rule_count,
            where,
            f"'ruleIndex' {index!r} out of range for {rule_count} rules",
        )
    if "level" in result:
        _expect(
            errors,
            result["level"] in _LEVELS,
            where,
            f"'level' {result['level']!r} not one of {sorted(_LEVELS)}",
        )
    for li, location in enumerate(result.get("locations", [])):
        lwhere = f"{where}.locations[{li}]"
        if not _expect(
            errors, isinstance(location, dict), lwhere, "not an object"
        ):
            continue
        physical = location.get("physicalLocation")
        if not _expect(
            errors,
            isinstance(physical, dict),
            lwhere,
            "missing 'physicalLocation'",
        ):
            continue
        artifact = physical.get("artifactLocation")
        if _expect(
            errors,
            isinstance(artifact, dict),
            lwhere,
            "missing 'artifactLocation'",
        ):
            uri = artifact.get("uri")
            _expect(
                errors,
                isinstance(uri, str) and "\\" not in uri,
                lwhere,
                "'artifactLocation.uri' must be a /-separated string",
            )
        region = physical.get("region")
        if region is not None and _expect(
            errors, isinstance(region, dict), lwhere, "'region' not an object"
        ):
            start = region.get("startLine")
            _expect(
                errors,
                isinstance(start, int) and start >= 1,
                lwhere,
                "'region.startLine' must be an int >= 1",
            )
            column = region.get("startColumn")
            if column is not None:
                _expect(
                    errors,
                    isinstance(column, int) and column >= 1,
                    lwhere,
                    "'region.startColumn' must be an int >= 1",
                )
    for si, suppression in enumerate(result.get("suppressions", [])):
        swhere = f"{where}.suppressions[{si}]"
        _expect(
            errors,
            isinstance(suppression, dict)
            and suppression.get("kind") in _SUPPRESSION_KINDS,
            swhere,
            f"'kind' must be one of {sorted(_SUPPRESSION_KINDS)}",
        )
    fingerprints = result.get("partialFingerprints")
    if fingerprints is not None and _expect(
        errors,
        isinstance(fingerprints, dict),
        where,
        "'partialFingerprints' must be an object",
    ):
        for key, value in fingerprints.items():
            _expect(
                errors,
                isinstance(key, str) and isinstance(value, str),
                where,
                "'partialFingerprints' entries must map strings to strings",
            )


def validate_sarif(payload: Any) -> List[str]:
    """Structural errors in a SARIF payload; empty means it conforms
    to the checked subset of the 2.1.0 schema."""
    errors: List[str] = []
    if not _expect(errors, isinstance(payload, dict), "$", "not an object"):
        return errors
    _expect(
        errors,
        payload.get("version") == SARIF_VERSION,
        "$.version",
        f"must be exactly {SARIF_VERSION!r}",
    )
    if "$schema" in payload:
        _expect(
            errors,
            isinstance(payload["$schema"], str),
            "$.$schema",
            "must be a string",
        )
    runs = payload.get("runs")
    if not _expect(errors, isinstance(runs, list), "$.runs", "must be a list"):
        return errors
    for ri, run in enumerate(runs):
        where = f"$.runs[{ri}]"
        if not _expect(errors, isinstance(run, dict), where, "not an object"):
            continue
        tool = run.get("tool")
        driver = tool.get("driver") if isinstance(tool, dict) else None
        if not _expect(
            errors,
            isinstance(driver, dict),
            where,
            "missing 'tool.driver'",
        ):
            continue
        _expect(
            errors,
            isinstance(driver.get("name"), str) and bool(driver.get("name")),
            where,
            "'tool.driver.name' must be a non-empty string",
        )
        rules = driver.get("rules", [])
        if _expect(
            errors,
            isinstance(rules, list),
            where,
            "'tool.driver.rules' must be a list",
        ):
            for qi, rule in enumerate(rules):
                _validate_rule(rule, f"{where}.rules[{qi}]", errors)
        results = run.get("results")
        if not _expect(
            errors,
            isinstance(results, list),
            where,
            "missing 'results' list",
        ):
            continue
        for ci, result in enumerate(results):
            _validate_result(
                result, len(rules), f"{where}.results[{ci}]", errors
            )
    return errors
