"""A small forward-dataflow framework over :mod:`repro.lint.cfg` graphs.

The classic worklist algorithm, monomorphised to what the flow rules
need: states are small immutable-ish values (dicts of tags, frozensets
of held resources), ``join`` merges states at control-flow merges, and
``transfer`` folds one block item at a time.  Analyses that need to
*report* (rather than just compute) run a second deterministic pass over
the blocks with the converged entry states — see
:meth:`ForwardAnalysis.observe`.

Termination is by fixpoint plus a hard iteration cap: every lattice
used here has finite height (units can only become unknown, locksets
only shrink toward the powerset bound), but the cap turns a buggy
transfer function into a loud crash instead of a hang.
"""

from __future__ import annotations

from typing import Dict, Generic, Optional, TypeVar

from repro.errors import ReproError
from repro.lint.cfg import CFG, BlockItem

__all__ = ["ForwardAnalysis", "run_forward", "DataflowDiverged"]

S = TypeVar("S")

#: Full passes over the block list before the framework gives up.
_MAX_PASSES = 200


class DataflowDiverged(ReproError):
    """A transfer/join pair failed to converge — a bug in the analysis."""


class ForwardAnalysis(Generic[S]):
    """Subclass hook bundle for one forward analysis."""

    def initial(self, cfg: CFG) -> S:
        """State on entry to the function."""
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        """Merge two predecessor states at a control-flow merge."""
        raise NotImplementedError

    def transfer(self, item: BlockItem, state: S) -> S:
        """State after executing one block item.  Must not mutate
        ``state`` — return a new value (or ``state`` itself if nothing
        changed)."""
        raise NotImplementedError

    def equals(self, left: S, right: S) -> bool:
        """Convergence test; override when ``==`` is not structural."""
        return bool(left == right)

    def observe(self, item: BlockItem, state: S) -> None:
        """Reporting hook: called once per item, in block order, with
        the converged state *before* the item executes.  Override to
        collect findings; the framework calls it via
        :func:`run_forward` after the fixpoint is reached."""


def run_forward(
    cfg: CFG, analysis: "ForwardAnalysis[S]"
) -> Dict[int, S]:
    """Run ``analysis`` to fixpoint; returns entry state per block index.

    Unreachable blocks get no entry (absent from the result) and are
    never observed.  After convergence every reachable block is replayed
    once through :meth:`ForwardAnalysis.observe` in index order, so
    reported findings come out deterministic regardless of worklist
    order.
    """
    ins: Dict[int, S] = {cfg.entry: analysis.initial(cfg)}
    outs: Dict[int, S] = {}

    for _ in range(_MAX_PASSES):
        changed = False
        for block in cfg.blocks:
            preds = [
                outs[p] for p in cfg.preds.get(block.index, []) if p in outs
            ]
            if block.index == cfg.entry:
                state: Optional[S] = ins[cfg.entry]
                for pred_state in preds:  # back edges into the entry
                    state = analysis.join(state, pred_state)
            elif preds:
                state = preds[0]
                for pred_state in preds[1:]:
                    state = analysis.join(state, pred_state)
            else:
                continue  # unreachable (so far)
            if block.index not in ins or not analysis.equals(
                ins[block.index], state
            ):
                ins[block.index] = state
                changed = True
            if block.index in ins:
                out_state = ins[block.index]
                for item in block.items:
                    out_state = analysis.transfer(item, out_state)
                if block.index not in outs or not analysis.equals(
                    outs[block.index], out_state
                ):
                    outs[block.index] = out_state
                    changed = True
        if not changed:
            break
    else:
        raise DataflowDiverged(
            f"forward analysis failed to converge on "
            f"{getattr(cfg.func, 'name', '<function>')} "
            f"after {_MAX_PASSES} passes"
        )

    for block in cfg.blocks:
        if block.index not in ins:
            continue
        state = ins[block.index]
        for item in block.items:
            analysis.observe(item, state)
            state = analysis.transfer(item, state)
    return ins
