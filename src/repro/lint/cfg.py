"""Per-function control-flow graphs for the flow-aware rules.

The per-node AST rules (PR 3) see one statement at a time; the rules
this PR adds — unit propagation through assignments, reserve/release
pairing across early returns, set iteration feeding the event queue —
need to know *what executes before what* and *which paths exist*.  This
module builds a conventional basic-block CFG per function:

* every simple statement lands in exactly one :class:`Block`;
* compound statements (``if``/``while``/``for``/``try``/``with``)
  contribute a :class:`Header` item carrying the expression evaluated at
  the branch point, then fan out into per-branch blocks;
* ``return`` and falling off the end edge into a single virtual exit
  block; ``raise`` edges there too but marks the block, so path
  analyses can distinguish normal from exceptional exits;
* ``try`` is modelled coarsely but safely: every block of the protected
  body may edge into each handler (an exception can occur anywhere),
  and ``finally`` sits on every normal path out.

The graph is deliberately intraprocedural — cross-function questions go
through :mod:`repro.lint.callgraph` — and deliberately syntactic: no
symbol table, no type inference.  That is the precision budget of a
linter that must stay fast enough to run on every commit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = ["Block", "Header", "CFG", "build_cfg", "BlockItem", "function_defs"]


@dataclass(frozen=True)
class Header:
    """The evaluated-but-not-body part of a compound statement.

    For an ``if``/``while`` this is the test expression, for a ``for``
    the iterated expression, for a ``with`` the context expressions.
    The body statements live in successor blocks, never here.
    """

    node: ast.stmt
    expr: Optional[ast.expr] = None


BlockItem = Union[ast.stmt, Header]


@dataclass
class Block:
    """A straight-line run of items with a single entry and exit set."""

    index: int
    items: List[BlockItem] = field(default_factory=list)
    #: True when the block's terminator is a ``raise`` — its edge to the
    #: exit block is exceptional, not a normal return path.
    raises: bool = False


@dataclass
class CFG:
    """Basic blocks plus the edge relation for one function body."""

    func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    blocks: List[Block]
    entry: int
    exit: int
    succs: dict[int, list[int]]
    preds: dict[int, list[int]]

    def normal_exit_preds(self) -> list[Block]:
        """Blocks that reach the exit without raising."""
        return [
            self.blocks[index]
            for index in self.preds.get(self.exit, [])
            if not self.blocks[index].raises
        ]


class _Builder:
    def __init__(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
        self.func = func
        self.blocks: List[Block] = []
        self.succs: dict[int, list[int]] = {}
        self.preds: dict[int, list[int]] = {}

    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        self.succs[block.index] = []
        self.preds[block.index] = []
        return block

    def edge(self, source: int, target: int) -> None:
        if target not in self.succs[source]:
            self.succs[source].append(target)
            self.preds[target].append(source)

    def build(self) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        self.exit_index = exit_block.index
        end = self.stmts(self.func.body, entry, loop_stack=[])
        if end is not None:
            self.edge(end.index, exit_block.index)
        return CFG(
            func=self.func,
            blocks=self.blocks,
            entry=entry.index,
            exit=exit_block.index,
            succs=self.succs,
            preds=self.preds,
        )

    # ------------------------------------------------------------------
    def stmts(
        self,
        body: list[ast.stmt],
        current: Optional[Block],
        loop_stack: list[tuple[int, int]],
    ) -> Optional[Block]:
        """Thread ``body`` through the graph; returns the fall-through
        block, or ``None`` when every path terminated (return/raise/…)."""
        for stmt in body:
            if current is None:  # unreachable code after a terminator
                current = self.new_block()
            current = self.stmt(stmt, current, loop_stack)
        return current

    def stmt(
        self,
        stmt: ast.stmt,
        current: Block,
        loop_stack: list[tuple[int, int]],
    ) -> Optional[Block]:
        if isinstance(stmt, ast.Return):
            current.items.append(stmt)
            self.edge(current.index, self.exit_index)
            return None
        if isinstance(stmt, ast.Raise):
            current.items.append(stmt)
            current.raises = True
            self.edge(current.index, self.exit_index)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            current.items.append(stmt)
            if loop_stack:
                header, after = loop_stack[-1]
                target = after if isinstance(stmt, ast.Break) else header
                self.edge(current.index, target)
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, current, loop_stack)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current, loop_stack)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            expr = stmt.items[0].context_expr if stmt.items else None
            current.items.append(Header(stmt, expr))
            return self.stmts(stmt.body, current, loop_stack)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current, loop_stack)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current, loop_stack)
        # Simple statements — including nested def/class, which bind a
        # name here and are analysed as their own functions elsewhere.
        current.items.append(stmt)
        return current

    def _if(
        self, stmt: ast.If, current: Block, loop_stack: list[tuple[int, int]]
    ) -> Optional[Block]:
        current.items.append(Header(stmt, stmt.test))
        then_entry = self.new_block()
        self.edge(current.index, then_entry.index)
        then_end = self.stmts(stmt.body, then_entry, loop_stack)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(current.index, else_entry.index)
            else_end = self.stmts(stmt.orelse, else_entry, loop_stack)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        join = self.new_block()
        for end in (then_end, else_end):
            if end is not None:
                self.edge(end.index, join.index)
        return join

    def _loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        current: Block,
        loop_stack: list[tuple[int, int]],
    ) -> Block:
        header = self.new_block()
        expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        header.items.append(Header(stmt, expr))
        self.edge(current.index, header.index)
        after = self.new_block()
        body_entry = self.new_block()
        self.edge(header.index, body_entry.index)
        body_end = self.stmts(
            stmt.body, body_entry, loop_stack + [(header.index, after.index)]
        )
        if body_end is not None:
            self.edge(body_end.index, header.index)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(header.index, else_entry.index)
            else_end = self.stmts(stmt.orelse, else_entry, loop_stack)
            if else_end is not None:
                self.edge(else_end.index, after.index)
        else:
            self.edge(header.index, after.index)
        return after

    def _try(
        self, stmt: ast.Try, current: Block, loop_stack: list[tuple[int, int]]
    ) -> Optional[Block]:
        current.items.append(Header(stmt, None))
        body_entry = self.new_block()
        self.edge(current.index, body_entry.index)
        first_body_index = body_entry.index
        body_end = self.stmts(stmt.body, body_entry, loop_stack)
        last_body_index = len(self.blocks) - 1
        if body_end is not None and stmt.orelse:
            body_end = self.stmts(stmt.orelse, body_end, loop_stack)

        ends: list[Optional[Block]] = [body_end]
        for handler in stmt.handlers:
            handler_entry = self.new_block()
            # An exception can surface from any protected block, so the
            # handler joins state from all of them (coarse but sound for
            # a may-analysis; the must-analysis only trusts normal paths).
            for index in range(first_body_index, last_body_index + 1):
                self.edge(index, handler_entry.index)
            ends.append(self.stmts(handler.body, handler_entry, loop_stack))

        live = [end for end in ends if end is not None]
        if stmt.finalbody:
            final_entry = self.new_block()
            for end in live:
                self.edge(end.index, final_entry.index)
            if not live:
                # Every path raised/returned, but finally still runs on
                # the way out; keep it reachable from the protected body.
                self.edge(first_body_index, final_entry.index)
            final_end = self.stmts(stmt.finalbody, final_entry, loop_stack)
            return final_end
        if not live:
            return None
        join = self.new_block()
        for end in live:
            self.edge(end.index, join.index)
        return join

    def _match(
        self, stmt: ast.Match, current: Block, loop_stack: list[tuple[int, int]]
    ) -> Optional[Block]:
        current.items.append(Header(stmt, stmt.subject))
        ends: list[Optional[Block]] = []
        for case in stmt.cases:
            case_entry = self.new_block()
            self.edge(current.index, case_entry.index)
            ends.append(self.stmts(case.body, case_entry, loop_stack))
        # No case may match: fall through past the whole statement.
        ends.append(current)
        live = [end for end in ends if end is not None]
        if not live:
            return None
        join = self.new_block()
        for end in live:
            self.edge(end.index, join.index)
        return join


def build_cfg(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> CFG:
    """Build the control-flow graph for one function definition."""
    return _Builder(func).build()


def function_defs(
    tree: ast.Module,
) -> list[tuple[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]]:
    """Every function in a module as ``(qualname, node)`` pairs.

    Qualnames follow ``Class.method`` / ``outer.inner`` convention so
    call-graph keys and findings read like tracebacks.
    """
    found: list[tuple[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found.append((qualname, child))
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")

    visit(tree, "")
    return found
