"""Shared per-run state handed to every checker before the pass starts.

The flow-aware rules need more than one module at a time: the
interprocedural determinism rules walk the cross-module call graph, and
future rules may want the full module list (for example to resolve a
receiver's class across files).  The runner parses everything first,
builds this context once, and calls :meth:`repro.lint.registry.Checker
.configure` with it — so per-module ``check`` passes stay stateless and
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.lint.callgraph import CallGraph
from repro.lint.source import SourceModule

__all__ = ["LintContext"]


@dataclass
class LintContext:
    """Everything a checker may consult beyond its current module."""

    modules: List[SourceModule]
    call_graph: CallGraph

    def by_package_path(self) -> Dict[str, SourceModule]:
        return {module.package_path: module for module in self.modules}
