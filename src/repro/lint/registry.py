"""The pluggable checker registry.

One checker class per rule id.  Checkers see each in-scope module through
:meth:`Checker.check` and may hold state across modules for a final
cross-module pass in :meth:`Checker.finish` (the ``metric-duplicate``
rule works that way).  Flow-aware rules additionally receive the whole
run's :class:`~repro.lint.context.LintContext` (parsed modules plus the
cross-module call graph) through :meth:`Checker.configure` before the
first ``check`` call.  Instances are single-use: the runner builds a
fresh registry per run so ``finish`` state can never leak between runs.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Iterable,
    Iterator,
    Optional,
    Type,
    Union,
)

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, Fix
from repro.lint.source import SourceModule

if TYPE_CHECKING:
    from repro.lint.context import LintContext

__all__ = [
    "Checker",
    "CheckerRegistry",
    "default_registry",
    "normalize_select",
    "register",
]


class Checker(ABC):
    """One lint rule: a rule id, a scope and an AST pass."""

    #: Stable kebab-case rule id — what findings carry, what suppression
    #: comments and ``--select`` name.
    rule_id: ClassVar[str]
    #: One-line description for ``repro lint --list-rules`` and the docs.
    description: ClassVar[str] = ""
    #: How to fix a violation; attached to every finding as its hint.
    hint: ClassVar[str] = ""
    #: Package-path prefixes this rule applies to; empty means all files.
    scope: ClassVar[tuple[str, ...]] = ()

    #: The run-wide context; set by :meth:`configure` before any check.
    context: Optional["LintContext"] = None

    def configure(self, context: "LintContext") -> None:
        """Receive the run-wide context (modules + call graph)."""
        self.context = context

    @abstractmethod
    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for one module (already scope-filtered)."""

    def finish(self) -> Iterator[Finding]:
        """Cross-module findings, after every module has been checked."""
        return iter(())

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
        fix: Optional[Fix] = None,
    ) -> Finding:
        """Build a finding anchored at an AST node of ``module``."""
        return Finding(
            path=str(module.path),
            package_path=module.package_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
            hint=self.hint if hint is None else hint,
            fix=fix,
        )


def normalize_select(
    select: Optional[Union[str, Iterable[str]]],
) -> Optional[list[str]]:
    """Canonicalise a ``--select`` value into rule ids.

    Accepts a comma-separated string or an iterable of ids; strips
    whitespace, drops empties, dedupes preserving order.  An explicitly
    provided selection that nets *zero* rules is a configuration error —
    historically it silently ran no checkers and exited 0, which read as
    a clean pass in CI.
    """
    if select is None:
        return None
    if isinstance(select, str):
        raw = select.split(",")
    else:
        raw = list(select)
    seen: dict[str, None] = {}
    for item in raw:
        rule = item.strip()
        if rule:
            seen.setdefault(rule, None)
    if not seen:
        raise ConfigurationError(
            "--select selected no rules: give comma-separated rule ids "
            "(see 'repro lint --list-rules')"
        )
    return list(seen)


class CheckerRegistry:
    """Maps rule ids to checker classes and instantiates them per run."""

    def __init__(self) -> None:
        self._checkers: dict[str, Type[Checker]] = {}

    def add(self, checker_class: Type[Checker]) -> Type[Checker]:
        rule_id = getattr(checker_class, "rule_id", None)
        if not rule_id:
            raise ConfigurationError(
                f"checker {checker_class.__name__} declares no rule_id"
            )
        if rule_id in self._checkers:
            raise ConfigurationError(f"duplicate lint rule id {rule_id!r}")
        self._checkers[rule_id] = checker_class
        return checker_class

    def rule_ids(self) -> list[str]:
        return sorted(self._checkers)

    def get(self, rule_id: str) -> Type[Checker]:
        try:
            return self._checkers[rule_id]
        except KeyError:
            known = ", ".join(self.rule_ids())
            raise ConfigurationError(
                f"unknown lint rule {rule_id!r} (known: {known})"
            ) from None

    def instantiate(
        self, select: Optional[Union[str, Iterable[str]]] = None
    ) -> list[Checker]:
        """Fresh checker instances, optionally restricted to ``select``.

        ``select`` may be a comma-separated string or an iterable of rule
        ids; unknown ids raise :class:`ConfigurationError`, as does a
        selection that nets no rules at all.
        """
        chosen = normalize_select(select)
        if chosen is None:
            chosen = self.rule_ids()
        return [self.get(rule)() for rule in chosen]

    def describe(self) -> list[tuple[str, str, tuple[str, ...]]]:
        """(rule id, description, scope) rows for ``--list-rules``."""
        return [
            (rule, checker.description, checker.scope)
            for rule, checker in sorted(self._checkers.items())
        ]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._checkers

    def __len__(self) -> int:
        return len(self._checkers)


#: The process-wide registry the ``@register`` decorator populates.
_DEFAULT = CheckerRegistry()


def register(checker_class: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the default registry."""
    return _DEFAULT.add(checker_class)


def default_registry() -> CheckerRegistry:
    """The registry holding every built-in rule.

    Importing :mod:`repro.lint.checkers` (done lazily here) registers
    the built-ins; plugins can call :func:`register` themselves.
    """
    import repro.lint.checkers  # noqa: F401  (import populates _DEFAULT)

    return _DEFAULT


#: Convenience alias so checkers can type progress callbacks uniformly.
ProgressCallback = Callable[[SourceModule], None]
