"""Dataclass invariants: no mutable defaults, frozen where shared.

``dataclass-mutable-default`` rejects field defaults that alias one
mutable object across every instance (including ``field(default=...)``
smuggling).  ``dataclass-frozen-shared`` finds dataclasses that are
value-like — every field annotation immutable, no method ever assigns to
``self`` — but not declared ``frozen=True``; those are the ones that get
hashed, cached and shipped across process boundaries, where aliasing
bugs are quietest.  ``mutable-default-arg`` is the general function-level
companion.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = [
    "DataclassMutableDefaultChecker",
    "DataclassFrozenSharedChecker",
    "MutableDefaultArgChecker",
]

#: Constructors whose results are mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
)

#: Annotation heads considered immutable (value types).
_IMMUTABLE_NAMES = frozenset(
    {
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "complex",
        "None",
        "frozenset",
        # repro.units NewType wrappers are floats/ints underneath.
        "Watts",
        "Joules",
        "Hz",
        "Ghz",
        "DvfsLevel",
        "SimTime",
    }
)

#: Generic heads that are immutable when their arguments are.
_IMMUTABLE_GENERICS = frozenset(
    {"tuple", "Tuple", "frozenset", "FrozenSet", "Optional", "Union", "Literal", "Final"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    """Whether a default expression aliases a mutable object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    """The ``@dataclass`` decorator node of a class, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _annotation_immutable(node: Optional[ast.expr]) -> bool:
    """Conservative: unknown annotations count as mutable."""
    if node is None:
        return False
    if isinstance(node, ast.Constant):
        return node.value is None or node.value is Ellipsis
    if isinstance(node, ast.Name):
        return node.id in _IMMUTABLE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _IMMUTABLE_NAMES or node.attr in _IMMUTABLE_GENERICS
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = (
            head.id
            if isinstance(head, ast.Name)
            else head.attr
            if isinstance(head, ast.Attribute)
            else None
        )
        if head_name not in _IMMUTABLE_GENERICS:
            return False
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_annotation_immutable(element) for element in elements)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_immutable(node.left) and _annotation_immutable(
            node.right
        )
    return False


def _attribute_stores(tree: ast.Module) -> set[str]:
    """Attribute names assigned anywhere in a module (``x.attr = ...``)."""
    stored: set[str] = set()
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                stored.add(target.attr)
    return stored


def _mutates_self(node: ast.ClassDef) -> bool:
    """Whether any method assigns to ``self.<attr>`` (or setattr on self)."""
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for statement in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                targets = [statement.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
            if (
                isinstance(statement, ast.Call)
                and isinstance(statement.func, ast.Attribute)
                and statement.func.attr == "__setattr__"
            ):
                return True
    return False


@register
class DataclassMutableDefaultChecker(Checker):
    """Reject dataclass field defaults that alias a mutable object."""

    rule_id = "dataclass-mutable-default"
    description = (
        "dataclass fields must not default to a shared mutable object; "
        "use field(default_factory=...)"
    )
    hint = "use field(default_factory=list) (or dict/set) instead"
    scope = ()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _dataclass_decorator(node) is None:
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                default = statement.value
                if default is None:
                    continue
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        statement,
                        "dataclass field defaults to a mutable object "
                        "shared across instances",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id == "field"
                ):
                    for keyword in default.keywords:
                        if keyword.arg == "default" and _is_mutable_default(
                            keyword.value
                        ):
                            yield self.finding(
                                module,
                                statement,
                                "field(default=...) smuggles a shared "
                                "mutable default",
                            )


@register
class DataclassFrozenSharedChecker(Checker):
    """Value-like dataclasses must declare ``frozen=True``.

    Cross-module: a candidate (all fields immutable, its own methods
    never assign to ``self``) is only reported if no scanned module
    assigns to an attribute with one of its field names — anyone doing
    ``record.start_time = now`` elsewhere proves the class is a mutable
    record, not a shared value.
    """

    rule_id = "dataclass-frozen-shared"
    description = (
        "a dataclass with only immutable fields that nothing mutates is "
        "a shared value type and must be frozen"
    )
    hint = "declare @dataclass(frozen=True)"
    scope = ()

    def __init__(self) -> None:
        #: (finding, field names) per candidate class.
        self._candidates: list[tuple[Finding, frozenset[str]]] = []
        #: Attribute names assigned anywhere in the scanned tree.
        self._stored_attrs: set[str] = set()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        self._stored_attrs.update(_attribute_stores(module.tree))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None or _is_frozen(decorator):
                continue
            fields = [
                statement
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
            ]
            if not fields:
                continue
            if not all(
                _annotation_immutable(statement.annotation)
                for statement in fields
            ):
                continue
            if _mutates_self(node):
                continue
            names = frozenset(
                statement.target.id
                for statement in fields
                if isinstance(statement.target, ast.Name)
            )
            self._candidates.append(
                (
                    self.finding(
                        module,
                        node,
                        f"dataclass {node.name} is value-like (immutable "
                        f"fields, never mutated) but not frozen",
                    ),
                    names,
                )
            )
        return iter(())

    def finish(self) -> Iterator[Finding]:
        for finding, names in self._candidates:
            if not names & self._stored_attrs:
                yield finding


@register
class MutableDefaultArgChecker(Checker):
    """Reject mutable default arguments on any function."""

    rule_id = "mutable-default-arg"
    description = "no mutable default arguments (list/dict/set literals or calls)"
    hint = "default to None and create the container inside the function"
    scope = ()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default,
                        f"function {node.name!r} has a mutable default "
                        f"argument shared across calls",
                    )
