"""Float-equality rule: no ``==``/``!=`` on power/latency expressions.

Computed floats (a watt total after recycling, a windowed latency mean)
are never bitwise-reproducible; exact comparison is how tolerance bugs
hide until a rare load mix trips them.  The approved idioms live in
:mod:`repro.units`: ``approx_eq`` for tolerance comparison and
``exactly`` for intentional sentinel checks on *assigned* values.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import unit_of_identifier
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["FloatEqualityChecker"]


def _float_like(node: ast.expr) -> bool:
    """Whether an expression is confidently floating-point valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return unit_of_identifier(node.id) is not None
    if isinstance(node, ast.Attribute):
        return unit_of_identifier(node.attr) is not None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _float_like(node.operand)
    if isinstance(node, ast.BinOp):
        return _float_like(node.left) or _float_like(node.right)
    return False


@register
class FloatEqualityChecker(Checker):
    """Flag exact equality on float-valued expressions."""

    rule_id = "float-equality"
    description = (
        "no ==/!= on float-valued power/latency expressions; use "
        "repro.units.approx_eq or repro.units.exactly"
    )
    hint = (
        "use repro.units.approx_eq(a, b, tol) for computed values or "
        "repro.units.exactly(a, sentinel) for assigned sentinels"
    )
    scope = ()  # float discipline holds everywhere

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _float_like(left) or _float_like(right):
                    yield self.finding(
                        module,
                        node,
                        "exact float equality on a power/latency expression",
                    )
                    break
