"""Float-equality rule: no ``==``/``!=`` on power/latency expressions.

Computed floats (a watt total after recycling, a windowed latency mean)
are never bitwise-reproducible; exact comparison is how tolerance bugs
hide until a rare load mix trips them.  The approved idioms live in
:mod:`repro.units`: ``approx_eq`` for tolerance comparison and
``exactly`` for intentional sentinel checks on *assigned* values.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.asthelpers import unit_of_identifier
from repro.lint.findings import Finding, Fix, TextEdit
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["FloatEqualityChecker"]


def _imports_approx_eq(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "repro.units":
            if any(alias.name == "approx_eq" for alias in node.names):
                return True
    return False


def _import_insertion_line(tree: ast.Module) -> int:
    """First line after the last top-level import (1-based)."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = max(last, getattr(node, "end_lineno", node.lineno))
    return last + 1


def _approx_eq_fix(
    module: SourceModule, node: ast.Compare
) -> Optional[Fix]:
    """Rewrite a single-op ``a == b`` / ``a != b`` to ``approx_eq``."""
    if len(node.ops) != 1 or len(node.comparators) != 1:
        return None
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    left = ast.get_source_segment(module.text, node.left)
    right = ast.get_source_segment(module.text, node.comparators[0])
    if left is None or right is None:
        return None
    call = f"approx_eq({left}, {right})"
    if isinstance(node.ops[0], ast.NotEq):
        call = f"not {call}"
    edits = [
        TextEdit(
            line=node.lineno,
            col=node.col_offset,
            end_line=end_line,
            end_col=end_col,
            replacement=call,
        )
    ]
    if not _imports_approx_eq(module.tree):
        insert_at = _import_insertion_line(module.tree)
        edits.append(
            TextEdit(
                line=insert_at,
                col=0,
                end_line=insert_at,
                end_col=0,
                replacement="from repro.units import approx_eq\n",
            )
        )
    return Fix(
        description="compare with repro.units.approx_eq",
        edits=tuple(edits),
    )


def _float_like(node: ast.expr) -> bool:
    """Whether an expression is confidently floating-point valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return unit_of_identifier(node.id) is not None
    if isinstance(node, ast.Attribute):
        return unit_of_identifier(node.attr) is not None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _float_like(node.operand)
    if isinstance(node, ast.BinOp):
        return _float_like(node.left) or _float_like(node.right)
    return False


@register
class FloatEqualityChecker(Checker):
    """Flag exact equality on float-valued expressions."""

    rule_id = "float-equality"
    description = (
        "no ==/!= on float-valued power/latency expressions; use "
        "repro.units.approx_eq or repro.units.exactly"
    )
    hint = (
        "use repro.units.approx_eq(a, b, tol) for computed values or "
        "repro.units.exactly(a, sentinel) for assigned sentinels"
    )
    scope = ()  # float discipline holds everywhere

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _float_like(left) or _float_like(right):
                    yield self.finding(
                        module,
                        node,
                        "exact float equality on a power/latency expression",
                        fix=_approx_eq_fix(module, node),
                    )
                    break
