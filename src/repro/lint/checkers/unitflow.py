"""Unit-flow rule: units propagate through assignments and returns.

The per-node ``unit-mismatch`` rule (PR 3) only fires when *both*
operands of a ``+``/``-``/comparison wear their unit on their sleeve
(a ``_watts`` suffix, a ``Watts(...)`` constructor).  The moment a value
passes through a plainly-named local —

.. code-block:: python

    headroom = budget_watts - draw_watts   # headroom is W, invisibly
    if headroom < deadline_s:              # W vs s: nothing fired

— the NewType erases and the mix goes unchecked.  This rule runs a
forward dataflow over the function's CFG, tagging locals with the unit
of whatever was assigned to them (including the W·s→J / J÷s→W algebra
for ``*`` and ``/``), and flags:

* ``+``/``-``/ordering between quantities whose *flowed* units disagree
  (at least one side's unit must have arrived via propagation — direct
  suffix-vs-suffix mixes stay ``unit-mismatch``'s);
* assignments into a unit-suffixed name (``total_watts = elapsed_s``)
  whose right-hand side carries a different unit;
* ``return`` of the wrong unit from a function whose annotation
  (``-> Watts``) or name suffix pins the expected unit.

The analysis is deliberately conservative: a variable whose unit is
ambiguous at a merge point simply becomes unknown, and unknown never
fires.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.asthelpers import unit_of_identifier
from repro.lint.cfg import Header, build_cfg, function_defs
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["UnitFlowChecker"]

#: NewType constructors from repro.units, mapped to the unit they tag.
_UNIT_CONSTRUCTORS = {
    "Watts": "W",
    "Joules": "J",
    "Hz": "Hz",
    "Ghz": "GHz",
    "SimTime": "s",
}

#: Multiplication algebra: (left, right) -> product unit.  Pairs not
#: listed produce an unknown unit (never a finding).
_MUL_ALGEBRA: Dict[Tuple[str, str], Optional[str]] = {
    ("W", "s"): "J",
    ("s", "W"): "J",
}

#: Division algebra: (numerator, denominator) -> quotient unit.
_DIV_ALGEBRA: Dict[Tuple[str, str], Optional[str]] = {
    ("J", "s"): "W",
    ("J", "W"): "s",
    ("W", "W"): None,  # ratio: dimensionless
    ("s", "s"): None,
    ("J", "J"): None,
    ("GHz", "GHz"): None,
    ("Hz", "Hz"): None,
}

_MIX_BINOPS = (ast.Add, ast.Sub)
_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _annotation_unit(annotation: Optional[ast.expr]) -> Optional[str]:
    """Unit pinned by a ``Watts`` / ``repro.units.Watts`` annotation."""
    if annotation is None:
        return None
    name: Optional[str] = None
    if isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Attribute):
        name = annotation.attr
    elif isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name = annotation.value.strip().rpartition(".")[2]
    if name is None:
        return None
    return _UNIT_CONSTRUCTORS.get(name)


class _Units:
    """(unit tag, arrived-via-propagation?) of one expression."""

    __slots__ = ()

    @staticmethod
    def of(
        expr: ast.expr, env: Dict[str, str]
    ) -> Tuple[Optional[str], bool]:
        if isinstance(expr, ast.UnaryOp) and isinstance(
            expr.op, (ast.UAdd, ast.USub)
        ):
            return _Units.of(expr.operand, env)
        if isinstance(expr, ast.Name):
            direct = unit_of_identifier(expr.id)
            if direct is not None:
                return direct, False
            flowed = env.get(expr.id)
            return (flowed, True) if flowed is not None else (None, False)
        if isinstance(expr, ast.Attribute):
            return unit_of_identifier(expr.attr), False
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name):
                tagged = _UNIT_CONSTRUCTORS.get(expr.func.id)
                if tagged is not None:
                    return tagged, False
                return unit_of_identifier(expr.func.id), False
            if isinstance(expr.func, ast.Attribute):
                return unit_of_identifier(expr.func.attr), False
            return None, False
        if isinstance(expr, ast.BinOp):
            left, left_prop = _Units.of(expr.left, env)
            right, right_prop = _Units.of(expr.right, env)
            propagated = left_prop or right_prop
            if left is None or right is None:
                if isinstance(expr.op, _MIX_BINOPS) and (left or right):
                    # unit + unknown: assume the unit survives (x + 1.0)
                    return left or right, propagated
                return None, False
            if isinstance(expr.op, _MIX_BINOPS):
                return (left, propagated) if left == right else (None, False)
            if isinstance(expr.op, ast.Mult):
                return _MUL_ALGEBRA.get((left, right)), propagated
            if isinstance(expr.op, ast.Div):
                return _DIV_ALGEBRA.get((left, right)), propagated
            return None, False
        if isinstance(expr, ast.IfExp):
            then, then_prop = _Units.of(expr.body, env)
            other, other_prop = _Units.of(expr.orelse, env)
            if then is not None and then == other:
                return then, then_prop or other_prop
            return None, False
        return None, False


class _UnitFlow(ForwardAnalysis[Dict[str, str]]):
    """env: local name -> unit tag; absence means unknown."""

    def __init__(self, checker: "UnitFlowChecker", module: SourceModule, func):
        self.checker = checker
        self.module = module
        self.func = func
        self.findings: list[Finding] = []
        self.return_unit = _annotation_unit(func.returns) or unit_of_identifier(
            func.name
        )

    # -- framework hooks ----------------------------------------------
    def initial(self, cfg) -> Dict[str, str]:
        env: Dict[str, str] = {}
        args = cfg.func.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            unit = _annotation_unit(arg.annotation)
            if unit is not None:
                env[arg.arg] = unit
        return env

    def join(self, left: Dict[str, str], right: Dict[str, str]) -> Dict[str, str]:
        return {
            name: unit
            for name, unit in left.items()
            if right.get(name) == unit
        }

    def transfer(self, item, state: Dict[str, str]) -> Dict[str, str]:
        if isinstance(item, Header):
            node = item.node
            if isinstance(node, (ast.For, ast.AsyncFor)):
                return self._clear_targets(node.target, state)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                new = state
                for with_item in node.items:
                    if with_item.optional_vars is not None:
                        new = self._clear_targets(with_item.optional_vars, new)
                return new
            return state
        if isinstance(item, ast.Assign):
            unit, _ = _Units.of(item.value, state)
            new = dict(state)
            for target in item.targets:
                new = self._bind(target, unit, new)
            return new
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            unit = _annotation_unit(item.annotation)
            if unit is None and item.value is not None:
                unit, _ = _Units.of(item.value, state)
            return self._bind(item.target, unit, dict(state))
        if isinstance(item, ast.AugAssign):
            return state  # unit unchanged when consistent; checked in observe
        return state

    def observe(self, item, state: Dict[str, str]) -> None:
        if isinstance(item, Header):
            if item.expr is not None:
                self._scan(item.expr, state)
            return
        if isinstance(item, ast.Return):
            if item.value is not None:
                self._scan(item.value, state)
                self._check_return(item, state)
            return
        if isinstance(item, ast.Assign):
            self._scan(item.value, state)
            self._check_assign(item, state)
            return
        if isinstance(item, ast.AnnAssign):
            if item.value is not None:
                self._scan(item.value, state)
            return
        if isinstance(item, ast.AugAssign):
            self._scan(item.value, state)
            self._check_augassign(item, state)
            return
        if isinstance(item, ast.stmt):
            for child in ast.iter_child_nodes(item):
                if isinstance(child, ast.expr):
                    self._scan(child, state)

    # -- helpers -------------------------------------------------------
    def _bind(
        self, target: ast.expr, unit: Optional[str], env: Dict[str, str]
    ) -> Dict[str, str]:
        if isinstance(target, ast.Name):
            if unit is None:
                env.pop(target.id, None)
            else:
                env[target.id] = unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                env = self._bind(element, None, env)
        return env

    def _clear_targets(
        self, target: ast.expr, env: Dict[str, str]
    ) -> Dict[str, str]:
        new = dict(env)
        return self._bind(target, None, new)

    def _scan(self, expr: ast.expr, env: Dict[str, str]) -> None:
        """Flag mixed-unit +/-/ordering inside ``expr`` (recursively)."""
        for node in ast.walk(expr):
            if isinstance(node, _SKIP_NESTED):
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op, _MIX_BINOPS):
                self._judge(node, node.left, node.right, env)
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], _ORDER_OPS):
                    self._judge(node, node.left, node.comparators[0], env)

    def _judge(
        self,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
        env: Dict[str, str],
    ) -> None:
        left_unit, left_prop = _Units.of(left, env)
        right_unit, right_prop = _Units.of(right, env)
        if left_unit is None or right_unit is None:
            return
        if left_unit == right_unit:
            return
        if not (left_prop or right_prop):
            return  # both syntactically visible: unit-mismatch territory
        self.findings.append(
            self.checker.finding(
                self.module,
                node,
                f"flowed units disagree: left operand is {left_unit}, "
                f"right operand is {right_unit} "
                f"(in {self.func.name}())",
            )
        )

    def _check_assign(self, item: ast.Assign, env: Dict[str, str]) -> None:
        value_unit, _ = _Units.of(item.value, env)
        if value_unit is None:
            return
        for target in item.targets:
            target_unit = None
            if isinstance(target, ast.Name):
                target_unit = unit_of_identifier(target.id)
            elif isinstance(target, ast.Attribute):
                target_unit = unit_of_identifier(target.attr)
            if target_unit is not None and target_unit != value_unit:
                self.findings.append(
                    self.checker.finding(
                        self.module,
                        item,
                        f"assignment unit mismatch: target is "
                        f"{target_unit} but the value flows {value_unit}",
                    )
                )

    def _check_augassign(self, item: ast.AugAssign, env: Dict[str, str]) -> None:
        if not isinstance(item.op, _MIX_BINOPS):
            return
        target_unit = None
        if isinstance(item.target, ast.Name):
            direct = unit_of_identifier(item.target.id)
            target_unit = direct or env.get(item.target.id)
        elif isinstance(item.target, ast.Attribute):
            target_unit = unit_of_identifier(item.target.attr)
        value_unit, _ = _Units.of(item.value, env)
        if (
            target_unit is not None
            and value_unit is not None
            and target_unit != value_unit
        ):
            self.findings.append(
                self.checker.finding(
                    self.module,
                    item,
                    f"augmented assignment mixes units: target is "
                    f"{target_unit}, value flows {value_unit}",
                )
            )

    def _check_return(self, item: ast.Return, env: Dict[str, str]) -> None:
        if self.return_unit is None or item.value is None:
            return
        value_unit, _ = _Units.of(item.value, env)
        if value_unit is not None and value_unit != self.return_unit:
            self.findings.append(
                self.checker.finding(
                    self.module,
                    item,
                    f"{self.func.name}() is declared to return "
                    f"{self.return_unit} but this path returns "
                    f"{value_unit}",
                )
            )


@register
class UnitFlowChecker(Checker):
    """Propagate unit tags through local dataflow and flag mixes."""

    rule_id = "unit-flow"
    description = (
        "units propagate through assignments: a local bound to watts "
        "must not later be added to, compared with, assigned into or "
        "returned as seconds/hertz/joules"
    )
    hint = (
        "convert explicitly at the boundary (see repro.units) or rename "
        "the local with its real unit suffix"
    )
    scope = ()  # unit discipline holds everywhere

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for _, func in function_defs(module.tree):
            analysis = _UnitFlow(self, module, func)
            run_forward(build_cfg(func), analysis)
            yield from analysis.findings
