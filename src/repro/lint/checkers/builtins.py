"""Shadowed-builtin rule.

Rebinding ``id``, ``list`` or ``filter`` inside simulation code is a
classic source of confusing tracebacks three calls later; the rule flags
parameter names and local/global assignments that shadow a curated set
of builtins actually used across this codebase.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["ShadowBuiltinChecker"]

_SHADOWED = frozenset(
    {
        "abs",
        "all",
        "any",
        "bin",
        "bool",
        "bytes",
        "dict",
        "dir",
        "filter",
        "float",
        "format",
        "frozenset",
        "hash",
        "help",
        "hex",
        "id",
        "input",
        "int",
        "iter",
        "len",
        "list",
        "map",
        "max",
        "min",
        "next",
        "object",
        "oct",
        "open",
        "print",
        "range",
        "repr",
        "round",
        "set",
        "sorted",
        "str",
        "sum",
        "tuple",
        "type",
        "vars",
        "zip",
    }
)


def _binding_names(
    node: ast.AST, method_names: frozenset[int]
) -> Iterator[tuple[str, ast.AST]]:
    """(name, anchor node) for every name this statement binds.

    Method names are exempt (``Gauge.set``, ``Filter.filter`` live in
    attribute namespace and shadow nothing), but their *parameters* are
    still real bindings and are checked.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = node.args
        for argument in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
            *(filter(None, (arguments.vararg, arguments.kwarg))),
        ):
            if argument.arg not in ("self", "cls"):
                yield argument.arg, argument
        if id(node) not in method_names:
            yield node.name, node
    elif isinstance(node, ast.ClassDef):
        yield node.name, node
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _target_names(target)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        yield from _target_names(node.target)
    elif isinstance(node, ast.For):
        yield from _target_names(node.target)
    elif isinstance(node, (ast.withitem,)):
        if node.optional_vars is not None:
            yield from _target_names(node.optional_vars)
    elif isinstance(node, ast.comprehension):
        yield from _target_names(node.target)


def _target_names(target: ast.expr) -> Iterator[tuple[str, ast.AST]]:
    if isinstance(target, ast.Name):
        yield target.id, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


@register
class ShadowBuiltinChecker(Checker):
    """Flag bindings that shadow commonly used builtins."""

    rule_id = "shadow-builtin"
    description = "no parameter or assignment may shadow a common builtin"
    hint = "rename the binding (id -> iid, filter -> predicate, ...)"
    scope = ()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        # Class-body bindings (methods, fields) live in attribute
        # namespace and shadow nothing; only their parameters count.
        class_body = frozenset(
            id(statement)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
            for statement in node.body
        )
        for node in ast.walk(module.tree):
            if id(node) in class_body and not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for name, anchor in _binding_names(node, class_body):
                if name in _SHADOWED:
                    yield self.finding(
                        module,
                        anchor,
                        f"binding {name!r} shadows the builtin of the same "
                        f"name",
                    )
