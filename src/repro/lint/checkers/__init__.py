"""Built-in checkers.  Importing this package registers every rule."""

from repro.lint.checkers import (  # noqa: F401  (imports register rules)
    builtins,
    dataclasses,
    determinism,
    floatcmp,
    flowdeterminism,
    metrics,
    pairing,
    picklability,
    purity,
    scenario,
    unitflow,
    units,
)

__all__ = [
    "builtins",
    "dataclasses",
    "determinism",
    "floatcmp",
    "flowdeterminism",
    "metrics",
    "pairing",
    "picklability",
    "purity",
    "scenario",
    "unitflow",
    "units",
]
