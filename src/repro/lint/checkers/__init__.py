"""Built-in checkers.  Importing this package registers every rule."""

from repro.lint.checkers import (  # noqa: F401  (imports register rules)
    builtins,
    dataclasses,
    determinism,
    floatcmp,
    metrics,
    picklability,
    scenario,
    units,
)

__all__ = [
    "builtins",
    "dataclasses",
    "determinism",
    "floatcmp",
    "metrics",
    "picklability",
    "scenario",
    "units",
]
