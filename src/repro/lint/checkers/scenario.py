"""Scenario-assembly rule: stacks are built in one place.

Since the scenario refactor, :mod:`repro.scenario.builder` is the only
module allowed to assemble an experiment stack — construct a
:class:`~repro.cluster.machine.Machine`, wrap it in a
:class:`~repro.cluster.budget.PowerBudget` and attach a
:class:`~repro.service.command_center.CommandCenter`.  Any other call
site doing that bypasses the staged lifecycle (arm/start/drain ordering,
observability attachment, chaos installation) and the canonical digest
the result cache keys on.  Tests are exempt: they construct partial
stacks on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import import_origins, resolve_call_target
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["ScenarioBypassChecker"]

#: Class names whose direct construction means "assembling a stack".
_STACK_CLASSES = frozenset({"Machine", "PowerBudget", "CommandCenter"})

#: package_path prefixes where direct construction is the point.
_EXEMPT_PREFIXES = ("scenario/", "tests/")


def _is_exempt(module: SourceModule) -> bool:
    if module.package_path.startswith(_EXEMPT_PREFIXES):
        return True
    # Test trees scanned from outside the package root (``repro lint
    # tests``) carry paths like ``tests/core/test_x.py`` or are rooted
    # at a ``tests`` directory elsewhere in the repo.
    return "tests" in module.path.parts


@register
class ScenarioBypassChecker(Checker):
    """Forbid direct stack assembly outside the scenario layer."""

    rule_id = "scenario-bypass"
    description = (
        "no direct Machine/PowerBudget/CommandCenter construction outside "
        "src/repro/scenario/ and tests/ — stacks come from StackBuilder"
    )
    hint = (
        "describe the run as a ScenarioSpec and let "
        "repro.scenario.StackBuilder assemble the stack"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if _is_exempt(module):
            return
        origins = import_origins(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, origins)
            if target is None:
                continue
            head, _, last = target.rpartition(".")
            if last not in _STACK_CLASSES:
                continue
            # Only flag our classes: a bare local name (imported or
            # defined here) or anything rooted in the repro package.
            # ``somelib.Machine(...)`` is someone else's Machine.
            if head and not target.startswith("repro"):
                continue
            yield self.finding(
                module,
                node,
                f"direct {last}() construction bypasses the scenario "
                f"layer's staged assembly",
            )
