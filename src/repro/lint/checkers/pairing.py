"""Resource-pairing rule: every acquire has a release on every path.

PowerChief's accounting is a conservation law: wattage a
:class:`~repro.cluster.budget.PowerBudget` ``reserve``\\ s must come back
via ``release`` or the controller permanently loses headroom — exactly
the leak class PR 4 fixed by hand in the health monitor.  The same
protocol shape guards the observability attachments
(``attach``/``detach``) and the staged builder lifecycle
(``arm``/``collect``).

This rule is a lockset-style path analysis over the function CFG.  A
path state maps each locally-touched resource — identified by its
receiver expression and acquire method, e.g. ``('self.budget',
'reserve')`` — to ``held`` or ``released``.  At every *normal* exit
(returns and fall-through; raise paths are exempt, ``try/finally`` is
modelled) the states are compared:

* some path released a resource while another still holds it → the
  classic early-return leak, flagged at the acquire site;
* a resource acquired on a *local* receiver that never escapes the
  function (not returned, stored, or passed on) and is never released
  on any path → flagged as a guaranteed leak.

Cross-method protocols (reserve in ``_on_crash``, release in a later
tick) are deliberately not flagged: a function with no matching release
at all on a ``self.``-rooted receiver is assumed to be one side of such
a protocol.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.asthelpers import dotted_name
from repro.lint.cfg import CFG, Header, build_cfg, function_defs
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["ResourcePairingChecker"]

#: acquire method -> release method.
_PAIRS = {
    "reserve": "release",
    "attach": "detach",
    "arm": "collect",
    "acquire": "release",
}
#: release method -> every acquire kind it closes ("release" closes
#: both "reserve" and "acquire").
_RELEASES: Dict[str, Tuple[str, ...]] = {}
for _acquire, _release in _PAIRS.items():
    _RELEASES[_release] = _RELEASES.get(_release, ()) + (_acquire,)

#: Finalizer methods release *every* resource held on their receiver —
#: ``exporter.close()`` detaches internally, ``builder.stop()`` collects.
_FINALIZERS = frozenset({"close", "stop", "shutdown", "teardown"})
for _finalizer in _FINALIZERS:
    _RELEASES.setdefault(_finalizer, tuple(_PAIRS))

_HELD = "held"
_RELEASED = "released"

#: Path state: resource -> held/released.  Dataflow state: the *set* of
#: distinct path states reaching a point (exact path-sensitivity; the
#: resource count per function is tiny, so the powerset stays tiny).
_PathState = Tuple[Tuple[Tuple[str, str], str], ...]
_State = FrozenSet[_PathState]

_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _resource_calls(
    item: ast.AST,
) -> List[Tuple[ast.Call, str, Tuple[str, str]]]:
    """(call node, 'acquire'|'release', resource key) inside one item."""
    found: List[Tuple[ast.Call, str, Tuple[str, str]]] = []
    expr = item.expr if isinstance(item, Header) else item
    if expr is None:
        return found

    def visit(node: ast.AST) -> None:
        if isinstance(node, _SKIP_NESTED):
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = dotted_name(node.func.value)
            if receiver is not None:
                if method in _PAIRS:
                    found.append((node, "acquire", (receiver, method)))
                elif method in _RELEASES:
                    for acquire in _RELEASES[method]:
                        found.append(
                            (node, "release", (receiver, acquire))
                        )
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(expr)
    return found


class _Locksets(ForwardAnalysis[_State]):
    def initial(self, cfg: CFG) -> _State:
        return frozenset({()})

    def join(self, left: _State, right: _State) -> _State:
        return left | right

    def transfer(self, item, state: _State) -> _State:
        calls = _resource_calls(item)
        if not calls:
            return state
        new_paths = set()
        for path in state:
            mapping = dict(path)
            for _, kind, resource in calls:
                if kind == "acquire":
                    mapping[resource] = _HELD
                elif resource in mapping:
                    mapping[resource] = _RELEASED
                else:
                    # Release without a seen acquire: the other half of a
                    # cross-method protocol; mark released so a later
                    # re-acquire on this path reads as held again.
                    mapping[resource] = _RELEASED
            new_paths.add(tuple(sorted(mapping.items())))
        return frozenset(new_paths)


def _local_names(func: ast.FunctionDef) -> set:
    args = func.args
    params = {
        a.arg
        for a in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        )
    }
    assigned = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                assigned.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for with_item in node.items:
                if isinstance(with_item.optional_vars, ast.Name):
                    assigned.add(with_item.optional_vars.id)
    return (assigned - params) | set()


def _escapes(func: ast.FunctionDef, name: str) -> bool:
    """Whether local ``name`` leaves the function some way other than a
    paired release — returned, yielded, stored, passed to a call, or
    captured by a nested function/lambda (a closure may release it)."""
    for node in ast.walk(func):
        if isinstance(node, _SKIP_NESTED) and node is not func:
            if any(
                isinstance(inner, ast.Name) and inner.id == name
                for inner in ast.walk(node)
            ):
                return True
            continue
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and name in {
                n.id for n in ast.walk(value) if isinstance(n, ast.Name)
            }:
                return True
        elif isinstance(node, ast.Call):
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(arg)
                ):
                    return True
        elif isinstance(node, ast.Assign):
            stores_elsewhere = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
            uses_name = any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(node.value)
            )
            if stores_elsewhere and uses_name:
                return True
            if uses_name and any(
                isinstance(t, (ast.Tuple, ast.List)) for t in node.targets
            ):
                return True
            if any(
                isinstance(n, (ast.List, ast.Tuple, ast.Dict, ast.Set))
                and name
                in {
                    m.id for m in ast.walk(n) if isinstance(m, ast.Name)
                }
                for n in [node.value]
            ):
                return True
    return False


@register
class ResourcePairingChecker(Checker):
    """Path-sensitive acquire/release pairing."""

    rule_id = "resource-pairing"
    description = (
        "reserve/release, attach/detach and arm/collect must pair on "
        "every path: an early return between acquire and release leaks "
        "the resource on that path"
    )
    hint = (
        "release in a finally block (or before every return); if the "
        "imbalance is intentional cross-method state, suppress with a "
        "reason comment"
    )
    scope = ()  # conservation holds everywhere

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for _, func in function_defs(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: SourceModule, func
    ) -> Iterator[Finding]:
        acquire_sites: Dict[Tuple[str, str], List[ast.Call]] = {}
        has_release: Dict[Tuple[str, str], bool] = {}

        def scan(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SKIP_NESTED):
                    continue
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    method = child.func.attr
                    receiver = dotted_name(child.func.value)
                    if receiver is not None:
                        if method in _PAIRS:
                            acquire_sites.setdefault(
                                (receiver, method), []
                            ).append(child)
                        elif method in _RELEASES:
                            for acquire in _RELEASES[method]:
                                has_release[(receiver, acquire)] = True
                scan(child)

        scan(func)
        if not acquire_sites:
            return

        cfg = build_cfg(func)
        analysis = _Locksets()
        ins = run_forward(cfg, analysis)
        exit_states: List[Dict[Tuple[str, str], str]] = []
        for block in cfg.normal_exit_preds():
            if block.index not in ins:
                continue
            state = ins[block.index]
            for item in block.items:
                state = analysis.transfer(item, state)
            exit_states.extend(dict(path) for path in state)
        if not exit_states:
            return

        locals_in_func = _local_names(func)
        for resource, sites in sorted(
            acquire_sites.items(), key=lambda kv: kv[1][0].lineno
        ):
            receiver, method = resource
            statuses = {state.get(resource) for state in exit_states}
            release_method = _PAIRS[method]
            if _HELD in statuses and _RELEASED in statuses:
                yield self.finding(
                    module,
                    sites[0],
                    f"{receiver}.{method}() is matched by "
                    f"{release_method}() on some paths out of "
                    f"{func.name}() but still held on others — the "
                    f"unmatched path leaks the resource",
                )
                continue
            root = receiver.partition(".")[0]
            if (
                _HELD in statuses
                and not has_release.get(resource)
                and root in locals_in_func
                and not _escapes(func, root)
            ):
                yield self.finding(
                    module,
                    sites[0],
                    f"{receiver}.{method}() is never "
                    f"{release_method}()d on any path out of "
                    f"{func.name}(), and {root} does not escape the "
                    f"function",
                )
