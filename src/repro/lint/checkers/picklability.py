"""Parallel-engine safety: work crossing the process boundary must pickle.

:func:`repro.experiments.parallel.run_cells` and ``fan_out`` ship
callables and :class:`CellSpec` payloads through
:class:`~concurrent.futures.ProcessPoolExecutor`.  Lambdas and closures
do not pickle — the failure surfaces only on the ``--workers > 1`` path,
which the serial test suite never exercises — so they are rejected
statically at every fan-out call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["PickleFanoutChecker"]

#: Call names whose arguments cross a process boundary.
_FANOUT_NAMES = frozenset({"fan_out", "run_cells"})
_FANOUT_METHODS = frozenset({"submit", "map"})


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(outer):
            if node is outer:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
    return nested


def _is_fanout_call(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1]
    if tail in _FANOUT_NAMES:
        return True
    # Pool methods only count on executor-ish receivers so list.map-style
    # helpers elsewhere do not trip the rule.
    if isinstance(call.func, ast.Attribute) and call.func.attr in _FANOUT_METHODS:
        receiver = dotted_name(call.func.value) or ""
        return "executor" in receiver.lower() or "pool" in receiver.lower()
    return False


@register
class PickleFanoutChecker(Checker):
    """Reject lambdas/closures at parallel fan-out call sites."""

    rule_id = "pickle-fanout"
    description = (
        "callables handed to fan_out/run_cells/executor.submit must be "
        "module-level (no lambdas, no closures) so they pickle"
    )
    hint = (
        "hoist the callable to module level; parameterise it through "
        "argument tuples or CellSpec fields instead of captured state"
    )
    scope = ("experiments/", "scale/")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        nested = _nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_fanout_call(node):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield self.finding(
                        module,
                        argument,
                        "lambda passed across a process boundary cannot "
                        "pickle",
                    )
                elif isinstance(argument, ast.Name) and argument.id in nested:
                    yield self.finding(
                        module,
                        argument,
                        f"closure {argument.id!r} passed across a process "
                        f"boundary cannot pickle",
                    )
