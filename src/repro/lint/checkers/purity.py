"""Observer-purity rule: obs/ hooks watch the world, never steer it.

The observability plane (PR 2) attaches listeners to telemetry samples,
span events and controller decisions.  Its contract — until now only
promised by tests — is that observation is free of feedback: an
``_on_sample`` hook that schedules an event or boosts a stage turns the
measurement layer into a second, unaudited controller, and makes every
"observability is zero-cost when absent" claim false.

The rule finds hook functions in ``obs/`` — methods named ``on_*`` /
``_on_*`` plus anything registered through an ``add_*_listener``-style
call — and flags, inside them (and helpers they call, via the call
graph):

* calls to simulator/cluster mutators (``schedule``, ``set_frequency``,
  ``reserve``, ``crash_instance``, ...);
* attribute writes through a hook *parameter* (mutating the sample or
  stage that was handed in for reading).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.callgraph import CallSite
from repro.lint.cfg import function_defs
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["ObserverPurityChecker"]

#: Method names that mutate the simulated world.  Observation may read
#: anything; calling one of these from a hook is steering.
_MUTATORS = frozenset(
    {
        "schedule",
        "schedule_at",
        "set_frequency",
        "set_level",
        "boost",
        "withdraw",
        "recycle",
        "launch_instance",
        "retire_instance",
        "crash_instance",
        "reserve",
        "release",
        "inject",
    }
)

#: Registration calls whose callable argument becomes a hook.
_REGISTRATION_SUFFIXES = ("_listener", "_hook", "_callback")
_REGISTRATION_NAMES = frozenset({"subscribe", "add_listener"})

_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SKIP_NESTED):
                continue
            stack.append(child)


def _registered_hook_names(tree: ast.Module) -> Set[str]:
    """Callable names passed into listener-registration calls."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        elif isinstance(node.func, ast.Name):
            callee = node.func.id
        if callee is None:
            continue
        if callee not in _REGISTRATION_NAMES and not callee.endswith(
            _REGISTRATION_SUFFIXES
        ):
            continue
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if isinstance(arg, ast.Attribute):
                names.add(arg.attr)
            elif isinstance(arg, ast.Name):
                names.add(arg.id)
    return names


def _is_hook(name: str, registered: Set[str]) -> bool:
    return (
        name.startswith("on_")
        or name.startswith("_on_")
        or name in registered
    )


def _mutator_site(site: CallSite) -> bool:
    return site.last() in _MUTATORS


@register
class ObserverPurityChecker(Checker):
    """Event hooks in obs/ must not schedule events or mutate state."""

    rule_id = "observer-purity"
    description = (
        "obs/ and guard/ event hooks (on_* methods, registered listeners) "
        "must not schedule simulator events or mutate cluster state — "
        "observation is feedback-free"
    )
    hint = (
        "move the mutation into the controller (where it is audited) and "
        "let the hook only record"
    )
    scope = ("obs/", "guard/")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        registered = _registered_hook_names(module.tree)
        graph = self.context.call_graph if self.context is not None else None
        memo: Dict[str, object] = {}
        for qualname, func in function_defs(module.tree):
            if not _is_hook(func.name, registered):
                continue
            params = {
                arg.arg
                for arg in (
                    *func.args.posonlyargs,
                    *func.args.args,
                    *func.args.kwonlyargs,
                )
                if arg.arg not in ("self", "cls")
            }
            yield from self._direct_violations(module, func, params)
            if graph is None:
                continue
            summary = graph.functions.get(
                f"{module.package_path}::{qualname}"
            )
            if summary is None:
                continue
            for site in summary.calls:
                if site.last() in _MUTATORS:
                    continue  # already flagged directly
                callee = graph.resolve(summary, site.target)
                if callee is None:
                    continue
                chain = graph.trace(callee.key, _mutator_site, memo)  # type: ignore[arg-type]
                if chain is None:
                    continue
                terminal_key, terminal = chain[-1]
                yield Finding(
                    path=str(module.path),
                    package_path=module.package_path,
                    line=site.lineno,
                    column=site.col + 1,
                    rule=self.rule_id,
                    message=(
                        f"hook {func.name}() calls {site.last()}() which "
                        f"reaches the mutator {terminal.last()}() at "
                        f"{terminal_key.split('::')[0]}:{terminal.lineno}"
                    ),
                    hint=self.hint,
                )

    def _direct_violations(
        self, module: SourceModule, func, params: Set[str]
    ) -> Iterator[Finding]:
        for node in _own_nodes(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATORS:
                    yield self.finding(
                        module,
                        node,
                        f"hook {func.name}() calls the mutator "
                        f"{node.func.attr}() — observation must not "
                        f"steer the simulation",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"hook {func.name}() writes "
                            f"{target.value.id}.{target.attr} — the "
                            f"observed object must stay read-only",
                        )
