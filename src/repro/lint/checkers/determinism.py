"""Determinism rules: the simulated world must not read the host's clock
or the process-global random state.

Scope: ``sim/``, ``core/`` and ``service/`` — everything that executes
inside the simulation.  Wall-clock time must route through the sim clock
(:attr:`repro.sim.engine.Simulator.now`) and randomness through the named
streams of :mod:`repro.sim.rng`; otherwise two runs of the same seed
diverge and the content-addressed result cache silently lies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import import_origins, resolve_call_target
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["WallClockChecker", "UnseededRandomChecker"]

_SIM_SCOPE = ("sim/", "core/", "service/")

#: Call targets that read the host clock.
_WALL_CLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level ``random`` functions that draw from the global, unseeded
#: stream (seeding it globally is just as bad: it is shared state).
_GLOBAL_RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Explicitly allowed targets under those prefixes: constructing an
#: *owned* generator is fine when it is seeded (checked separately).
_GENERATOR_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.Generator"}
)


@register
class WallClockChecker(Checker):
    """Forbid host-clock reads inside the simulated world."""

    rule_id = "wall-clock"
    description = (
        "no time.time()/datetime.now() style host-clock reads inside "
        "sim/, core/ or service/"
    )
    hint = "use the simulated clock (Simulator.now or an injected clock callable)"
    scope = _SIM_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        origins = import_origins(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, origins)
            if target in _WALL_CLOCK_TARGETS:
                yield self.finding(
                    module,
                    node,
                    f"call to {target}() reads the host clock inside the "
                    f"simulated world",
                )


@register
class UnseededRandomChecker(Checker):
    """Forbid the global random stream inside the simulated world."""

    rule_id = "unseeded-random"
    description = (
        "no global random/numpy.random draws inside sim/, core/ or "
        "service/ — randomness routes through sim/rng.py named streams"
    )
    hint = (
        "draw from a named stream (RandomStreams.stream(...)) or accept a "
        "seeded random.Random"
    )
    scope = _SIM_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        origins = import_origins(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, origins)
            if target is None:
                continue
            if target in _GENERATOR_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{target}() constructed without a seed",
                        hint="pass an explicit seed derived from the "
                        "experiment's master seed",
                    )
                continue
            if any(target.startswith(prefix) for prefix in _GLOBAL_RANDOM_PREFIXES):
                yield self.finding(
                    module,
                    node,
                    f"call to {target}() uses the process-global random "
                    f"stream",
                )
