"""Flow-aware determinism rules: set iteration and escaping RNG.

The repo's byte-identical determinism guarantee — golden tests, the
content-addressed result cache, the PR 1 parallel fan-out — survives
only if every ordered side effect is fed in a deterministic order.  Two
leak paths the per-node rules (PR 3) cannot see:

* ``unordered-iteration`` — a ``for`` loop over a ``set``/``frozenset``
  whose body schedules simulator events, pushes onto a heap, or draws
  from an RNG stream.  Set iteration order varies with insertion
  history and (for str/bytes keys under hash randomisation) between
  processes; once it feeds ``Simulator.schedule`` the event sequence —
  and therefore every downstream tiebreak — diverges.  The check is
  interprocedural: a loop body calling a helper that *transitively*
  schedules is flagged too, via the cross-module call graph.  The fix
  is mechanical (iterate ``sorted(...)``) and ``--fix`` applies it.

* ``rng-escape`` — a call from the simulated world (``sim/``, ``core/``,
  ``service/``, ``faults/``) into a helper *outside* it that draws from
  the process-global ``random``/``numpy.random`` stream.  The direct
  in-scope case is ``unseeded-random``'s; this rule closes the wrapper
  loophole by tracing call chains through the call graph and flagging
  the in-scope call site, naming the terminal draw.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import CallSite, FunctionSummary
from repro.lint.cfg import function_defs
from repro.lint.findings import Finding, Fix, TextEdit
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["UnorderedIterationChecker", "RngEscapeChecker"]

#: Where the simulated world lives — both rules report only here.
_SIM_SCOPE = ("sim/", "core/", "service/", "faults/", "scenario/")

#: Call names whose argument/order sensitivity makes iteration order
#: observable: event scheduling, heap pushes, RNG draws (victim picks).
_ORDER_SENSITIVE = frozenset(
    {
        "schedule",
        "schedule_at",
        "heappush",
        "heappushpop",
        "choice",
        "sample",
        "shuffle",
        "randint",
        "random",
    }
)

#: Targets under these prefixes draw from the process-global stream.
_GLOBAL_RANDOM_PREFIXES = ("random.", "numpy.random.")
_GENERATOR_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.Generator"}
)

_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

_SET_TYPE_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    return False


def _set_locals(func: ast.AST) -> Set[str]:
    """Names confidently bound to sets anywhere in the function.

    Flow-insensitive on purpose: rebinding a name from a set to a list
    mid-function is rare, and a may-alias answer only ever widens the
    reach of a rule whose findings are verified against the loop body
    anyway.
    """
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                names.add(arg.arg)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    target = node.targets[0].id
                    value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                target = node.target.id
                if _annotation_is_set(node.annotation):
                    if target not in names:
                        names.add(target)
                        changed = True
                    continue
                value = node.value
            if target is None or value is None:
                continue
            if _is_set_expr(value, names) and target not in names:
                names.add(target)
                changed = True
    return names


def _is_set_expr(expr: ast.expr, set_names: Set[str]) -> bool:
    """Whether an expression is confidently set-valued."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _SET_METHODS
        ):
            return _is_set_expr(expr.func.value, set_names)
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(expr.left, set_names) or (
            isinstance(expr.op, (ast.BitAnd, ast.Sub))
            and _is_set_expr(expr.right, set_names)
        )
    return False


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested functions/classes."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SKIP_NESTED):
                continue
            stack.append(child)


def _order_sensitive_site(site: CallSite) -> bool:
    return site.last() in _ORDER_SENSITIVE


def _global_random_site(site: CallSite) -> bool:
    if site.target in _GENERATOR_CONSTRUCTORS:
        return not site.has_args  # unseeded construction
    return any(
        site.target.startswith(prefix) for prefix in _GLOBAL_RANDOM_PREFIXES
    )


@register
class UnorderedIterationChecker(Checker):
    """Flag set iteration whose body reaches ordered side effects."""

    rule_id = "unordered-iteration"
    description = (
        "no iteration over set/frozenset values that (transitively) "
        "schedules events, pushes heap entries or draws randomness — "
        "set order is not deterministic"
    )
    hint = "iterate sorted(the_set) (or an explicitly ordered container)"
    scope = _SIM_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        graph = self.context.call_graph if self.context is not None else None
        memo: Dict[str, object] = {}
        for qualname, func in function_defs(module.tree):
            summary = (
                graph.functions.get(f"{module.package_path}::{qualname}")
                if graph is not None
                else None
            )
            set_names = _set_locals(func)
            for node in _own_nodes(func):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if not _is_set_expr(node.iter, set_names):
                    continue
                reason = self._body_reaches(node, summary, memo)
                if reason is None:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"iterating an unordered set feeds {reason} — event "
                    f"order becomes insertion-history dependent",
                    fix=self._sorted_fix(node),
                )

    def _body_reaches(
        self,
        loop: ast.For,
        summary: Optional[FunctionSummary],
        memo: Dict[str, object],
    ) -> Optional[str]:
        """Why the loop body is order-sensitive, or ``None``."""
        graph = self.context.call_graph if self.context is not None else None
        body_lines = set()
        calls: List[Tuple[str, int]] = []
        for stmt in loop.body:
            for node in _own_nodes(stmt):
                if isinstance(node, ast.Call):
                    name: Optional[str] = None
                    if isinstance(node.func, ast.Attribute):
                        name = node.func.attr
                    elif isinstance(node.func, ast.Name):
                        name = node.func.id
                    if name is None:
                        continue
                    if name in _ORDER_SENSITIVE:
                        return f"{name}() directly"
                    calls.append((name, node.lineno))
                    body_lines.add(node.lineno)
        if graph is None or summary is None:
            return None
        for site in summary.calls:
            if site.lineno not in body_lines:
                continue
            callee = graph.resolve(summary, site.target)
            if callee is None:
                continue
            chain = graph.trace(callee.key, _order_sensitive_site, memo)  # type: ignore[arg-type]
            if chain is not None:
                terminal_key, terminal = chain[-1]
                return (
                    f"{site.last()}() which reaches "
                    f"{terminal.last()}() "
                    f"({terminal_key.split('::')[0]}:{terminal.lineno})"
                )
        return None

    @staticmethod
    def _sorted_fix(loop: ast.For) -> Optional[Fix]:
        iter_node = loop.iter
        end_lineno = getattr(iter_node, "end_lineno", None)
        end_col = getattr(iter_node, "end_col_offset", None)
        if end_lineno is None or end_col is None:
            return None
        return Fix(
            description="iterate sorted(...) for a deterministic order",
            edits=(
                TextEdit(
                    line=iter_node.lineno,
                    col=iter_node.col_offset,
                    end_line=iter_node.lineno,
                    end_col=iter_node.col_offset,
                    replacement="sorted(",
                ),
                TextEdit(
                    line=end_lineno,
                    col=end_col,
                    end_line=end_lineno,
                    end_col=end_col,
                    replacement=")",
                ),
            ),
        )


@register
class RngEscapeChecker(Checker):
    """Flag in-scope calls into helpers that draw global randomness."""

    rule_id = "rng-escape"
    description = (
        "no call from sim/, core/, service/ or faults/ into an outside "
        "helper that (transitively) draws from the process-global "
        "random/numpy.random stream"
    )
    hint = (
        "thread a seeded stream (RandomStreams.stream(...)) into the "
        "helper instead of letting it reach for the global RNG"
    )
    scope = _SIM_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if self.context is None:
            return
        graph = self.context.call_graph
        memo: Dict[str, object] = {}
        for summary in sorted(
            graph.in_module(module.package_path), key=lambda s: s.lineno
        ):
            for site in summary.calls:
                callee = graph.resolve(summary, site.target)
                if callee is None:
                    continue
                if callee.package_path.startswith(_SIM_SCOPE):
                    continue  # in-scope callees are checked directly
                chain = graph.trace(callee.key, _global_random_site, memo)  # type: ignore[arg-type]
                if chain is None:
                    continue
                terminal_key, terminal = chain[-1]
                yield Finding(
                    path=str(module.path),
                    package_path=module.package_path,
                    line=site.lineno,
                    column=site.col + 1,
                    rule=self.rule_id,
                    message=(
                        f"call to {site.last()}() escapes the seeded "
                        f"streams: it reaches {terminal.target}() at "
                        f"{terminal_key.split('::')[0]}:{terminal.lineno}"
                    ),
                    hint=self.hint,
                )
