"""Observability hygiene: metric names are literal, well-formed constants.

The Prometheus exporter and the audit tooling key everything on the
metric name, so a name built from an f-string fragments the time series
and a name registered as both a counter and a gauge corrupts the
exposition.  ``metric-name`` checks each registration site;
``metric-duplicate`` is a cross-module pass that catches the same name
registered with a different instrument kind or help text anywhere in the
scanned tree.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["MetricNameChecker", "MetricDuplicateChecker"]

#: Registry methods that register/fetch an instrument by name.
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Naming convention: prometheus-style snake case under the repro_ prefix.
_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")


def _registration(node: ast.AST) -> Optional[tuple[str, ast.Call]]:
    """``(kind, call)`` when the node is an instrument registration."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _INSTRUMENT_METHODS
        and node.args
    ):
        return node.func.attr, node
    return None


def _help_text(call: ast.Call) -> Optional[str]:
    """The literal help string of a registration, when present."""
    if len(call.args) > 1:
        argument = call.args[1]
    else:
        keyword = next(
            (kw for kw in call.keywords if kw.arg == "help_text"), None
        )
        if keyword is None:
            return None
        argument = keyword.value
    if isinstance(argument, ast.Constant) and isinstance(argument.value, str):
        return argument.value
    return None


@register
class MetricNameChecker(Checker):
    """Each registration site: literal name matching the convention."""

    rule_id = "metric-name"
    description = (
        "metric names must be literal string constants matching "
        "^repro_[a-z][a-z0-9_]*$"
    )
    hint = (
        "use a literal snake_case name under the repro_ prefix; encode "
        "variability as label values, not name fragments"
    )
    scope = ()  # every registration site in the tree

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            registration = _registration(node)
            if registration is None:
                continue
            kind, call = registration
            name_node = call.args[0]
            if not (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
            ):
                yield self.finding(
                    module,
                    name_node,
                    f"{kind} name must be a literal string constant, not a "
                    f"computed expression",
                )
            elif not _NAME_RE.match(name_node.value):
                yield self.finding(
                    module,
                    name_node,
                    f"{kind} name {name_node.value!r} does not match "
                    f"{_NAME_RE.pattern}",
                )


@register
class MetricDuplicateChecker(Checker):
    """Cross-module: one name, one instrument kind, one help text."""

    rule_id = "metric-duplicate"
    description = (
        "a metric name must be registered with a consistent instrument "
        "kind and help text everywhere it appears"
    )
    hint = (
        "hoist the name and help text to one shared constant, or rename "
        "one of the conflicting instruments"
    )
    scope = ()

    def __init__(self) -> None:
        #: name -> (kind, help, first finding location)
        self._seen: dict[str, tuple[str, Optional[str], str, int]] = {}
        self._conflicts: list[Finding] = []

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            registration = _registration(node)
            if registration is None:
                continue
            kind, call = registration
            name_node = call.args[0]
            if not (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
            ):
                continue  # metric-name already flags computed names
            name = name_node.value
            help_text = _help_text(call)
            previous = self._seen.get(name)
            if previous is None:
                self._seen[name] = (
                    kind,
                    help_text,
                    str(module.path),
                    call.lineno,
                )
                continue
            prev_kind, prev_help, prev_path, prev_line = previous
            mismatched_help = (
                help_text is not None
                and prev_help is not None
                and help_text != prev_help
            )
            if kind != prev_kind or mismatched_help:
                what = "instrument kind" if kind != prev_kind else "help text"
                self._conflicts.append(
                    self.finding(
                        module,
                        call,
                        f"metric {name!r} re-registered with a different "
                        f"{what} (first registered as {prev_kind} at "
                        f"{prev_path}:{prev_line})",
                    )
                )
        return iter(())

    def finish(self) -> Iterator[Finding]:
        return iter(self._conflicts)
