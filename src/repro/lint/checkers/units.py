"""Unit-discipline rule: no arithmetic mixing watts, hertz and seconds.

Works off the identifier-suffix convention the codebase (and now
:mod:`repro.units`) encodes: ``*_watts`` is a power, ``*_ghz`` a
frequency, ``*_s``/``*_seconds`` a duration, and so on.  Adding,
subtracting or order-comparing two quantities whose inferred units
disagree is dimensionally meaningless — exactly the class of silent
Algorithm-1 drift the paper's budget-conservation invariant forbids.
Multiplication and division are allowed because they legitimately change
units (power x time = energy).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.asthelpers import unit_of_identifier
from repro.lint.findings import Finding
from repro.lint.registry import Checker, register
from repro.lint.source import SourceModule

__all__ = ["UnitMismatchChecker"]

#: NewType constructors from repro.units, mapped to the unit they tag.
_UNIT_CONSTRUCTORS = {
    "Watts": "W",
    "Joules": "J",
    "Hz": "Hz",
    "Ghz": "GHz",
    "SimTime": "s",
}

_MISMATCH_OPS = (ast.Add, ast.Sub)
_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _unit_of_expression(node: ast.expr) -> Optional[str]:
    """Best-effort unit of an expression, or ``None`` when unknown.

    Names and attributes infer from their suffix; calls to the
    :mod:`repro.units` constructors carry their tag; unary +/- is
    transparent.  Everything else is unknown — the rule only fires when
    *both* operands have a confidently inferred unit.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _unit_of_expression(node.operand)
    if isinstance(node, ast.Name):
        return unit_of_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_identifier(node.attr)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return _UNIT_CONSTRUCTORS.get(node.func.id)
    return None


@register
class UnitMismatchChecker(Checker):
    """Flag +/-/comparison between identifiers of different units."""

    rule_id = "unit-mismatch"
    description = (
        "no addition, subtraction or comparison between quantities whose "
        "unit suffixes disagree (watts vs ghz vs seconds)"
    )
    hint = (
        "convert one operand explicitly (see repro.units) or rename the "
        "identifier to its real unit"
    )
    scope = ()  # unit discipline holds everywhere

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, _MISMATCH_OPS
            ):
                yield from self._judge(module, node, node.left, node.right)
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], _COMPARE_OPS):
                    yield from self._judge(
                        module, node, node.left, node.comparators[0]
                    )

    def _judge(
        self,
        module: SourceModule,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterator[Finding]:
        left_unit = _unit_of_expression(left)
        right_unit = _unit_of_expression(right)
        if left_unit is None or right_unit is None:
            return
        if left_unit != right_unit:
            yield self.finding(
                module,
                node,
                f"arithmetic mixes units: left operand is {left_unit}, "
                f"right operand is {right_unit}",
            )
