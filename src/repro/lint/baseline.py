"""Accepted-debt baselines: suppress old findings, never new ones.

A baseline is a committed JSON file of fingerprints for findings the
team has explicitly accepted.  ``repro lint --baseline FILE`` moves
matching findings from the live list to :attr:`LintReport.baselined`
(they no longer affect the exit code but still appear, marked
suppressed, in SARIF output); anything *not* in the file stays live.

The fingerprint is content-addressed, not line-addressed::

    sha256("v1|rule|package_path|<stripped anchor line text>|occurrence")

so reformatting or moving code does not invalidate the baseline, while a
*new* finding of the same rule on the same line gets a fresh occurrence
index and is **not** masked by the old entry.  Occurrence indices count
findings sharing (rule, package path, line text) in source order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, LintReport

__all__ = [
    "Baseline",
    "BaselineEntry",
    "apply_baseline",
    "compute_fingerprints",
    "write_baseline",
]

_FINGERPRINT_VERSION = "v1"
_FILE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, addressed by fingerprint.

    ``line`` and ``message`` are informational snapshots for humans
    reading the file; matching uses only the fingerprint.
    """

    fingerprint: str
    rule: str
    package_path: str
    line: int
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "package_path": self.package_path,
            "line": self.line,
            "message": self.message,
        }


class _LineCache:
    """Stripped source lines per file, read at most once."""

    def __init__(self) -> None:
        self._lines: Dict[str, List[str]] = {}

    def line(self, path: str, lineno: int) -> str:
        if path not in self._lines:
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            self._lines[path] = text.splitlines()
        lines = self._lines[path]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


def compute_fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Fingerprints parallel to ``findings`` (same order).

    Occurrence indices are assigned in source order — ``(line, column)``
    within each (rule, package path, anchor text) group — so a second
    violation appearing on an already-baselined line hashes differently
    from the accepted one.
    """
    cache = _LineCache()
    ordered = sorted(
        range(len(findings)),
        key=lambda i: (findings[i].line, findings[i].column, i),
    )
    counters: Dict[tuple, int] = {}
    fingerprints: List[str] = [""] * len(findings)
    for index in ordered:
        finding = findings[index]
        anchor = cache.line(finding.path, finding.line)
        group = (finding.rule, finding.package_path, anchor)
        occurrence = counters.get(group, 0)
        counters[group] = occurrence + 1
        payload = "|".join(
            (
                _FINGERPRINT_VERSION,
                finding.rule,
                finding.package_path,
                anchor,
                str(occurrence),
            )
        )
        fingerprints[index] = hashlib.sha256(
            payload.encode("utf-8")
        ).hexdigest()
    return fingerprints


@dataclass
class Baseline:
    """The committed accepted-debt file, keyed by fingerprint."""

    entries: Dict[str, BaselineEntry]

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        file = Path(path)
        try:
            payload = json.loads(file.read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(
                f"cannot read lint baseline {file}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"lint baseline {file} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ConfigurationError(
                f"lint baseline {file} has no 'entries' list"
            )
        if payload.get("version") != _FILE_VERSION:
            raise ConfigurationError(
                f"lint baseline {file} has unsupported version "
                f"{payload.get('version')!r} (expected {_FILE_VERSION})"
            )
        entries: Dict[str, BaselineEntry] = {}
        for raw in payload["entries"]:
            if not isinstance(raw, dict) or "fingerprint" not in raw:
                raise ConfigurationError(
                    f"lint baseline {file} has a malformed entry: {raw!r}"
                )
            entry = BaselineEntry(
                fingerprint=str(raw["fingerprint"]),
                rule=str(raw.get("rule", "")),
                package_path=str(raw.get("package_path", "")),
                line=int(raw.get("line", 0)),
                message=str(raw.get("message", "")),
            )
            entries[entry.fingerprint] = entry
        return cls(entries=entries)

    def save(self, path: Union[str, Path]) -> None:
        ordered = sorted(
            self.entries.values(),
            key=lambda e: (e.package_path, e.line, e.rule, e.fingerprint),
        )
        payload = {
            "version": _FILE_VERSION,
            "tool": "repro-lint",
            "entries": [entry.to_dict() for entry in ordered],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def write_baseline(report: LintReport, path: Union[str, Path]) -> int:
    """Snapshot every live finding into a baseline file at ``path``.

    Findings already baselined in the report are carried over too, so
    re-writing against an applied baseline does not drop accepted debt.
    Returns the number of entries written.
    """
    findings = [*report.findings, *report.baselined]
    fingerprints = compute_fingerprints(findings)
    entries = {
        fp: BaselineEntry(
            fingerprint=fp,
            rule=finding.rule,
            package_path=finding.package_path,
            line=finding.line,
            message=finding.message,
        )
        for fp, finding in zip(fingerprints, findings)
    }
    Baseline(entries=entries).save(path)
    return len(entries)


def apply_baseline(
    report: LintReport, baseline: Baseline
) -> List[BaselineEntry]:
    """Move baseline-matched findings out of the live list, in place.

    Returns the *stale* entries — fingerprints in the baseline that no
    current finding matches — so CI can nag about debt already paid off.
    """
    fingerprints = compute_fingerprints(report.findings)
    matched: set = set()
    live: List[Finding] = []
    for finding, fingerprint in zip(report.findings, fingerprints):
        if fingerprint in baseline.entries:
            matched.add(fingerprint)
            report.baselined.append(finding)
        else:
            live.append(finding)
    report.findings = live
    return [
        entry
        for fingerprint, entry in sorted(baseline.entries.items())
        if fingerprint not in matched
    ]
