"""Cross-module call graph with per-function call-site summaries.

The interprocedural rules (``rng-escape``, the reach check behind
``unordered-iteration``) need one question answered fast: *does calling
this function eventually execute a call matching some predicate?*  This
module summarises every function down to its outgoing call sites
(import-resolved, with location and an args/no-args bit for the seeded
generator exception), links summaries across modules by a best-effort
name resolution, and memoises transitive reachability.

Resolution is deliberately syntactic and conservative:

* ``helper(...)`` resolves to a same-module function of that name;
* ``repro.util.jitter.helper(...)`` (after import-alias resolution)
  maps the dotted module onto its ``package_path``;
* ``self.foo(...)`` / ``cls.foo(...)`` resolve within the caller's
  class, then fall back to any single same-module method of that name;
* anything else (foreign libraries, dynamic dispatch) resolves to
  nothing and the trace simply stops there.

Summaries are content-addressed, so the whole graph build can be cached
on disk between runs (`--callgraph-cache`): a module whose bytes did not
change is never re-summarised.  The CI lint job shares one cache file
across its lint invocations for exactly this reason.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.lint.asthelpers import import_origins, resolve_call_target
from repro.lint.cfg import function_defs
from repro.lint.source import SourceModule

__all__ = [
    "CallSite",
    "FunctionSummary",
    "CallGraph",
    "summarize_module",
    "build_call_graph",
]

_CACHE_VERSION = 1


@dataclass(frozen=True)
class CallSite:
    """One outgoing call from a function body."""

    target: str  #: import-resolved dotted target (``repro.sim.rng.draw``)
    lineno: int
    col: int
    has_args: bool  #: whether any positional or keyword args were passed

    def last(self) -> str:
        """The final dotted component (method/function name)."""
        return self.target.rpartition(".")[2]

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "lineno": self.lineno,
            "col": self.col,
            "has_args": self.has_args,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CallSite":
        return cls(
            target=payload["target"],
            lineno=payload["lineno"],
            col=payload["col"],
            has_args=payload["has_args"],
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the graph keeps about one function."""

    key: str  #: ``package_path::qualname``
    package_path: str
    qualname: str  #: ``Class.method`` / ``outer.inner`` style
    lineno: int
    calls: Tuple[CallSite, ...]

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2]

    @property
    def class_prefix(self) -> str:
        """``Class.`` for methods, empty for free functions."""
        return self.qualname.rpartition(".")[0]

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "calls": [site.to_dict() for site in self.calls],
        }


def _own_calls(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    origins: Dict[str, str],
) -> Tuple[CallSite, ...]:
    """Call sites in ``func``'s own body, excluding nested functions
    (those carry their own summaries)."""
    sites: List[CallSite] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                target = resolve_call_target(child, origins)
                if target is not None:
                    sites.append(
                        CallSite(
                            target=target,
                            lineno=child.lineno,
                            col=child.col_offset,
                            has_args=bool(child.args or child.keywords),
                        )
                    )
            visit(child)

    visit(func)
    return tuple(sites)


def summarize_module(module: SourceModule) -> List[FunctionSummary]:
    """Summaries for every function defined in ``module``."""
    origins = import_origins(module.tree)
    summaries: List[FunctionSummary] = []
    for qualname, func in function_defs(module.tree):
        summaries.append(
            FunctionSummary(
                key=f"{module.package_path}::{qualname}",
                package_path=module.package_path,
                qualname=qualname,
                lineno=func.lineno,
                calls=_own_calls(func, origins),
            )
        )
    return summaries


def _module_dotted(package_path: str) -> str:
    """``util/jitter.py`` -> ``repro.util.jitter``."""
    trimmed = package_path[:-3] if package_path.endswith(".py") else package_path
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return "repro." + trimmed.replace("/", ".")


class CallGraph:
    """Summaries indexed for name resolution and reachability."""

    def __init__(self, summaries: Iterable[FunctionSummary]) -> None:
        self.functions: Dict[str, FunctionSummary] = {}
        self._by_module: Dict[str, Dict[str, str]] = {}
        self._by_dotted_module: Dict[str, str] = {}
        for summary in summaries:
            self.functions[summary.key] = summary
            per_module = self._by_module.setdefault(summary.package_path, {})
            per_module[summary.qualname] = summary.key
            self._by_dotted_module[_module_dotted(summary.package_path)] = (
                summary.package_path
            )

    def in_module(self, package_path: str) -> List[FunctionSummary]:
        keys = self._by_module.get(package_path, {})
        return [self.functions[key] for key in keys.values()]

    # ------------------------------------------------------------------
    def resolve(
        self, caller: FunctionSummary, target: str
    ) -> Optional[FunctionSummary]:
        """Best-effort mapping from a call target to a known function."""
        per_module = self._by_module.get(caller.package_path, {})
        head, _, rest = target.partition(".")
        if head in ("self", "cls") and rest:
            method = rest.partition(".")[0]
            if caller.class_prefix:
                key = per_module.get(f"{caller.class_prefix}.{method}")
                if key is not None:
                    return self.functions[key]
            candidates = [
                key
                for qualname, key in per_module.items()
                if qualname.rpartition(".")[2] == method and "." in qualname
            ]
            if len(candidates) == 1:
                return self.functions[candidates[0]]
            return None
        if "." not in target:
            key = per_module.get(target)
            return self.functions[key] if key is not None else None
        # Fully-dotted repro target: longest module prefix wins.
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_dotted = ".".join(parts[:cut])
            package_path = self._by_dotted_module.get(module_dotted)
            if package_path is None:
                continue
            qualname = ".".join(parts[cut:])
            key = self._by_module.get(package_path, {}).get(qualname)
            if key is not None:
                return self.functions[key]
        return None

    # ------------------------------------------------------------------
    def trace(
        self,
        key: str,
        predicate: Callable[[CallSite], bool],
        memo: Optional[
            Dict[str, Optional[Tuple[Tuple[str, CallSite], ...]]]
        ] = None,
    ) -> Optional[Tuple[Tuple[str, CallSite], ...]]:
        """The call chain from function ``key`` to a matching call site.

        Returns ``((owner_key, site), ...)`` ending at the first call
        site for which ``predicate`` holds, or ``None`` when no chain
        exists.  ``memo`` carries results across queries with the *same*
        predicate; reuse it for a whole rule pass, never across rules.
        """
        if memo is None:
            memo = {}
        if key in memo:
            return memo[key]
        memo[key] = None  # cycle guard: a loop contributes no new chain
        summary = self.functions.get(key)
        if summary is None:
            return None
        for site in summary.calls:
            if predicate(site):
                memo[key] = ((key, site),)
                return memo[key]
        for site in summary.calls:
            callee = self.resolve(summary, site.target)
            if callee is None or callee.key == key:
                continue
            chain = self.trace(callee.key, predicate, memo)
            if chain is not None:
                memo[key] = ((key, site),) + chain
                return memo[key]
        return None


# ----------------------------------------------------------------------
# On-disk summary cache
# ----------------------------------------------------------------------
def _cache_key(module: SourceModule) -> str:
    digest = hashlib.sha256(module.text.encode("utf-8")).hexdigest()
    return f"{module.package_path}:{digest}"


def build_call_graph(
    modules: Iterable[SourceModule],
    cache_path: Optional[Union[str, Path]] = None,
) -> CallGraph:
    """Build the graph, reusing cached summaries for unchanged files.

    The cache file is plain JSON keyed by ``package_path:sha256(text)``;
    a corrupt or version-mismatched cache is discarded silently (it is
    an optimisation, never a source of truth).
    """
    cached: Dict[str, dict] = {}
    path = Path(cache_path) if cache_path is not None else None
    if path is not None and path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") == _CACHE_VERSION:
                cached = payload.get("modules", {})
        except (OSError, ValueError):
            cached = {}

    summaries: List[FunctionSummary] = []
    fresh: Dict[str, dict] = {}
    dirty = False
    for module in modules:
        key = _cache_key(module)
        entry = cached.get(key)
        if entry is None:
            module_summaries = summarize_module(module)
            entry = {
                "functions": [s.to_dict() for s in module_summaries],
            }
            dirty = True
        else:
            module_summaries = [
                FunctionSummary(
                    key=f"{module.package_path}::{f['qualname']}",
                    package_path=module.package_path,
                    qualname=f["qualname"],
                    lineno=f["lineno"],
                    calls=tuple(
                        CallSite.from_dict(c) for c in f["calls"]
                    ),
                )
                for f in entry["functions"]
            ]
        fresh[key] = entry
        summaries.extend(module_summaries)

    if path is not None and (dirty or set(fresh) != set(cached)):
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(
                    {"version": _CACHE_VERSION, "modules": fresh},
                    sort_keys=True,
                ),
                encoding="utf-8",
            )
        except OSError:
            pass  # read-only checkout: the cache is best-effort
    return CallGraph(summaries)
