"""repro-lint: domain-aware static analysis for the reproduction.

The test suite can only *sample* the controller's arithmetic invariants —
Equation 1 bottleneck metrics, Equation 2/3 boost estimates, budget
conservation across recycle/withdraw — so this package checks the
properties that must hold *everywhere* at the source level instead:

* determinism — no wall clock or unseeded randomness inside the
  simulator, controller or service layers (``wall-clock``,
  ``unseeded-random``);
* unit discipline — no arithmetic mixing watts, gigahertz and seconds
  (``unit-mismatch``), no ``==`` on computed floats (``float-equality``);
* parallel-engine safety — everything crossing the
  :mod:`repro.experiments.parallel` process boundary must be module-level
  and picklable (``pickle-fanout``);
* observability hygiene — metric names are literal constants matching
  the naming convention and registered consistently (``metric-name``,
  ``metric-duplicate``);
* dataclass invariants — no mutable defaults, frozen where shared
  (``dataclass-mutable-default``, ``dataclass-frozen-shared``), plus the
  general-purpose ``mutable-default-arg`` and ``shadow-builtin`` rules;
* flow-aware families (PR 8) — per-function CFGs, a forward-dataflow
  framework and a cross-module call graph power ``unit-flow``,
  ``resource-pairing``, ``unordered-iteration``, ``rng-escape`` and
  ``observer-purity``.

Entry points: :func:`repro.lint.runner.lint_paths` (API), ``repro lint``
(CLI) and ``tests/lint/`` (the self-clean gate).  Findings are
suppressed per line with ``# repro-lint: disable=RULE`` or per file with
``# repro-lint: disable-file=RULE``; accepted pre-existing debt lives in
a committed baseline file (:mod:`repro.lint.baseline`), output is
human text, JSON or SARIF 2.1.0 (:mod:`repro.lint.sarif`), and the
mechanically fixable subset rewrites itself via ``repro lint --fix``
(:mod:`repro.lint.fixes`).
"""

from repro.lint.baseline import Baseline, apply_baseline, write_baseline
from repro.lint.findings import Finding, Fix, LintReport, TextEdit
from repro.lint.fixes import FixResult, apply_fixes
from repro.lint.registry import Checker, CheckerRegistry, default_registry
from repro.lint.runner import lint_paths
from repro.lint.sarif import report_to_sarif, validate_sarif
from repro.lint.source import SourceModule

__all__ = [
    "Baseline",
    "Checker",
    "CheckerRegistry",
    "Finding",
    "Fix",
    "FixResult",
    "LintReport",
    "SourceModule",
    "TextEdit",
    "apply_baseline",
    "apply_fixes",
    "default_registry",
    "lint_paths",
    "report_to_sarif",
    "validate_sarif",
    "write_baseline",
]
