"""The blocking control-socket client behind ``repro ctl``.

:class:`CtlClient` speaks :mod:`repro.serve.protocol` over a unix or
TCP socket: :meth:`call` sends one request line and blocks for the
matching response (event lines that arrive in between are queued, not
lost), and :meth:`events` hands those pushed lines out for ``watch``.
A daemon-side error comes back as the matching exception type where the
library defines one (:class:`~repro.errors.ServeError` and friends), so
``repro ctl`` failures print exactly like local ones.
"""

from __future__ import annotations

import socket
from typing import Any, Iterator, Optional

from repro import errors as _errors
from repro.errors import ProtocolError, ReproError, ServeError
from repro.serve.protocol import decode_message, encode_request

__all__ = ["CtlClient"]


def _rebuild_error(payload: dict[str, Any]) -> ReproError:
    """Map a daemon error dict back onto the library's exception types."""
    name = str(payload.get("type", "ServeError"))
    message = str(payload.get("message", "daemon error"))
    exc_type = getattr(_errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        try:
            return exc_type(message)
        except TypeError:
            # Rich constructors (PowerBudgetExceeded) don't take a bare
            # message; fall through to the generic wrapper.
            pass
    return ServeError(f"{name}: {message}")


class CtlClient:
    """One blocking connection to a ``reprod`` control socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: float = 30.0,
    ) -> None:
        if socket_path is None and host is None:
            raise ServeError("the client needs a unix socket path or a TCP host")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout_s = float(timeout_s)
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._next_id = 0
        self._pending_events: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def connect(self) -> "CtlClient":
        if self._sock is not None:
            return self
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.socket_path)
        else:
            if self.port is None:
                raise ServeError("a TCP host needs a port")
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._buffer = b""

    def __enter__(self) -> "CtlClient":
        return self.connect()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def call(self, cmd: str, **args: Any) -> dict[str, Any]:
        """Send one command and block for its response."""
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        request_id = self._next_id
        line = encode_request(request_id, cmd, args)
        self._sock.sendall(line.encode("utf-8") + b"\n")
        while True:
            message = self._read_message()
            if "event" in message:
                self._pending_events.append(message)
                continue
            if message.get("id") != request_id:
                raise ProtocolError(
                    f"daemon answered id {message.get('id')!r}, "
                    f"expected {request_id}"
                )
            if message.get("ok"):
                result = message.get("result", {})
                if not isinstance(result, dict):
                    raise ProtocolError("daemon result must be an object")
                return result
            error = message.get("error")
            if not isinstance(error, dict):
                raise ProtocolError("daemon error must be an object")
            raise _rebuild_error(error)

    def events(self, max_events: Optional[int] = None) -> Iterator[dict[str, Any]]:
        """Yield pushed event lines (queued ones first, then live reads).

        Blocks up to the client timeout per read; a closed daemon ends
        the iteration.  ``max_events`` bounds the yield count.
        """
        self.connect()
        yielded = 0
        while max_events is None or yielded < max_events:
            if self._pending_events:
                event = self._pending_events.pop(0)
            else:
                try:
                    message = self._read_message()
                except (ProtocolError, OSError):
                    return
                if "event" not in message:
                    # A stray response with no caller; drop it.
                    continue
                event = message
            yielded += 1
            yield event

    # ------------------------------------------------------------------
    def _read_message(self) -> dict[str, Any]:
        assert self._sock is not None
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("the daemon closed the connection")
            self._buffer += chunk
        raw, self._buffer = self._buffer.split(b"\n", 1)
        return decode_message(raw.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.socket_path or f"{self.host}:{self.port}"
        return f"CtlClient({where})"
