"""``reprod``: the long-running control-plane daemon.

A single-threaded selector loop owns everything: the listening
socket(s), the per-connection read buffers, the hosted runs and the
pacing state.  No locks, no worker threads — commands are serviced
between simulation advances, so every mutation (a live budget change, a
pause) lands at a quiescent point and the run stays deterministic for
the event sequence it actually executed.

Pacing is the one place wall clock is allowed (the sim core stays pure
under ``repro lint``): each loop iteration converts elapsed real time
into a simulated-time deadline per run (``rate`` sim-seconds per real
second) and ticks the run there.  ``turbo`` ignores the wall clock and
advances a fixed simulated quantum per iteration instead — as fast as
the host can go while still draining the command socket between
chunks.
"""

from __future__ import annotations

import os
import selectors
import socket
import time
from typing import Any, Optional

from repro.errors import ProtocolError, ReproError, ServeError
from repro.scenario.spec import ScenarioSpec
from repro.serve.hosted import HostedRun
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    Request,
    decode_request,
    encode_event,
    encode_response,
)

__all__ = ["ReproDaemon"]


class _Connection:
    """One accepted client: its socket, read buffer and subscriptions."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = b""
        #: run name -> stream cursor (index into the run's stream lines).
        self.watching: dict[str, int] = {}
        #: runs whose "finished" event this connection already received.
        self.announced: set[str] = set()
        self.closed = False

    def send_line(self, line: str) -> None:
        if self.closed:
            return
        try:
            self.sock.sendall(line.encode("utf-8") + b"\n")
        except OSError:
            self.closed = True


class ReproDaemon:
    """Hosts armed stacks behind a line-delimited JSON control socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        rate: float = 1.0,
        turbo: bool = False,
        quantum_s: float = 10.0,
        poll_interval_s: float = 0.05,
    ) -> None:
        if socket_path is None and host is None:
            raise ServeError("the daemon needs a unix socket path or a TCP host")
        if rate <= 0.0:
            raise ServeError(f"rate must be > 0 sim-seconds/second, got {rate}")
        if quantum_s <= 0.0:
            raise ServeError(f"turbo quantum must be > 0 s, got {quantum_s}")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.rate = float(rate)
        self.turbo = bool(turbo)
        self.quantum_s = float(quantum_s)
        self.poll_interval_s = float(poll_interval_s)
        self.runs: dict[str, HostedRun] = {}
        self._targets: dict[str, float] = {}
        self._serial = 0
        self._running = False
        self._selector: Optional[selectors.BaseSelector] = None
        self._listeners: list[socket.socket] = []
        self._connections: list[_Connection] = []

    # ------------------------------------------------------------------
    # Run management (callable before the loop starts: --spec bootstrap)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: ScenarioSpec,
        name: Optional[str] = None,
        *,
        paused: bool = False,
    ) -> HostedRun:
        if name is None:
            name = f"run{self._serial}"
            self._serial += 1
        if name in self.runs:
            raise ServeError(f"a run named {name!r} is already hosted")
        run = HostedRun(name, spec)
        run.paused = bool(paused)
        self.runs[name] = run
        self._targets[name] = 0.0
        return run

    def _run(self, name: Any) -> HostedRun:
        if not isinstance(name, str):
            raise ProtocolError(f"run name must be a string, got {name!r}")
        try:
            return self.runs[name]
        except KeyError:
            known = ", ".join(sorted(self.runs)) or "none"
            raise ServeError(
                f"no hosted run named {name!r} (hosted: {known})"
            ) from None

    # ------------------------------------------------------------------
    # The serve loop
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Bind, then loop until :meth:`shutdown` (or a ``shutdown``
        command) flips the flag.  Safe to call exactly once."""
        if self._selector is not None:
            raise ServeError("the daemon is already serving")
        self._selector = selectors.DefaultSelector()
        self._bind()
        self._running = True
        last = time.monotonic()
        try:
            while self._running:
                events = self._selector.select(timeout=self.poll_interval_s)
                for key, _mask in events:
                    if key.data is None:
                        self._accept(key.fileobj)
                    else:
                        self._read(key.data)
                now = time.monotonic()
                self._advance_runs(now - last)
                last = now
                self._pump_streams()
        finally:
            self._close_all()

    def shutdown(self) -> None:
        """Ask the loop to exit after the current iteration."""
        self._running = False

    def _bind(self) -> None:
        assert self._selector is not None
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
            listener.listen(16)
            listener.setblocking(False)
            self._selector.register(listener, selectors.EVENT_READ, None)
            self._listeners.append(listener)
        if self.host is not None:
            if self.port is None:
                raise ServeError("a TCP host needs a port")
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(16)
            listener.setblocking(False)
            self._selector.register(listener, selectors.EVENT_READ, None)
            self._listeners.append(listener)

    def _accept(self, listener: Any) -> None:
        assert self._selector is not None
        sock, _addr = listener.accept()
        sock.setblocking(False)
        conn = _Connection(sock)
        self._connections.append(conn)
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _drop(self, conn: _Connection) -> None:
        assert self._selector is not None
        conn.closed = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()
        if conn in self._connections:
            self._connections.remove(conn)

    def _read(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn)
            return
        if not chunk:
            self._drop(conn)
            return
        conn.buffer += chunk
        if len(conn.buffer) > MAX_LINE_BYTES:
            conn.send_line(
                encode_response(
                    None,
                    error=ProtocolError(
                        f"request exceeds the {MAX_LINE_BYTES}-byte line limit"
                    ),
                )
            )
            self._drop(conn)
            return
        while b"\n" in conn.buffer:
            raw, conn.buffer = conn.buffer.split(b"\n", 1)
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            self._handle_line(conn, line)

    def _handle_line(self, conn: _Connection, line: str) -> None:
        try:
            request = decode_request(line)
        except ProtocolError as error:
            conn.send_line(encode_response(None, error=error))
            return
        try:
            result = self._dispatch(conn, request)
        except ReproError as error:
            conn.send_line(encode_response(request.id, error=error))
            return
        conn.send_line(encode_response(request.id, result=result))

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, request: Request) -> dict[str, Any]:
        args = request.args
        cmd = request.cmd
        if cmd == "ping":
            return {"pong": True, "runs": len(self.runs)}
        if cmd == "submit":
            spec_data = args["spec"]
            if not isinstance(spec_data, dict):
                raise ProtocolError("'spec' must be a scenario spec object")
            spec = ScenarioSpec.from_dict(spec_data)
            run = self.submit(
                spec, args.get("name"), paused=bool(args.get("paused", False))
            )
            return {
                "run": run.name,
                "digest": run.spec.digest(),
                "end_s": run.end_s,
                "paused": run.paused,
            }
        if cmd == "status":
            if "run" in args:
                return self._run(args["run"]).status()
            return {
                "runs": [
                    self.runs[name].status() for name in sorted(self.runs)
                ],
                "rate": self.rate,
                "turbo": self.turbo,
            }
        if cmd == "budget":
            run = self._run(args["run"])
            watts = _number(args["watts"], "watts")
            return run.apply_budget(watts, source="ctl")
        if cmd == "slo":
            run = self._run(args["run"])
            target = _number(args["target_s"], "target_s")
            return run.retarget_slo(target, source="ctl")
        if cmd == "pause":
            run = self._run(args["run"])
            run.paused = True
            return {"run": run.name, "paused": True, "now_s": run.sim_now}
        if cmd == "resume":
            run = self._run(args["run"])
            run.paused = False
            return {"run": run.name, "paused": False, "now_s": run.sim_now}
        if cmd == "drain":
            run = self._run(args["run"])
            run.drain_now()
            status = run.status()
            if run.error is not None:
                raise ServeError(
                    f"run {run.name!r} failed while draining: {run.error}"
                )
            return status
        if cmd == "stop":
            run = self._run(args["run"])
            run.abort()
            return run.status()
        if cmd == "result":
            run = self._run(args["run"])
            if run.result_payload is None:
                raise ServeError(
                    f"run {run.name!r} has no result yet "
                    f"(phase {run.builder.phase!r}"
                    + (f", error: {run.error}" if run.error else "")
                    + ")"
                )
            return run.result_payload
        if cmd == "audit":
            run = self._run(args["run"])
            kind = args.get("kind")
            if kind is not None and not isinstance(kind, str):
                raise ProtocolError(f"'kind' must be a string, got {kind!r}")
            tail = args.get("tail")
            if tail is not None and (
                isinstance(tail, bool) or not isinstance(tail, int) or tail < 0
            ):
                raise ProtocolError(
                    f"'tail' must be a non-negative integer, got {tail!r}"
                )
            entries = run.audit_entries(kind=kind, tail=tail)
            return {"run": run.name, "count": len(entries), "entries": entries}
        if cmd == "watch":
            run = self._run(args["run"])
            conn.watching.setdefault(run.name, 0)
            return {"run": run.name, "watching": True}
        if cmd == "unwatch":
            if "run" in args:
                conn.watching.pop(str(args["run"]), None)
            else:
                conn.watching.clear()
            return {"watching": sorted(conn.watching)}
        if cmd == "shutdown":
            self.shutdown()
            return {"stopping": True, "runs": len(self.runs)}
        raise ProtocolError(f"unhandled command {cmd!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Pacing and stream fan-out
    # ------------------------------------------------------------------
    def _advance_runs(self, wall_dt: float) -> None:
        for name in sorted(self.runs):
            run = self.runs[name]
            if run.done or run.paused:
                continue
            if self.turbo:
                run.advance_by(self.quantum_s)
            else:
                target = min(
                    run.end_s, self._targets[name] + wall_dt * self.rate
                )
                self._targets[name] = target
                run.advance_to(target)

    def _pump_streams(self) -> None:
        for conn in list(self._connections):
            for name in sorted(conn.watching):
                run = self.runs.get(name)
                if run is None:
                    conn.watching.pop(name, None)
                    continue
                cursor = conn.watching[name]
                cursor, lines = run.stream_lines(cursor)
                conn.watching[name] = cursor
                for line in lines:
                    conn.send_line(encode_event("snapshot", name, {"line": line}))
                # Announce completion exactly once per watcher — even one
                # that subscribed after the run already finished.
                if run.done and name not in conn.announced:
                    conn.announced.add(name)
                    conn.send_line(
                        encode_event(
                            "finished",
                            name,
                            {
                                "phase": run.builder.phase,
                                "error": run.error,
                                "result_ready": run.result_payload is not None,
                            },
                        )
                    )
            if conn.closed:
                self._drop(conn)

    # ------------------------------------------------------------------
    def _close_all(self) -> None:
        for conn in list(self._connections):
            self._drop(conn)
        for listener in self._listeners:
            try:
                if self._selector is not None:
                    self._selector.unregister(listener)
            except (KeyError, ValueError):
                pass
            listener.close()
        self._listeners.clear()
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        for run in self.runs.values():
            if not run.done:
                run.abort()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.socket_path or f"{self.host}:{self.port}"
        return f"ReproDaemon({where}, {len(self.runs)} runs)"


def _number(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{name!r} must be a number, got {value!r}")
    return float(value)
