"""The ``reprod`` control-socket protocol: line-delimited JSON.

One request per line, one response per line, plus unsolicited event
lines on connections that subscribed to a run's stream.  The framing is
deliberately primitive — any language with a socket and a JSON parser
can drive the daemon, and ``repro ctl`` is a thin convenience over it.

Requests::

    {"id": 1, "cmd": "budget", "args": {"run": "run0", "watts": 40.0}}

Responses echo the request id::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": {"type": "ServeError", "message": "..."}}

Events carry no id (nothing to correlate; they are pushed)::

    {"event": "snapshot", "run": "run0", "data": {...}}

The command table below is the single source of truth for argument
validation: the daemon rejects unknown commands and unknown/missing
arguments before any handler runs, and the client refuses to send them,
so a typoed knob fails loudly on whichever side sees it first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import ProtocolError

__all__ = [
    "COMMANDS",
    "MAX_LINE_BYTES",
    "Request",
    "decode_message",
    "decode_request",
    "encode_event",
    "encode_request",
    "encode_response",
]

#: A line larger than this is a protocol violation, not a big request —
#: scenario specs are a few KB; nothing legitimate approaches a MB.
MAX_LINE_BYTES = 1_048_576

#: command -> (required argument names, optional argument names).
COMMANDS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "ping": ((), ()),
    "submit": (("spec",), ("name", "paused")),
    "status": ((), ("run",)),
    "budget": (("run", "watts"), ()),
    "slo": (("run", "target_s"), ()),
    "pause": (("run",), ()),
    "resume": (("run",), ()),
    "drain": (("run",), ()),
    "stop": (("run",), ()),
    "result": (("run",), ()),
    "audit": (("run",), ("kind", "tail")),
    "watch": (("run",), ()),
    "unwatch": ((), ("run",)),
    "shutdown": ((), ()),
}


@dataclass(frozen=True)
class Request:
    """One validated command line."""

    id: int
    cmd: str
    args: Mapping[str, Any]


def _dumps(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def validate_command(cmd: str, args: Mapping[str, Any]) -> None:
    """Check a command name and argument set against the table."""
    try:
        required, optional = COMMANDS[cmd]
    except KeyError:
        known = ", ".join(sorted(COMMANDS))
        raise ProtocolError(
            f"unknown command {cmd!r} (known: {known})"
        ) from None
    missing = [name for name in required if name not in args]
    if missing:
        raise ProtocolError(
            f"command {cmd!r} is missing argument(s): {', '.join(missing)}"
        )
    allowed = set(required) | set(optional)
    unknown = sorted(set(args) - allowed)
    if unknown:
        raise ProtocolError(
            f"command {cmd!r} does not take argument(s): {', '.join(unknown)}"
        )


def encode_request(request_id: int, cmd: str, args: Mapping[str, Any]) -> str:
    """Serialise one request line (validated; no trailing newline)."""
    validate_command(cmd, args)
    return _dumps({"id": int(request_id), "cmd": cmd, "args": dict(args)})


def decode_request(line: str) -> Request:
    """Parse and validate one request line."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    request_id = payload.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError("request needs an integer 'id'")
    cmd = payload.get("cmd")
    if not isinstance(cmd, str):
        raise ProtocolError("request needs a string 'cmd'")
    args = payload.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError("request 'args' must be an object")
    unknown = sorted(set(payload) - {"id", "cmd", "args"})
    if unknown:
        raise ProtocolError(
            f"unknown request key(s): {', '.join(unknown)}"
        )
    validate_command(cmd, args)
    return Request(id=request_id, cmd=cmd, args=args)


def encode_response(
    request_id: Optional[int],
    *,
    result: Optional[Mapping[str, Any]] = None,
    error: Optional[BaseException] = None,
) -> str:
    """Serialise one response line (no trailing newline).

    Exactly one of ``result``/``error`` must be given; a ``None``
    request id answers a line so malformed its id never parsed.
    """
    if (result is None) == (error is None):
        raise ProtocolError("a response carries either a result or an error")
    if error is not None:
        return _dumps(
            {
                "id": request_id,
                "ok": False,
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                },
            }
        )
    return _dumps({"id": request_id, "ok": True, "result": dict(result or {})})


def encode_event(event: str, run: str, data: Mapping[str, Any]) -> str:
    """Serialise one pushed event line (no trailing newline)."""
    return _dumps({"event": event, "run": run, "data": dict(data)})


def decode_message(line: str) -> dict[str, Any]:
    """Parse one daemon-to-client line (response or event) on the client."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"daemon sent invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"daemon message must be a JSON object, got {type(payload).__name__}"
        )
    if "event" not in payload and "id" not in payload:
        raise ProtocolError("daemon message is neither a response nor an event")
    return payload
