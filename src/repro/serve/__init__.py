"""The ``reprod`` live control plane.

Everything else in the repository is batch: a scenario runs to
completion and the results are read post-mortem.  This package turns
the incremental stack lifecycle (:meth:`StackBuilder.tick`,
:meth:`Simulator.run_until`) into a long-running service with a live
control API — the serving posture of SLOs-Serve/InferLine and the
daemon shape of nrmd:

* :mod:`repro.serve.protocol` — the line-delimited JSON command
  protocol spoken over the control socket (requests, responses,
  streamed events), with schema validation on both ends;
* :mod:`repro.serve.hosted` — :class:`HostedRun`, one armed stack
  driven by simulated-time deadlines; wall-clock-free, so the sim core
  stays pure and every pacing decision lives in the daemon;
* :mod:`repro.serve.daemon` — :class:`ReproDaemon`, the single-threaded
  selector loop that owns the socket(s), paces hosted runs against the
  wall clock (``--rate`` sim-seconds per real second, or ``--turbo``
  quantum-chunked), dispatches commands and fans stream snapshots out
  to watchers;
* :mod:`repro.serve.client` — :class:`CtlClient`, the blocking client
  the ``repro ctl`` CLI and the tests drive the daemon with.

Live budget moves and SLO retargets flow through the guard layer
(:func:`repro.guard.apply_budget_change`, :func:`repro.guard.retarget_slo`)
so they are clamped to the feasible set and always leave an audit entry.
"""

from repro.serve.client import CtlClient
from repro.serve.daemon import ReproDaemon
from repro.serve.hosted import SERVE_PILLARS, HostedRun, ensure_serve_pillars
from repro.serve.protocol import (
    COMMANDS,
    Request,
    decode_message,
    decode_request,
    encode_event,
    encode_request,
    encode_response,
)

__all__ = [
    "COMMANDS",
    "Request",
    "decode_message",
    "decode_request",
    "encode_event",
    "encode_request",
    "encode_response",
    "HostedRun",
    "SERVE_PILLARS",
    "ensure_serve_pillars",
    "ReproDaemon",
    "CtlClient",
]
