"""One stack hosted inside the ``reprod`` daemon.

:class:`HostedRun` wraps a :class:`~repro.scenario.builder.StackBuilder`
and drives it purely by *simulated-time* deadlines: :meth:`advance_to`
is just :meth:`StackBuilder.tick` plus automatic collection at the end
of the drain window.  There is deliberately no wall clock in this
module — mapping real seconds to simulated deadlines (``--rate``,
``--turbo``) is the daemon's job — so hosted runs stay deterministic
and the equivalence goldens can drive one directly.

Live mutations go through the guard layer: :meth:`apply_budget` calls
:func:`repro.guard.apply_budget_change` (clamped to the feasible floor,
overdraw corrected by stepping the hottest instances down, audited) and
:meth:`retarget_slo` calls :func:`repro.guard.retarget_slo`.  Submitted
specs are normalised by :func:`ensure_serve_pillars` so every hosted
run has the metrics/audit/stream pillars those paths record into.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.errors import ServeError
from repro.experiments.export import scenario_payload
from repro.guard.budget import apply_budget_change, retarget_slo
from repro.scenario.builder import StackBuilder
from repro.scenario.spec import ScenarioSpec

__all__ = ["HostedRun", "SERVE_PILLARS", "ensure_serve_pillars"]

#: Pillars every hosted run arms: budget changes audit into ``audit``,
#: guard counters land in ``metrics``, watchers tail ``stream``.
SERVE_PILLARS = ("metrics", "audit", "stream")


def ensure_serve_pillars(spec: ScenarioSpec) -> ScenarioSpec:
    """The spec with the serve-mode observability pillars guaranteed on.

    A spec that already arms them is returned unchanged (same digest);
    otherwise the missing pillars are appended and the replacement is
    re-validated by the spec's own ``__post_init__``.
    """
    missing = tuple(p for p in SERVE_PILLARS if p not in spec.observe)
    if not missing:
        return spec
    return dataclasses.replace(spec, observe=spec.observe + missing)


class HostedRun:
    """An armed stack the daemon advances to external deadlines."""

    def __init__(self, name: str, spec: ScenarioSpec) -> None:
        self.name = name
        self.spec = ensure_serve_pillars(spec)
        self.builder = StackBuilder(self.spec)
        self.paused = False
        #: Serialised result payload once the run collected cleanly.
        self.result_payload: Optional[dict[str, Any]] = None
        #: What went wrong, when collection (or a tick) failed.
        self.error: Optional[str] = None
        self._stream_base = 0
        self.builder.build().arm().start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sim_now(self) -> float:
        assert self.builder.sim is not None
        return self.builder.sim.now

    @property
    def end_s(self) -> float:
        return self.builder.end_s

    @property
    def done(self) -> bool:
        """No further advancement possible: collected, aborted or failed."""
        return (
            self.result_payload is not None
            or self.error is not None
            or self.builder.phase in ("collected", "aborted")
        )

    def status(self) -> dict[str, Any]:
        payload = self.builder.status()
        payload["name"] = self.name
        payload["paused"] = self.paused
        payload["error"] = self.error
        payload["result_ready"] = self.result_payload is not None
        budget = self.builder.budget
        if budget is not None:
            payload["budget_watts"] = float(budget.budget_watts)
            payload["draw_watts"] = float(budget.draw())
        obs = self.builder.observability
        if obs is not None and obs.slo is not None:
            payload["slo_target_s"] = float(obs.slo.target_s)
            payload["slo_attainment"] = float(obs.slo.attainment())
        return payload

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------
    def advance_to(self, deadline_s: float) -> None:
        """Tick to ``deadline_s`` (clamped to :attr:`end_s`); collect when
        the drain window closes.  A failed tick or collect aborts the
        stack and parks the error — the daemon keeps serving."""
        if self.done or self.paused:
            return
        target = min(float(deadline_s), self.end_s)
        if target <= self.sim_now and not self._at_end(target):
            return
        try:
            self.builder.tick(target)
            if self.builder.finished:
                result = self.builder.collect()
                self.result_payload = scenario_payload(result)
        except Exception as exc:  # noqa: BLE001 - the daemon must survive
            self.error = f"{type(exc).__name__}: {exc}"
            self.builder.abort()

    def advance_by(self, delta_s: float) -> None:
        """Advance ``delta_s`` simulated seconds past the current clock."""
        self.advance_to(self.sim_now + float(delta_s))

    def _at_end(self, target: float) -> bool:
        """Whether a no-advance tick still matters: reaching the end of a
        zero-length drain window walks the drained transition."""
        return target >= self.end_s and not self.builder.finished

    def drain_now(self) -> None:
        """Fast-forward to the end of the drain window and collect."""
        self.paused = False
        self.advance_to(self.end_s)

    def abort(self) -> None:
        """Tear the stack down early; the run keeps its status entry."""
        if self.builder.phase != "collected":
            self.builder.abort()
            if self.error is None:
                self.error = "aborted by operator"

    # ------------------------------------------------------------------
    # Live control (guard-layer paths)
    # ------------------------------------------------------------------
    def apply_budget(
        self, watts: float, *, source: str = "ctl"
    ) -> dict[str, Any]:
        builder = self.builder
        if (
            builder.budget is None
            or builder.application is None
            or builder.controller is None
        ):
            raise ServeError(
                f"run {self.name!r} has no adjustable budget (sharded and "
                f"controllerless stacks cannot take live budget changes)"
            )
        if self.done:
            raise ServeError(f"run {self.name!r} has already finished")
        obs = builder.observability
        change = apply_budget_change(
            budget=builder.budget,
            application=builder.application,
            controller=builder.controller,
            requested_watts=float(watts),
            now=self.sim_now,
            audit=None if obs is None else obs.audit,
            metrics=None if obs is None else obs.metrics,
            source=source,
        )
        if obs is not None and obs.stream is not None:
            obs.stream.mark(
                "budget-change",
                requested_watts=change.requested_watts,
                applied_watts=change.applied_watts,
                step_downs=change.step_downs,
            )
        return change.to_dict()

    def retarget_slo(
        self, target_s: float, *, source: str = "ctl"
    ) -> dict[str, Any]:
        obs = self.builder.observability
        if obs is None or obs.slo is None:
            raise ServeError(
                f"run {self.name!r} has no SLO tracker; arm the 'slo' "
                f"pillar (with an slo_target_s option) to retarget live"
            )
        if self.done:
            raise ServeError(f"run {self.name!r} has already finished")
        retarget = retarget_slo(
            slo=obs.slo,
            target_s=float(target_s),
            now=self.sim_now,
            audit=obs.audit,
            metrics=obs.metrics,
            source=source,
        )
        if obs.stream is not None:
            obs.stream.mark(
                "slo-retarget",
                previous_target_s=retarget.previous_target_s,
                target_s=retarget.target_s,
            )
        return retarget.to_dict()

    def audit_entries(
        self, kind: Optional[str] = None, tail: Optional[int] = None
    ) -> list[dict[str, Any]]:
        """The run's audit log as dicts, optionally filtered by ``kind``
        (the entry discriminator) and truncated to the last ``tail``."""
        obs = self.builder.observability
        if obs is None or obs.audit is None:
            raise ServeError(
                f"run {self.name!r} has no audit log; arm the 'audit' pillar"
            )
        entries = obs.audit.to_dicts()
        if kind is not None:
            entries = [e for e in entries if e.get("kind") == kind]
        if tail is not None and tail >= 0:
            entries = entries[len(entries) - min(tail, len(entries)):]
        return entries

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream_lines(self, cursor: int) -> tuple[int, list[str]]:
        """Snapshot/mark lines appended since ``cursor``; returns the new
        cursor and the lines (empty when the stream pillar is dark)."""
        obs = self.builder.observability
        if obs is None or obs.stream is None:
            return cursor, []
        lines = obs.stream.lines
        if cursor >= len(lines):
            return cursor, []
        return len(lines), lines[cursor:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HostedRun({self.name!r}, phase={self.builder.phase}, "
            f"t={self.sim_now:.1f}/{self.end_s:.1f}s)"
        )
