"""Load levels relative to pipeline capacity.

"Three representative load levels (high, medium and low) are chosen
throughout the experiments based on the extent how the service stages are
saturated." (Section 8.1)

We anchor the levels to the *saturation rate* of the baseline deployment:
the throughput at which the slowest stage (one instance at the baseline
frequency) reaches 100 % utilisation.  Low load leaves serving time
dominant; high load pushes past saturation so queuing delay dominates —
the two regimes whose crossover drives the adaptive boosting results
(Figures 4, 10, 12).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.service.profile import ServiceProfile

__all__ = ["LoadLevel", "LoadLevels", "saturation_rate", "load_levels_for"]


class LoadLevel(enum.Enum):
    """The paper's three representative load levels."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class LoadLevels:
    """Arrival rates (qps) for the three levels of one application."""

    low_qps: float
    medium_qps: float
    high_qps: float

    def rate(self, level: LoadLevel) -> float:
        if level is LoadLevel.LOW:
            return self.low_qps
        if level is LoadLevel.MEDIUM:
            return self.medium_qps
        if level is LoadLevel.HIGH:
            return self.high_qps
        raise ConfigurationError(f"unknown load level: {level!r}")


def saturation_rate(
    profiles: Sequence[ServiceProfile],
    freq_ghz: float,
    instances_per_stage: Mapping[str, int] | int = 1,
) -> float:
    """Queries/second at which the slowest stage saturates.

    ``instances_per_stage`` scales each stage's capacity; scatter-gather
    stages behave like one pooled server for capacity purposes (the total
    work is fixed and split across the pool), so a count of 1 with the
    *total* demand is the right way to model them here.
    """
    if not profiles:
        raise ConfigurationError("need at least one profile")
    rates = []
    for profile in profiles:
        if isinstance(instances_per_stage, int):
            count = instances_per_stage
        else:
            count = instances_per_stage.get(profile.name, 1)
        if count < 1:
            raise ConfigurationError(
                f"stage {profile.name} needs >= 1 instance, got {count}"
            )
        rates.append(profile.service_rate(freq_ghz) * count)
    return min(rates)


def load_levels_for(
    profiles: Sequence[ServiceProfile],
    freq_ghz: float,
    low_fraction: float = 0.35,
    medium_fraction: float = 0.95,
    high_fraction: float = 1.3,
) -> LoadLevels:
    """The three load levels as fractions of the saturation rate.

    High load deliberately exceeds saturation (fraction > 1): under the
    static baseline the bottleneck queue grows for the whole run, which is
    what produces the paper's order-of-magnitude improvement headroom.
    """
    if not 0.0 < low_fraction < medium_fraction < high_fraction:
        raise ConfigurationError(
            "fractions must satisfy 0 < low < medium < high, got "
            f"{low_fraction}, {medium_fraction}, {high_fraction}"
        )
    rate = saturation_rate(profiles, freq_ghz)
    return LoadLevels(
        low_qps=rate * low_fraction,
        medium_qps=rate * medium_fraction,
        high_qps=rate * high_fraction,
    )
