"""Generic multi-stage application builder.

The named workloads (Sirius, NLP, Web Search) and the tests all build
their pipelines through :func:`build_application`, so stage wiring,
initial instance counts and initial frequency levels are configured in
exactly one place.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.cluster.machine import Machine
from repro.service.application import Application
from repro.service.profile import ServiceProfile
from repro.service.stage import StageKind
from repro.sim.engine import Simulator

__all__ = ["build_application"]


def build_application(
    name: str,
    sim: Simulator,
    machine: Machine,
    profiles: Sequence[ServiceProfile],
    initial_level: int,
    instances_per_stage: Mapping[str, int] | int = 1,
    stage_kinds: Optional[Mapping[str, StageKind]] = None,
) -> Application:
    """Build a pipeline and launch its initial instance pools.

    Parameters
    ----------
    profiles:
        One per stage, in pipeline order.
    initial_level:
        Ladder level every initial instance starts at (Table 2 uses the
        mid-ladder 1.8 GHz; Table 3 uses the top 2.4 GHz).
    instances_per_stage:
        Either a single count for all stages or a per-stage mapping
        (Table 3's "4 ASR services, 2 IMM services and 5 QA services").
    stage_kinds:
        Per-stage :class:`StageKind` overrides (Web Search marks its leaf
        tier ``SCATTER_GATHER``).
    """
    if not profiles:
        raise ConfigurationError("an application needs at least one stage profile")
    application = Application(name, sim, machine)
    kinds = stage_kinds or {}
    for profile in profiles:
        kind = kinds.get(profile.name, StageKind.PIPELINE)
        stage = application.add_stage(profile, kind=kind)
        if isinstance(instances_per_stage, int):
            count = instances_per_stage
        else:
            count = instances_per_stage.get(profile.name, 1)
        if count < 1:
            raise ConfigurationError(
                f"stage {profile.name} needs >= 1 initial instance, got {count}"
            )
        for _ in range(count):
            stage.launch_instance(initial_level)
    return application
