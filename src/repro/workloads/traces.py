"""Canned load traces for the runtime-behaviour experiments.

Figure 11 runs Sirius for ~900 s under a fluctuating load with a distinct
low-load valley "between 175s and 275s" where "the serving time of [the]
QA service instance dominates the response latency" and its frequency is
boosted to the maximum.  :func:`fig11_trace` reproduces that shape,
parameterised by the application's high-load rate so it transfers across
workloads.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.loadgen import PiecewiseLoad

__all__ = ["fig11_trace", "FIG11_DURATION_S"]

#: Figure 11's x-axis spans roughly 900 seconds.
FIG11_DURATION_S = 900.0


def fig11_trace(high_qps: float) -> PiecewiseLoad:
    """The Figure-11 load fluctuation, scaled to a given high-load rate.

    Shape: a ramp into heavy load over the first two minutes, the paper's
    low-load valley at 175-275 s, then alternating medium and heavy
    phases for the rest of the run.
    """
    if high_qps <= 0.0:
        raise ConfigurationError(f"high_qps must be > 0, got {high_qps}")
    return PiecewiseLoad(
        [
            (0.0, 0.55 * high_qps),
            (50.0, 0.90 * high_qps),
            (125.0, 1.15 * high_qps),
            (175.0, 0.30 * high_qps),
            (275.0, 1.05 * high_qps),
            (450.0, 0.75 * high_qps),
            (625.0, 1.20 * high_qps),
            (775.0, 0.90 * high_qps),
        ]
    )
