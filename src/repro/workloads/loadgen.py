"""Load generation.

"We design a load generator that submits user queries following Poisson
distribution that is widely used to mimic cloud workload." (Section 8.1)

The generator is a non-homogeneous Poisson process driven by a
:class:`LoadTrace` (constant for the Figure-10/12 load levels, piecewise
for the Figure-11 runtime-behaviour fluctuation).  Query demands are
sampled by a :class:`QueryFactory` from dedicated random streams, so two
runs with different controllers but the same seed replay byte-identical
workloads.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.units import exactly
from repro.service.application import Application
from repro.service.profile import ServiceProfile
from repro.service.query import Query
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import RandomStreams

__all__ = [
    "LoadTrace",
    "ConstantLoad",
    "PiecewiseLoad",
    "DiurnalLoad",
    "QueryFactory",
    "PoissonLoadGenerator",
]


class LoadTrace(ABC):
    """Arrival rate (queries/second) as a function of simulated time."""

    @abstractmethod
    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at ``time`` (must be > 0)."""


class ConstantLoad(LoadTrace):
    """A fixed arrival rate for the whole run."""

    def __init__(self, rate_qps: float) -> None:
        if rate_qps <= 0.0:
            raise ConfigurationError(f"rate must be > 0 qps, got {rate_qps}")
        self.rate_qps = float(rate_qps)

    def rate_at(self, time: float) -> float:
        return self.rate_qps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantLoad({self.rate_qps:g} qps)"


class PiecewiseLoad(LoadTrace):
    """Step-wise rates: ``segments`` is [(start_time, rate), ...].

    The first segment must start at 0; each segment's rate holds until the
    next segment begins (the last holds forever).
    """

    def __init__(self, segments: Sequence[tuple[float, float]]) -> None:
        if not segments:
            raise ConfigurationError("piecewise load needs at least one segment")
        if not exactly(segments[0][0], 0.0):
            raise ConfigurationError(
                f"first segment must start at t=0, got {segments[0][0]}"
            )
        previous_start = -1.0
        for start, rate in segments:
            if start <= previous_start:
                raise ConfigurationError(
                    "segment start times must be strictly increasing"
                )
            if rate <= 0.0:
                raise ConfigurationError(f"segment rate must be > 0, got {rate}")
            previous_start = start
        self.segments = tuple((float(s), float(r)) for s, r in segments)

    def rate_at(self, time: float) -> float:
        if time < 0.0:
            raise ConfigurationError(f"time must be >= 0, got {time}")
        current = self.segments[0][1]
        for start, rate in self.segments:
            if time >= start:
                current = rate
            else:
                break
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseLoad({len(self.segments)} segments)"


class DiurnalLoad(LoadTrace):
    """A sinusoidal day/night pattern around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*t/period + phase))`` —
    the smooth load swing of user-facing services ("the unpredictable
    user access pattern", Section 1) for experiments longer than the
    Figure-11 trace.  ``amplitude`` must stay below 1 so the rate is
    always positive.
    """

    def __init__(
        self,
        base_qps: float,
        amplitude: float = 0.5,
        period_s: float = 86_400.0,
        phase_rad: float = 0.0,
    ) -> None:
        if base_qps <= 0.0:
            raise ConfigurationError(f"base rate must be > 0, got {base_qps}")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1), got {amplitude}"
            )
        if period_s <= 0.0:
            raise ConfigurationError(f"period must be > 0, got {period_s}")
        self.base_qps = float(base_qps)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase_rad = float(phase_rad)

    def rate_at(self, time: float) -> float:
        import math

        swing = math.sin(2.0 * math.pi * time / self.period_s + self.phase_rad)
        return self.base_qps * (1.0 + self.amplitude * swing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiurnalLoad(base={self.base_qps:g} qps, "
            f"amplitude={self.amplitude:g}, period={self.period_s:g}s)"
        )


class QueryFactory:
    """Samples per-stage demands for new queries from named streams."""

    def __init__(
        self,
        profiles: Sequence[ServiceProfile],
        streams: RandomStreams,
    ) -> None:
        if not profiles:
            raise ConfigurationError("query factory needs at least one profile")
        self.profiles = tuple(profiles)
        self.streams = streams
        self._qid = itertools.count(0)

    def create(self) -> Query:
        """A fresh query with demands drawn for every stage."""
        demands = {
            profile.name: profile.demand.sample(
                self.streams.stream(f"demand/{profile.name}")
            )
            for profile in self.profiles
        }
        return Query(qid=next(self._qid), demands=demands)


class PoissonLoadGenerator:
    """Submits queries to an application as a Poisson process."""

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        factory: QueryFactory,
        trace: LoadTrace,
        streams: RandomStreams,
        duration_s: float,
    ) -> None:
        if duration_s <= 0.0:
            raise ConfigurationError(f"duration must be > 0, got {duration_s}")
        self.sim = sim
        self.application = application
        self.factory = factory
        self.trace = trace
        self.duration_s = float(duration_s)
        self._arrival_stream = streams.stream("arrivals")
        self._started = False
        self._end_time: Optional[float] = None
        self.queries_submitted = 0

    def start(self) -> None:
        """Arm the arrival process; queries stop after ``duration_s``."""
        if self._started:
            raise ConfigurationError("load generator already started")
        self._started = True
        self._end_time = self.sim.now + self.duration_s
        self._schedule_next()

    def _schedule_next(self) -> None:
        rate = self.trace.rate_at(self.sim.now)
        gap = self._arrival_stream.exponential(1.0 / rate)
        arrival_time = self.sim.now + gap
        assert self._end_time is not None
        if arrival_time > self._end_time:
            return
        self.sim.schedule_at(
            arrival_time, self._arrive, priority=EventPriority.ARRIVAL
        )

    def _arrive(self) -> None:
        query = self.factory.create()
        self.application.submit(query)
        self.queries_submitted += 1
        self._schedule_next()
