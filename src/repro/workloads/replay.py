"""Trace replay: drive an application with recorded arrival times.

Poisson arrivals (Section 8.1) are the paper's model, but a production
study replays *recorded* traffic.  :class:`ReplayLoadGenerator` submits
queries at an explicit list of arrival times — captured from a previous
run's query log, a production trace, or a hand-built worst case — with
demands still drawn from the profiles (or replayed too, by passing
explicit per-arrival demands).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.service.application import Application
from repro.service.query import Query
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.workloads.loadgen import QueryFactory

__all__ = ["ReplayLoadGenerator"]


class ReplayLoadGenerator:
    """Submit queries at exactly the given arrival times."""

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        factory: QueryFactory,
        arrival_times: Sequence[float],
        demands: Optional[Sequence[Mapping[str, float]]] = None,
    ) -> None:
        if not arrival_times:
            raise ConfigurationError("replay needs at least one arrival")
        previous = -1.0
        for time in arrival_times:
            if time < 0.0:
                raise ConfigurationError(f"arrival time must be >= 0, got {time}")
            if time < previous:
                raise ConfigurationError("arrival times must be non-decreasing")
            previous = time
        if demands is not None and len(demands) != len(arrival_times):
            raise ConfigurationError(
                f"got {len(demands)} demand records for "
                f"{len(arrival_times)} arrivals"
            )
        self.sim = sim
        self.application = application
        self.factory = factory
        self.arrival_times = tuple(float(t) for t in arrival_times)
        self.demands = tuple(demands) if demands is not None else None
        self._started = False
        self.queries_submitted = 0

    def start(self) -> None:
        """Schedule every arrival; times are relative to the current clock."""
        if self._started:
            raise ConfigurationError("replay generator already started")
        self._started = True
        base = self.sim.now
        for index, offset in enumerate(self.arrival_times):
            self.sim.schedule_at(
                base + offset,
                self._arrive,
                index,
                priority=EventPriority.ARRIVAL,
            )

    def _arrive(self, index: int) -> None:
        if self.demands is not None:
            query = Query(qid=index, demands=dict(self.demands[index]))
        else:
            query = self.factory.create()
        self.application.submit(query)
        self.queries_submitted += 1
