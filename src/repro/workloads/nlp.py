"""The Natural Language Processing workload (Figure 9).

The NLP application is Senna [Collobert et al.] restructured into three
services: Part-of-Speech tagging (POS), syntactic parsing (PSG) and
Semantic Role Labelling (SRL) — "the semantic parsing of the text in
natural language, which serves the automatic summarization commonly
adopted in search engines" (Section 7.1; Table-2 stage setup "1 POS
service, 1 PSG service and 1 SRL service").

Calibration: POS is cheap tagging, PSG's constituency parsing is
mid-weight, and SRL — which consumes the parse — dominates; all three are
largely compute-bound neural inference, so their frequency speedups are
close to linear.
"""

from __future__ import annotations

from typing import Mapping

from repro.cluster.machine import Machine
from repro.service.application import Application
from repro.service.demand import LogNormalDemand
from repro.service.profile import PowerLawSpeedup, ServiceProfile
from repro.sim.engine import Simulator
from repro.workloads.levels import LoadLevels, load_levels_for
from repro.workloads.synthetic import build_application

__all__ = ["NLP_STAGES", "nlp_profiles", "build_nlp", "nlp_load_levels"]

#: Pipeline order of the NLP stages.
NLP_STAGES = ("POS", "PSG", "SRL")

_LADDER_FLOOR_GHZ = 1.2


def nlp_profiles() -> list[ServiceProfile]:
    """Offline profiles of the three Senna services."""
    return [
        ServiceProfile(
            name="POS",
            demand=LogNormalDemand(mean_seconds=0.12, sigma=0.40),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=0.90),
        ),
        ServiceProfile(
            name="PSG",
            demand=LogNormalDemand(mean_seconds=0.55, sigma=0.55),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=1.00),
        ),
        ServiceProfile(
            name="SRL",
            demand=LogNormalDemand(mean_seconds=0.85, sigma=0.60),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=0.95),
        ),
    ]


def build_nlp(
    sim: Simulator,
    machine: Machine,
    initial_level: int,
    instances_per_stage: Mapping[str, int] | int = 1,
) -> Application:
    """Build the NLP pipeline with its initial instance pools."""
    return build_application(
        name="nlp",
        sim=sim,
        machine=machine,
        profiles=nlp_profiles(),
        initial_level=initial_level,
        instances_per_stage=instances_per_stage,
    )


def nlp_load_levels(baseline_freq_ghz: float = 1.8) -> LoadLevels:
    """The low/medium/high arrival rates for the Table-2 deployment."""
    return load_levels_for(nlp_profiles(), baseline_freq_ghz)
