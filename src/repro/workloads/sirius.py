"""The Sirius intelligent-personal-assistant workload (Figures 1, 8).

Sirius [Hauswald et al., ASPLOS'15] processes a voice-and-vision query
through Automatic Speech Recognition (ASR), Image Matching (IMM) and
Question-Answering (QA) stages (Figure 8; the evaluation's Table-2 stage
setup is "1 ASR service, 1 IMM service and 1 QA service").

Demand calibration (seconds of work at the 1.2 GHz ladder floor) follows
the stage behaviour the paper reports: QA is the heaviest stage and the
usual bottleneck, ASR is the second bottleneck under load (Figure 11),
and IMM is light.  IMM's sub-linear frequency speedup (``beta < 1``)
models its memory-bound feature matching, which is why boosting IMM is a
poor use of power (Figure 2).
"""

from __future__ import annotations

from typing import Mapping

from repro.cluster.machine import Machine
from repro.service.application import Application
from repro.service.demand import LogNormalDemand
from repro.service.profile import PowerLawSpeedup, ServiceProfile
from repro.sim.engine import Simulator
from repro.workloads.levels import LoadLevels, load_levels_for
from repro.workloads.synthetic import build_application

__all__ = [
    "SIRIUS_STAGES",
    "sirius_profiles",
    "build_sirius",
    "sirius_load_levels",
]

#: Pipeline order of the Sirius stages.
SIRIUS_STAGES = ("ASR", "IMM", "QA")

_LADDER_FLOOR_GHZ = 1.2


def sirius_profiles() -> list[ServiceProfile]:
    """Offline profiles of the three Sirius services."""
    return [
        ServiceProfile(
            name="ASR",
            demand=LogNormalDemand(mean_seconds=0.50, sigma=0.45),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=0.85),
        ),
        ServiceProfile(
            name="IMM",
            demand=LogNormalDemand(mean_seconds=0.20, sigma=0.50),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=0.55),
        ),
        ServiceProfile(
            name="QA",
            demand=LogNormalDemand(mean_seconds=1.00, sigma=0.60),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=1.00),
        ),
    ]


def build_sirius(
    sim: Simulator,
    machine: Machine,
    initial_level: int,
    instances_per_stage: Mapping[str, int] | int = 1,
) -> Application:
    """Build the Sirius pipeline with its initial instance pools."""
    return build_application(
        name="sirius",
        sim=sim,
        machine=machine,
        profiles=sirius_profiles(),
        initial_level=initial_level,
        instances_per_stage=instances_per_stage,
    )


def sirius_load_levels(baseline_freq_ghz: float = 1.8) -> LoadLevels:
    """The low/medium/high arrival rates for the Table-2 deployment."""
    return load_levels_for(sirius_profiles(), baseline_freq_ghz)
