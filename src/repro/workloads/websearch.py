"""The Web Search workload (Section 8.4, Table 3, Figure 14).

Web Search (Apache Nutch in the paper) is the classic scatter-gather
topology: a query fans out to every *leaf* serving a shard of the index,
and an *aggregation* service merges the partial results.  Table 3 deploys
"1 aggregation service and 10 leaf services" at the maximum frequency
with a 250 ms latency QoS.

The leaf tier is a ``SCATTER_GATHER`` stage: each query's total leaf work
is split evenly across the running leaves, so withdrawing a leaf (as
PowerChief's conservation policy may) re-shards its load onto the
survivors — trading leaf-tier latency for the withdrawn core's power,
exactly the slack-for-power exchange Figure 14 exercises.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.machine import Machine
from repro.service.application import Application
from repro.service.demand import LogNormalDemand
from repro.service.profile import PowerLawSpeedup, ServiceProfile
from repro.service.stage import StageKind
from repro.sim.engine import Simulator
from repro.workloads.synthetic import build_application

__all__ = [
    "WEBSEARCH_STAGES",
    "WEBSEARCH_QOS_TARGET_S",
    "websearch_profiles",
    "build_websearch",
]

#: Pipeline order: leaves first, then aggregation.
WEBSEARCH_STAGES = ("LEAF", "AGG")

#: Table 3's latency QoS for Web Search.
WEBSEARCH_QOS_TARGET_S = 0.250

_LADDER_FLOOR_GHZ = 1.2


def websearch_profiles() -> list[ServiceProfile]:
    """Offline profiles for the leaf tier and the aggregator.

    The LEAF demand is the *total* index-scan work of a query at the
    ladder floor; the scatter-gather stage divides it across the running
    leaves (0.1 s per leaf with the Table-3 pool of ten).
    """
    return [
        ServiceProfile(
            name="LEAF",
            demand=LogNormalDemand(mean_seconds=1.00, sigma=0.55),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=1.00),
        ),
        ServiceProfile(
            name="AGG",
            demand=LogNormalDemand(mean_seconds=0.06, sigma=0.30),
            speedup=PowerLawSpeedup(_LADDER_FLOOR_GHZ, beta=0.80),
        ),
    ]


def build_websearch(
    sim: Simulator,
    machine: Machine,
    initial_level: int,
    instances_per_stage: Optional[Mapping[str, int]] = None,
) -> Application:
    """Build the Web Search topology (default: Table 3's 10 leaves + 1 agg)."""
    if instances_per_stage is None:
        instances_per_stage = {"LEAF": 10, "AGG": 1}
    return build_application(
        name="websearch",
        sim=sim,
        machine=machine,
        profiles=websearch_profiles(),
        initial_level=initial_level,
        instances_per_stage=instances_per_stage,
        stage_kinds={"LEAF": StageKind.SCATTER_GATHER},
    )
