"""Workloads: load generation and the paper's three applications.

Poisson load generation over constant or piecewise traces
(:class:`PoissonLoadGenerator`), capacity-anchored load levels
(:func:`load_levels_for`), and builders for the evaluated applications:
Sirius (ASR -> IMM -> QA), NLP/Senna (POS -> PSG -> SRL) and Web Search
(scatter-gather leaves -> aggregation).
"""

from repro.workloads.levels import (
    LoadLevel,
    LoadLevels,
    load_levels_for,
    saturation_rate,
)
from repro.workloads.loadgen import (
    ConstantLoad,
    DiurnalLoad,
    LoadTrace,
    PiecewiseLoad,
    PoissonLoadGenerator,
    QueryFactory,
)
from repro.workloads.replay import ReplayLoadGenerator
from repro.workloads.nlp import NLP_STAGES, build_nlp, nlp_load_levels, nlp_profiles
from repro.workloads.sirius import (
    SIRIUS_STAGES,
    build_sirius,
    sirius_load_levels,
    sirius_profiles,
)
from repro.workloads.synthetic import build_application
from repro.workloads.traces import FIG11_DURATION_S, fig11_trace
from repro.workloads.websearch import (
    WEBSEARCH_QOS_TARGET_S,
    WEBSEARCH_STAGES,
    build_websearch,
    websearch_profiles,
)

__all__ = [
    "LoadLevel",
    "LoadLevels",
    "load_levels_for",
    "saturation_rate",
    "ConstantLoad",
    "DiurnalLoad",
    "LoadTrace",
    "PiecewiseLoad",
    "PoissonLoadGenerator",
    "QueryFactory",
    "ReplayLoadGenerator",
    "NLP_STAGES",
    "build_nlp",
    "nlp_load_levels",
    "nlp_profiles",
    "SIRIUS_STAGES",
    "build_sirius",
    "sirius_load_levels",
    "sirius_profiles",
    "build_application",
    "FIG11_DURATION_S",
    "fig11_trace",
    "WEBSEARCH_QOS_TARGET_S",
    "WEBSEARCH_STAGES",
    "build_websearch",
    "websearch_profiles",
]
