"""Latency metrics for bottleneck identification.

Table 1 of the paper lists the candidate metrics (average / 99th
queuing, serving and processing delay).  Their shared weakness is that
"they only present the historical processing ability of the service
instance without considering its current load" (Section 4.2), so
PowerChief combines history with the realtime queue length:

    ``LatencyMetric = L_i * q_i + s_i``                      (Equation 1)

the delay an incoming query should expect, since the instance must work
through its queue first.  All metric kinds are implemented so the
ablation benchmark can compare Equation 1 against the plain Table-1
metrics.
"""

from __future__ import annotations

import enum

from repro.service.command_center import CommandCenter
from repro.service.instance import ServiceInstance
from repro.units import SimTime

__all__ = ["MetricKind", "equation1_metric", "compute_metric"]


class MetricKind(enum.Enum):
    """Which latency metric drives bottleneck identification."""

    AVG_QUEUING = "avg_queuing"
    AVG_SERVING = "avg_serving"
    AVG_PROCESSING = "avg_processing"
    P99_QUEUING = "p99_queuing"
    P99_SERVING = "p99_serving"
    P99_PROCESSING = "p99_processing"
    POWERCHIEF = "powerchief"


def equation1_metric(
    queue_length: int, avg_queuing: float, avg_serving: float
) -> SimTime:
    """Equation 1: expected delay ``L * q + s`` for an incoming query."""
    if queue_length < 0:
        raise ValueError(f"queue length must be >= 0, got {queue_length}")
    if avg_queuing < 0.0 or avg_serving < 0.0:
        raise ValueError("latency statistics must be >= 0")
    return SimTime(queue_length * avg_queuing + avg_serving)


def compute_metric(
    command_center: CommandCenter,
    instance: ServiceInstance,
    kind: MetricKind = MetricKind.POWERCHIEF,
) -> SimTime:
    """Evaluate a latency metric for one instance from windowed statistics."""
    if kind is MetricKind.POWERCHIEF:
        return equation1_metric(
            instance.queue_length,
            command_center.avg_queuing(instance),
            command_center.avg_serving(instance),
        )
    if kind is MetricKind.AVG_QUEUING:
        return SimTime(command_center.avg_queuing(instance))
    if kind is MetricKind.AVG_SERVING:
        return SimTime(command_center.avg_serving(instance))
    if kind is MetricKind.AVG_PROCESSING:
        return SimTime(
            command_center.avg_queuing(instance)
            + command_center.avg_serving(instance)
        )
    if kind is MetricKind.P99_QUEUING:
        return SimTime(command_center.p99_queuing(instance))
    if kind is MetricKind.P99_SERVING:
        return SimTime(command_center.p99_serving(instance))
    if kind is MetricKind.P99_PROCESSING:
        # p99 of the per-query sums q+s, NOT p99(q) + p99(s): percentiles
        # are not additive, and summing the marginals overstates the tail
        # whenever queuing and serving delays are anti-correlated.
        return SimTime(command_center.p99_processing(instance))
    raise ValueError(f"unknown metric kind: {kind!r}")
