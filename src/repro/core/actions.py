"""Action records emitted by controllers.

Every decision a controller applies — DVFS level changes, instance
launches, withdrawals, skipped intervals — is logged as a typed record.
The Figure-11 runtime-behaviour experiment and the tests reconstruct the
controller's story from this log.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ActionRecord",
    "FrequencyChangeAction",
    "InstanceLaunchAction",
    "InstanceWithdrawAction",
    "SkipAction",
]


@dataclass(frozen=True)
class ActionRecord:
    """Base record: when the action happened and which controller did it."""

    time: float
    controller: str


@dataclass(frozen=True)
class FrequencyChangeAction(ActionRecord):
    """A DVFS retune of one instance's core.

    ``reason`` distinguishes boosts from recycling from QoS conservation.
    """

    instance_name: str
    stage_name: str
    from_level: int
    to_level: int
    reason: str


@dataclass(frozen=True)
class InstanceLaunchAction(ActionRecord):
    """A new instance launched into a stage (instance boosting)."""

    instance_name: str
    stage_name: str
    level: int
    stolen_jobs: int


@dataclass(frozen=True)
class InstanceWithdrawAction(ActionRecord):
    """An underutilized instance withdrawn and its power recycled."""

    instance_name: str
    stage_name: str
    redirected_jobs: int


@dataclass(frozen=True)
class SkipAction(ActionRecord):
    """An interval where the controller deliberately did nothing."""

    reason: str
