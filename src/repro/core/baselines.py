"""Baseline policies the paper compares against (Sections 7.1, 8.1, 8.2).

* :class:`StaticController` — the *stage-agnostic power allocation*
  baseline: "divides the power budget equally across stages", one instance
  per stage at the mid-ladder frequency, never adjusted.
* :class:`FreqBoostController` — "frequency boosting consistently
  increases the frequency of the service instance that is identified as
  bottleneck service".
* :class:`InstBoostController` — "instance boosting always launches a new
  instance to accelerate the bottleneck service by sharing its load.  The
  new instance takes the same frequency as the bottleneck service."

Both single-technique baselines reuse PowerChief's bottleneck
identification and power reallocation *without instance withdraw*, exactly
as Section 8.2 sets up the comparison — which is what produces the
Figure-11(b) lock-in, where every core ends at the ladder floor and no
further clone can be funded.
"""

from __future__ import annotations

from repro.core.controller import BaseController

__all__ = ["StaticController", "FreqBoostController", "InstBoostController"]

_EPSILON_WATTS = 1e-9


class StaticController(BaseController):
    """Stage-agnostic equal power split; takes no runtime action."""

    name = "static"

    def adjust(self, now: float) -> None:
        self._skip("static allocation never adjusts")


class FreqBoostController(BaseController):
    """Always frequency-boost the bottleneck service.

    Per boosting interval the bottleneck is raised to the level that one
    instance's worth of extra power buys (the same ``calNewFreq``
    equivalence PowerChief's decision engine uses, Section 5.2), recycling
    exactly the required watts from the fastest instances.  The
    power-equivalence cap is what produces the measured step behaviour of
    Figure 11(a) — e.g. 1.8 GHz -> 2.3 GHz in the first interval with the
    victims dropped to 1.2 GHz and 1.6 GHz — instead of a pathological
    jump straight to the ladder top that would starve every other stage
    under the cubic power model.
    """

    name = "freq-boost"

    def adjust(self, now: float) -> None:
        ranked = self.identifier.ranked(self.application)
        if len(ranked) >= 2:
            spread = ranked[-1].metric - ranked[0].metric
            if spread < self.config.balance_threshold_s:
                self._skip(
                    f"metric spread {spread:.4f}s below balance threshold"
                )
                return
        bottleneck = ranked[-1].instance
        victims = [entry.instance for entry in ranked[:-1]]
        ladder = self.budget.machine.ladder
        model = self.budget.machine.power_model
        if bottleneck.level >= ladder.max_level:
            self._skip(f"bottleneck {bottleneck.name} already at max frequency")
            return
        # One instance's worth of power is the boost allowance.
        current_power = model.power_of_level(ladder, bottleneck.level)
        allowance = current_power
        plan = self.recycler.plan(
            max(0.0, allowance - self.budget.available()), victims
        )
        fundable = self.budget.available() + plan.recycled_watts
        target = model.max_level_within(
            ladder, current_power + min(fundable, allowance)
        )
        if target is None or target <= bottleneck.level:
            self._skip("no higher frequency level affordable")
            return
        exact_need = model.power_of_level(ladder, target) - current_power
        exact_plan = self.recycler.plan(
            max(0.0, exact_need - self.budget.available()), victims
        )
        self.apply_recycle_plan(exact_plan)
        self.set_instance_level(bottleneck, target, reason="boost")


class InstBoostController(BaseController):
    """Always clone the bottleneck if the clone's power can be funded."""

    name = "inst-boost"

    def adjust(self, now: float) -> None:
        ranked = self.identifier.ranked(self.application)
        if len(ranked) >= 2:
            spread = ranked[-1].metric - ranked[0].metric
            if spread < self.config.balance_threshold_s:
                self._skip(
                    f"metric spread {spread:.4f}s below balance threshold"
                )
                return
        bottleneck = ranked[-1].instance
        victims = [entry.instance for entry in ranked[:-1]]
        model = self.budget.machine.power_model
        ladder = self.budget.machine.ladder
        clone_cost = model.power_of_level(ladder, bottleneck.level)
        plan = self.recycler.plan(
            max(0.0, clone_cost - self.budget.available()), victims
        )
        fundable = self.budget.available() + plan.recycled_watts
        if fundable + _EPSILON_WATTS < clone_cost:
            # The Figure-11(b) lock-in: everyone at the floor, no clone fits.
            self._skip(
                f"cannot fund a clone at level {bottleneck.level} "
                f"({fundable:.2f} W < {clone_cost:.2f} W)"
            )
            return
        if self.budget.machine.free_core_count() == 0:
            self._skip("no free core for a clone")
            return
        self.apply_recycle_plan(plan)
        self.launch_clone(bottleneck)
