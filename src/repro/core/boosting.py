"""The adaptive boosting decision engine (Section 5.3, Algorithm 1).

Given the identified bottleneck instance, the engine decides — without
applying anything — between:

* **instance boosting**: clone the bottleneck at its current frequency and
  offload half its queue (Section 5.1);
* **frequency boosting**: raise the bottleneck's DVFS level using power
  equivalent to what the clone would have cost (Section 5.2);
* **no action**: nothing affordable would help (bottleneck at the top
  level with no instance power available).

Following Algorithm 1: power is first recycled toward the cost ``p`` of a
clone; if even then a clone is unaffordable (or no free core exists) the
engine falls back to frequency boosting with the power that *is*
available; if the realtime queue length is 2 or less a clone "hardly
alleviates the load" and frequency boosting is preferred outright;
otherwise the Equation-2 and Equation-3 expected delays are compared and
the smaller wins.

Two deliberate refinements over the pseudocode:

* once the technique is chosen, the recycle plan is re-planned for the
  power that technique actually needs, so victims are never slowed down
  for watts nobody uses;
* **de-boost cloning**: Algorithm 1 prices a clone at the bottleneck's
  *current* power, so a previously frequency-boosted bottleneck (e.g.
  2.4 GHz at 10 W) can never be cloned under a tight budget and the
  engine would skip forever while the queue grows.  When that happens and
  the queue is deep, the engine instead lowers the bottleneck to the
  highest level at which a *pair* (bottleneck + clone at the same level)
  fits the budget and clones there — which is exactly the
  many-instances-near-the-floor configuration Figure 11(c) shows the
  authors' system converging to.  Disable with
  ``enable_deboost_clone=False`` to ablate (the engine then reproduces
  the skip-forever lock-in).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.budget import PowerBudget
from repro.cluster.frequency import FrequencyLadder
from repro.cluster.machine import Machine
from repro.cluster.power import PowerModel
from repro.core.estimators import (
    frequency_boost_expected_delay,
    instance_boost_expected_delay,
    unboosted_expected_delay,
)
from repro.core.recycling import PowerRecycler, RecyclePlan
from repro.service.command_center import CommandCenter
from repro.service.instance import ServiceInstance

__all__ = ["BoostKind", "BoostingDecision", "BoostingDecisionEngine"]

_EPSILON_WATTS = 1e-9


class BoostKind(enum.Enum):
    """Which boosting technique the engine selected."""

    INSTANCE = "instance"
    FREQUENCY = "frequency"
    NONE = "none"


@dataclass
class BoostingDecision:
    """The engine's verdict plus everything needed to apply or audit it.

    ``target_level`` means: for FREQUENCY, the bottleneck's new level; for
    INSTANCE with a value set, a de-boost clone — the bottleneck is
    lowered to that level and the clone launched at it (``None`` keeps
    the plain same-frequency clone of Section 5.1).
    """

    kind: BoostKind
    bottleneck: ServiceInstance
    recycle_plan: RecyclePlan
    target_level: Optional[int] = None
    expected_delay_instance: Optional[float] = None
    expected_delay_frequency: Optional[float] = None
    reason: str = ""

    @property
    def is_actionable(self) -> bool:
        return self.kind is not BoostKind.NONE


class BoostingDecisionEngine:
    """Implements Algorithm 1 over live command-center statistics."""

    def __init__(
        self,
        command_center: CommandCenter,
        budget: PowerBudget,
        machine: Machine,
        recycler: PowerRecycler,
        min_queue_for_instance: int = 2,
        enable_deboost_clone: bool = True,
    ) -> None:
        if min_queue_for_instance < 0:
            raise ValueError(
                f"min_queue_for_instance must be >= 0, got {min_queue_for_instance}"
            )
        self.command_center = command_center
        self.budget = budget
        self.machine = machine
        self.recycler = recycler
        self.min_queue_for_instance = min_queue_for_instance
        self.enable_deboost_clone = enable_deboost_clone

    # ------------------------------------------------------------------
    @property
    def ladder(self) -> FrequencyLadder:
        return self.machine.ladder

    @property
    def power_model(self) -> PowerModel:
        return self.machine.power_model

    # ------------------------------------------------------------------
    def select(
        self,
        bottleneck: ServiceInstance,
        victims_fast_to_slow: Sequence[ServiceInstance],
    ) -> BoostingDecision:
        """Algorithm 1's SELECTBOOSTING for the given bottleneck.

        ``victims_fast_to_slow`` is the metric-ranked instance list with
        the bottleneck itself excluded (it never donates power to its own
        boost).
        """
        victims = [inst for inst in victims_fast_to_slow if inst is not bottleneck]
        clone_cost = self.power_model.power_of_level(self.ladder, bottleneck.level)
        avail = self.budget.available()

        # Lines 7-10: recycle toward the cost of a clone if short.
        clone_plan = self.recycler.plan(max(0.0, clone_cost - avail), victims)
        total_for_clone = avail + clone_plan.recycled_watts
        can_launch = (
            total_for_clone + _EPSILON_WATTS >= clone_cost
            and self.machine.free_core_count() > 0
        )

        queue_length = bottleneck.queue_length
        avg_queuing = self.command_center.avg_queuing(bottleneck)
        avg_serving = self.command_center.avg_serving(bottleneck)

        # Lines 11-12: cannot launch — frequency boosting with avail power.
        if not can_launch:
            freq_decision = self._frequency_decision(
                bottleneck,
                victims,
                extra_watts=min(total_for_clone, clone_cost),
                reason="instance launch unaffordable; frequency boosting "
                "with available power",
            )
            if (
                self.enable_deboost_clone
                and queue_length > self.min_queue_for_instance
            ):
                pair = self._deboost_clone_decision(
                    bottleneck, victims, queue_length, avg_queuing, avg_serving
                )
                if pair is not None and self._pair_beats(pair, freq_decision):
                    return pair
            return freq_decision

        # Lines 25-26: short queue — a clone hardly alleviates the load.
        if queue_length <= self.min_queue_for_instance:
            return self._frequency_decision(
                bottleneck,
                victims,
                extra_watts=clone_cost,
                reason=f"queue length {queue_length} <= "
                f"{self.min_queue_for_instance}; frequency boosting preferred",
            )

        # Lines 15-24: compare expected delays at equal power cost.
        delay_instance = instance_boost_expected_delay(
            queue_length, avg_queuing, avg_serving
        )
        target_level = self._equivalent_level(bottleneck, clone_cost)
        alpha = bottleneck.profile.speedup.alpha(
            bottleneck.frequency_ghz, self.ladder.frequency_of(target_level)
        )
        delay_frequency = frequency_boost_expected_delay(
            alpha, queue_length, avg_queuing, avg_serving
        )

        if delay_instance < delay_frequency:
            return BoostingDecision(
                kind=BoostKind.INSTANCE,
                bottleneck=bottleneck,
                recycle_plan=clone_plan,
                expected_delay_instance=delay_instance,
                expected_delay_frequency=delay_frequency,
                reason=f"T_inst={delay_instance:.4f}s < T_freq={delay_frequency:.4f}s",
            )
        decision = self._frequency_decision(
            bottleneck,
            victims,
            extra_watts=clone_cost,
            reason=f"T_freq={delay_frequency:.4f}s <= T_inst={delay_instance:.4f}s",
        )
        decision.expected_delay_instance = delay_instance
        decision.expected_delay_frequency = delay_frequency
        return decision

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deboost_clone_decision(
        self,
        bottleneck: ServiceInstance,
        victims: list[ServiceInstance],
        queue_length: int,
        avg_queuing: float,
        avg_serving: float,
    ) -> Optional[BoostingDecision]:
        """A clone at a lower shared level, if the pair fits the budget.

        Finds the highest level ``L'`` with ``2 * P(L') <=`` (available
        power + everything the victims could recycle + the bottleneck's
        own reallocated draw), and estimates the pair's expected delay as
        Equation 2 scaled by the de-boost slowdown.  Returns ``None``
        when no pair fits, no core is free, or the pair would not even
        beat doing nothing.
        """
        if self.machine.free_core_count() == 0:
            return None
        available = self.budget.available()
        max_recyclable = sum(
            self.power_model.recyclable(self.ladder, victim.level)
            for victim in victims
        )
        bottleneck_power = self.power_model.power_of_level(
            self.ladder, bottleneck.level
        )
        pair_budget = available + max_recyclable + bottleneck_power
        level = self.power_model.max_level_within(self.ladder, pair_budget / 2.0)
        if level is None or level >= bottleneck.level:
            return None
        slowdown = bottleneck.profile.speedup.alpha(
            self.ladder.frequency_of(level), bottleneck.frequency_ghz
        )
        # alpha(low, high) < 1; de-boosting stretches delays by 1/alpha.
        expected = instance_boost_expected_delay(
            queue_length, avg_queuing, avg_serving
        ) / slowdown
        if expected >= unboosted_expected_delay(
            queue_length, avg_queuing, avg_serving
        ):
            return None
        need = (
            2.0 * self.power_model.power_of_level(self.ladder, level)
            - bottleneck_power
            - available
        )
        plan = self.recycler.plan(max(0.0, need), victims)
        return BoostingDecision(
            kind=BoostKind.INSTANCE,
            bottleneck=bottleneck,
            recycle_plan=plan,
            target_level=level,
            expected_delay_instance=expected,
            reason=(
                f"same-level clone unaffordable; de-boost pair to level "
                f"{level} ({self.ladder.frequency_of(level):.1f} GHz)"
            ),
        )

    def _pair_beats(
        self, pair: BoostingDecision, freq_decision: BoostingDecision
    ) -> bool:
        """Whether the de-boost clone out-predicts the frequency fallback."""
        if freq_decision.kind is BoostKind.NONE:
            return True
        if freq_decision.target_level is None:
            return True
        bottleneck = pair.bottleneck
        queue_length = bottleneck.queue_length
        avg_queuing = self.command_center.avg_queuing(bottleneck)
        avg_serving = self.command_center.avg_serving(bottleneck)
        alpha = bottleneck.profile.speedup.alpha(
            bottleneck.frequency_ghz,
            self.ladder.frequency_of(freq_decision.target_level),
        )
        freq_expected = frequency_boost_expected_delay(
            alpha, queue_length, avg_queuing, avg_serving
        )
        assert pair.expected_delay_instance is not None
        return pair.expected_delay_instance < freq_expected

    def _equivalent_level(
        self, bottleneck: ServiceInstance, extra_watts: float
    ) -> int:
        """Algorithm 1's ``calNewFreq``: the level ``extra_watts`` buys."""
        current_power = self.power_model.power_of_level(
            self.ladder, bottleneck.level
        )
        level = self.power_model.max_level_within(
            self.ladder, current_power + extra_watts
        )
        if level is None:
            return bottleneck.level
        return max(level, bottleneck.level)

    def _frequency_decision(
        self,
        bottleneck: ServiceInstance,
        victims: list[ServiceInstance],
        extra_watts: float,
        reason: str,
    ) -> BoostingDecision:
        """Build a FREQUENCY decision, re-planning recycling to exact need."""
        target_level = self._equivalent_level(bottleneck, extra_watts)
        if target_level <= bottleneck.level:
            return BoostingDecision(
                kind=BoostKind.NONE,
                bottleneck=bottleneck,
                recycle_plan=RecyclePlan(needed_watts=0.0),
                reason=f"{reason}; no higher level affordable",
            )
        needed = self.power_model.power_of_level(
            self.ladder, target_level
        ) - self.power_model.power_of_level(self.ladder, bottleneck.level)
        plan = self.recycler.plan(
            max(0.0, needed - self.budget.available()), victims
        )
        if not plan.satisfied and plan.needed_watts > 0.0:
            # Recycling fell short of the ideal level; settle for the level
            # the recovered power actually affords.
            affordable = self._equivalent_level(
                bottleneck, self.budget.available() + plan.recycled_watts
            )
            if affordable <= bottleneck.level:
                return BoostingDecision(
                    kind=BoostKind.NONE,
                    bottleneck=bottleneck,
                    recycle_plan=RecyclePlan(needed_watts=0.0),
                    reason=f"{reason}; recycling could not fund any level",
                )
            target_level = affordable
            needed = self.power_model.power_of_level(
                self.ladder, target_level
            ) - self.power_model.power_of_level(self.ladder, bottleneck.level)
            plan = self.recycler.plan(
                max(0.0, needed - self.budget.available()), victims
            )
        return BoostingDecision(
            kind=BoostKind.FREQUENCY,
            bottleneck=bottleneck,
            recycle_plan=plan,
            target_level=target_level,
            reason=reason,
        )
