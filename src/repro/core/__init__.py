"""PowerChief core: the paper's contribution.

Bottleneck identification (Section 4), the adaptive boosting decision
engine (Section 5, Algorithm 1), power recycling and instance withdraw
(Section 6, Algorithm 2), the full :class:`PowerChiefController`, the
baseline policies it is evaluated against, and the QoS-mode controllers
(PowerChief-conserve and the Pegasus comparator, Section 8.4).
"""

from repro.core.actions import (
    ActionRecord,
    FrequencyChangeAction,
    InstanceLaunchAction,
    InstanceWithdrawAction,
    SkipAction,
)
from repro.core.baselines import (
    FreqBoostController,
    InstBoostController,
    StaticController,
)
from repro.core.boosting import BoostingDecision, BoostingDecisionEngine, BoostKind
from repro.core.bottleneck import BottleneckIdentifier, RankedInstance
from repro.core.conserve import PowerChiefConserveController
from repro.core.controller import (
    BaseController,
    ControllerConfig,
    PowerChiefController,
)
from repro.core.estimators import (
    frequency_boost_expected_delay,
    instance_boost_expected_delay,
    unboosted_expected_delay,
)
from repro.core.metrics import MetricKind, compute_metric, equation1_metric
from repro.core.oracle import StaticPlan, best_static_allocation, predict_mean_latency
from repro.core.pegasus import PegasusController
from repro.core.recycling import PlannedDrop, PowerRecycler, RecyclePlan
from repro.core.withdraw import InstanceWithdrawer, WithdrawCandidate

__all__ = [
    "ActionRecord",
    "FrequencyChangeAction",
    "InstanceLaunchAction",
    "InstanceWithdrawAction",
    "SkipAction",
    "FreqBoostController",
    "InstBoostController",
    "StaticController",
    "BoostingDecision",
    "BoostingDecisionEngine",
    "BoostKind",
    "BottleneckIdentifier",
    "RankedInstance",
    "PowerChiefConserveController",
    "BaseController",
    "ControllerConfig",
    "PowerChiefController",
    "frequency_boost_expected_delay",
    "instance_boost_expected_delay",
    "unboosted_expected_delay",
    "MetricKind",
    "compute_metric",
    "equation1_metric",
    "StaticPlan",
    "best_static_allocation",
    "predict_mean_latency",
    "PegasusController",
    "PlannedDrop",
    "PowerRecycler",
    "RecyclePlan",
    "InstanceWithdrawer",
    "WithdrawCandidate",
]
