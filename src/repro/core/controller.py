"""Runtime controllers: the command-center control loop.

:class:`BaseController` owns the periodic adjust loop, the action log and
the primitive operations every policy composes — applying a recycle plan,
retuning a core, launching a clone with work stealing, withdrawing an
instance.  After every tick the power-budget invariant is asserted: a
controller that overspends is a bug, not a runtime condition.

:class:`PowerChiefController` is the paper's full runtime (Sections 4-6):
balance-threshold gate, Equation-1 bottleneck identification, Algorithm-1
adaptive boosting with Algorithm-2 recycling, and the 150 s instance
withdraw loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.cluster.budget import PowerBudget
from repro.cluster.dvfs import DvfsActuator
from repro.cluster.telemetry import PowerTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.obs.audit import (
    AuditLog,
    BoostEntry,
    BottleneckEntry,
    InstanceMetricReading,
    PlannedDropReading,
    RecycleEntry,
    SkipEntry,
    WithdrawEntry,
)
from repro.core.actions import (
    ActionRecord,
    FrequencyChangeAction,
    InstanceLaunchAction,
    InstanceWithdrawAction,
    SkipAction,
)
from repro.core.boosting import BoostingDecision, BoostingDecisionEngine, BoostKind
from repro.core.bottleneck import BottleneckIdentifier
from repro.core.metrics import MetricKind
from repro.core.recycling import PowerRecycler, RecyclePlan
from repro.core.withdraw import InstanceWithdrawer
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.instance import ServiceInstance
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["ControllerConfig", "BaseController", "PowerChiefController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs shared by the latency-mitigation controllers (Table 2).

    Defaults are the paper's experiment configuration: 25 s adjust
    interval, 1 s balance threshold, 150 s withdraw interval.
    """

    adjust_interval_s: float = 25.0
    balance_threshold_s: float = 1.0
    withdraw_interval_s: float = 150.0
    metric_kind: MetricKind = MetricKind.POWERCHIEF
    min_queue_for_instance: int = 2
    withdraw_utilization: float = 0.2
    enable_withdraw: bool = True
    #: Exclude instances with stale metric inputs (served before, work
    #: queued, yet silent within the window — a hang signature) from the
    #: Equation-1 ranking.  Off by default: fault-free behaviour is
    #: bit-identical, the chaos harness turns it on.
    stale_metric_guard: bool = False

    def __post_init__(self) -> None:
        if self.adjust_interval_s <= 0.0:
            raise ConfigurationError(
                f"adjust interval must be > 0, got {self.adjust_interval_s}"
            )
        if self.balance_threshold_s < 0.0:
            raise ConfigurationError(
                f"balance threshold must be >= 0, got {self.balance_threshold_s}"
            )
        if self.withdraw_interval_s <= 0.0:
            raise ConfigurationError(
                f"withdraw interval must be > 0, got {self.withdraw_interval_s}"
            )


class BaseController(ABC):
    """Shared machinery for every runtime policy."""

    name = "base"

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        budget: PowerBudget,
        dvfs: DvfsActuator,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        self.sim = sim
        self.application = application
        self.command_center = command_center
        self.budget = budget
        self.dvfs = dvfs
        self.config = config if config is not None else ControllerConfig()
        self.identifier = BottleneckIdentifier(
            command_center, self.config.metric_kind
        )
        self.recycler = PowerRecycler(
            budget.machine.power_model, budget.machine.ladder
        )
        self.actions: list[ActionRecord] = []
        #: Decision audit log; ``None`` (the default) records nothing.
        self.audit: Optional[AuditLog] = None
        #: Metrics registry; ``None`` (the default) counts nothing.
        self.metrics: Optional[MetricsRegistry] = None
        #: Power telemetry watched by the graceful-degradation guard.
        self.telemetry: Optional[PowerTelemetry] = None
        self.telemetry_staleness_s = 0.0
        #: SLO tracker handed down by the stack builder; plain policies
        #: ignore it, the supervised controller arms its storm monitor.
        self.slo: Optional["SloTracker"] = None
        #: Ticks spent in conservative mode because telemetry was dark.
        self.degraded_ticks = 0
        #: Actions refused because their target was not a running instance.
        self.safety_clamps = 0
        self._process = PeriodicProcess(
            sim,
            self.config.adjust_interval_s,
            self._tick,
            name=f"{self.name}-controller",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach_audit(self, audit: AuditLog) -> None:
        """Record every future decision (with its inputs) into ``audit``.

        Post-construction attachment keeps every subclass constructor
        unchanged; the runner attaches before :meth:`start`.
        """
        self.audit = audit

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Count degraded ticks and safety clamps into ``registry``."""
        self.metrics = registry

    def attach_telemetry(
        self, telemetry: PowerTelemetry, staleness_s: float = 15.0
    ) -> None:
        """Arm the telemetry-dark guard: when the freshest power sample is
        older than ``staleness_s`` at a tick, the controller degrades
        gracefully — it suspends the boost phase (which spends power on
        the strength of readings it no longer has) while still allowing
        withdraws (which only ever reduce draw).
        """
        if staleness_s <= 0.0:
            raise ConfigurationError(
                f"telemetry staleness must be > 0, got {staleness_s}"
            )
        self.telemetry = telemetry
        self.telemetry_staleness_s = float(staleness_s)

    def attach_slo(self, slo: "SloTracker") -> None:
        """Hand the controller the run's SLO tracker.

        Plain policies only store it; the supervised controller
        (:mod:`repro.guard`) overrides this to arm its
        SLO-violation-storm monitor.
        """
        self.slo = slo

    def start(self) -> None:
        """Arm the periodic adjust loop."""
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    @property
    def ticks(self) -> int:
        return self._process.ticks

    def _tick(self, now: float) -> None:
        self.adjust(now)
        self.budget.assert_within()

    @abstractmethod
    def adjust(self, now: float) -> None:
        """One control interval; implemented by each policy."""

    # ------------------------------------------------------------------
    # Primitive operations (all logged)
    # ------------------------------------------------------------------
    def _log(self, record: ActionRecord) -> None:
        self.actions.append(record)

    def _skip(self, reason: str) -> None:
        self._log(SkipAction(time=self.sim.now, controller=self.name, reason=reason))
        if self.audit is not None:
            self.audit.record(
                SkipEntry(time=self.sim.now, controller=self.name, reason=reason)
            )

    def _clamp(self, instance: ServiceInstance, action: str) -> None:
        """Refuse an action whose target is no longer a running instance.

        Between ranking and acting, fault injection may crash the target
        (or a withdraw may start draining it); retuning or cloning a dead
        core would corrupt the power accounting.  The refusal is counted
        and audited, never silent.
        """
        self.safety_clamps += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_controller_safety_clamps_total",
                "Controller actions refused because the target was not running",
            ).inc(controller=self.name)
        self._skip(
            f"safety clamp: {action} target {instance.name} is "
            f"{instance.state.value}"
        )

    def apply_recycle_plan(self, plan: RecyclePlan) -> None:
        """Execute every planned frequency drop (skipping dead victims)."""
        live_drops = [drop for drop in plan.drops if drop.instance.running]
        if len(live_drops) != len(plan.drops):
            for drop in plan.drops:
                if not drop.instance.running:
                    self._clamp(drop.instance, "recycle drop")
            plan = RecyclePlan(needed_watts=plan.needed_watts, drops=live_drops)
        if self.audit is not None and plan.drops:
            self.audit.record(
                RecycleEntry(
                    time=self.sim.now,
                    controller=self.name,
                    needed_watts=plan.needed_watts,
                    recycled_watts=plan.recycled_watts,
                    drops=tuple(
                        PlannedDropReading(
                            instance=drop.instance.name,
                            from_level=drop.from_level,
                            to_level=drop.to_level,
                            watts_freed=drop.watts_freed,
                        )
                        for drop in plan.drops
                    ),
                )
            )
        for drop in plan.drops:
            self.dvfs.set_level(drop.instance.core, drop.to_level)
            self._log(
                FrequencyChangeAction(
                    time=self.sim.now,
                    controller=self.name,
                    instance_name=drop.instance.name,
                    stage_name=drop.instance.stage_name,
                    from_level=drop.from_level,
                    to_level=drop.to_level,
                    reason="recycle",
                )
            )

    def set_instance_level(
        self, instance: ServiceInstance, level: int, reason: str
    ) -> None:
        """Retune one instance's core, logging the change."""
        if not instance.running:
            self._clamp(instance, f"retune ({reason})")
            return
        old = instance.level
        if level == old:
            return
        self.dvfs.set_level(instance.core, level)
        self._log(
            FrequencyChangeAction(
                time=self.sim.now,
                controller=self.name,
                instance_name=instance.name,
                stage_name=instance.stage_name,
                from_level=old,
                to_level=level,
                reason=reason,
            )
        )

    def launch_clone(self, bottleneck: ServiceInstance) -> ServiceInstance:
        """Instance boosting: clone the bottleneck and steal half its queue.

        "The new instance clones the frequency setting of the bottleneck
        instance as well as shares half of its load." (Section 5.1)
        """
        stage = self.application.stage(bottleneck.stage_name)
        clone = stage.launch_instance(bottleneck.level)
        stolen = bottleneck.steal_half()
        for job in stolen:
            clone.enqueue(job)
        self._log(
            InstanceLaunchAction(
                time=self.sim.now,
                controller=self.name,
                instance_name=clone.name,
                stage_name=stage.name,
                level=clone.level,
                stolen_jobs=len(stolen),
            )
        )
        return clone

    def apply_boosting_decision(self, decision: BoostingDecision) -> None:
        """Recycle then boost, per the engine's verdict.

        An INSTANCE decision with a ``target_level`` is a de-boost clone:
        the bottleneck is first lowered to that level (freeing its power
        surplus) and the clone launched at it.
        """
        if decision.kind is BoostKind.NONE:
            self._skip(decision.reason or "no actionable boost")
            return
        if not decision.bottleneck.running:
            # The bottleneck crashed (or started draining) between ranking
            # and acting: boosting a dead instance would clone from or
            # retune a released core.
            self._clamp(decision.bottleneck, "boost")
            return
        if (
            decision.kind is BoostKind.INSTANCE
            and decision.target_level is not None
        ):
            self.set_instance_level(
                decision.bottleneck, decision.target_level, reason="deboost"
            )
        self.apply_recycle_plan(decision.recycle_plan)
        if decision.kind is BoostKind.FREQUENCY:
            assert decision.target_level is not None
            self.set_instance_level(
                decision.bottleneck, decision.target_level, reason="boost"
            )
        else:
            self.launch_clone(decision.bottleneck)


class PowerChiefController(BaseController):
    """The full PowerChief runtime (bottleneck id + adaptive boost + withdraw)."""

    name = "powerchief"

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        budget: PowerBudget,
        dvfs: DvfsActuator,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        super().__init__(sim, application, command_center, budget, dvfs, config)
        self.engine = BoostingDecisionEngine(
            command_center,
            budget,
            budget.machine,
            self.recycler,
            min_queue_for_instance=self.config.min_queue_for_instance,
        )
        self.withdrawer = InstanceWithdrawer(
            self.identifier,
            utilization_threshold=self.config.withdraw_utilization,
        )
        self._last_withdraw_check = 0.0
        self.withdraw_passes = 0
        self.decisions: list[BoostingDecision] = []

    def adjust(self, now: float) -> None:
        self.withdrawer.observe(self.application, now)
        if (
            self.config.enable_withdraw
            and now - self._last_withdraw_check >= self.config.withdraw_interval_s
        ):
            # Advance the checkpoint by whole withdraw intervals instead of
            # snapping it to the tick time: when the adjust interval does
            # not divide the withdraw interval, snapping pushes every later
            # check out by the remainder and the cadence drifts without
            # bound.  Anchoring to t=0 keeps the long-run average cadence
            # at exactly ``withdraw_interval_s`` (individual passes still
            # land on adjust ticks, so they jitter within one interval).
            elapsed = now - self._last_withdraw_check
            self._last_withdraw_check += (
                elapsed // self.config.withdraw_interval_s
            ) * self.config.withdraw_interval_s
            self.withdraw_passes += 1
            for candidate in self.withdrawer.run(self.application, now):
                self._log(
                    InstanceWithdrawAction(
                        time=now,
                        controller=self.name,
                        instance_name=candidate.instance.name,
                        stage_name=candidate.instance.stage_name,
                        redirected_jobs=candidate.redirected_jobs,
                    )
                )
                if self.audit is not None:
                    self.audit.record(
                        WithdrawEntry(
                            time=now,
                            controller=self.name,
                            instance=candidate.instance.name,
                            stage=candidate.instance.stage_name,
                            utilization=candidate.utilization,
                            redirected_jobs=candidate.redirected_jobs,
                        )
                    )

        if not self.application.running_instances():
            # Under crash-heavy fault plans a stage (or the whole pool)
            # can be momentarily dark while the health monitor respawns.
            self._skip("no running instances")
            return
        if self.telemetry is not None:
            age = self.telemetry.seconds_since_last_sample(now)
            if age is None or age > self.telemetry_staleness_s:
                # Telemetry dark: the last-known-good reading is all we
                # have, and it says nothing about draw changes since.
                # Spending power on its strength could breach the budget
                # invariant, so the boost phase is suspended.  Withdraw
                # (above) stays active — it only ever reduces draw.
                self.degraded_ticks += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "repro_controller_degraded_ticks_total",
                        "Ticks spent in conservative mode (telemetry dark)",
                    ).inc(controller=self.name)
                known = self.telemetry.last_known_good()
                described = (
                    "no sample ever arrived"
                    if known is None or age is None
                    else f"last sample {age:.1f}s old ({known.watts:.2f} W)"
                )
                self._skip(f"telemetry dark: {described}; boost suspended")
                return
        ranked = self.identifier.ranked(
            self.application, skip_stale=self.config.stale_metric_guard
        )
        if not ranked:
            self._skip("no running instances")
            return
        if self.audit is not None:
            # The Equation-1 terms are refetched per instance; within one
            # event the command center's windows are static, so these are
            # exactly the values the identifier just ranked on.
            self.audit.record(
                BottleneckEntry(
                    time=now,
                    controller=self.name,
                    readings=tuple(
                        InstanceMetricReading(
                            instance=entry.instance.name,
                            stage=entry.instance.stage_name,
                            metric=entry.metric,
                            queue_length=entry.instance.queue_length,
                            avg_queuing=self.command_center.avg_queuing(
                                entry.instance
                            ),
                            avg_serving=self.command_center.avg_serving(
                                entry.instance
                            ),
                        )
                        for entry in ranked
                    ),
                    bottleneck=ranked[-1].instance.name,
                    spread=ranked[-1].metric - ranked[0].metric,
                )
            )
        if len(ranked) >= 2:
            spread = ranked[-1].metric - ranked[0].metric
        else:
            # A lone instance has no peer to spread against: gate on its
            # own metric, so an idle single-instance application skips the
            # interval like any balanced system instead of firing a boost
            # attempt every tick.
            spread = ranked[-1].metric
        if spread < self.config.balance_threshold_s:
            self._skip(
                f"metric spread {spread:.4f}s below balance threshold "
                f"{self.config.balance_threshold_s}s"
            )
            return
        bottleneck = ranked[-1].instance
        victims = [entry.instance for entry in ranked[:-1]]
        decision = self.engine.select(bottleneck, victims)
        self.decisions.append(decision)
        if self.audit is not None:
            self.audit.record(
                BoostEntry(
                    time=now,
                    controller=self.name,
                    decision=decision.kind.value,
                    bottleneck=decision.bottleneck.name,
                    queue_length=decision.bottleneck.queue_length,
                    t_inst=decision.expected_delay_instance,
                    t_freq=decision.expected_delay_frequency,
                    target_level=decision.target_level,
                    planned_drops=tuple(
                        PlannedDropReading(
                            instance=drop.instance.name,
                            from_level=drop.from_level,
                            to_level=drop.to_level,
                            watts_freed=drop.watts_freed,
                        )
                        for drop in decision.recycle_plan.drops
                    ),
                    recycled_watts=decision.recycle_plan.recycled_watts,
                    reason=decision.reason,
                )
            )
        self.apply_boosting_decision(decision)
