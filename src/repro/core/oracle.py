"""The exhaustive-search static allocator (the Section-2.1 oracle).

Section 2.1: "Given a power budget, it is extremely challenging to
achieve an optimal power allocation ... Even if the optimal power
allocation can be found through exhaustive search, the undetermined
runtime factors such as load burst easily generate dynamic bottlenecks
..., which undermines the effectiveness of the static power allocation."

This module builds that hypothetical exhaustive-search opponent so the
claim can be tested: :func:`best_static_allocation` enumerates every
feasible static deployment (instances per stage x one DVFS level per
stage, within the budget and core count) and scores each with an
M/G/1 approximation of the pipeline's mean response time — queries split
evenly across a stage's instances, Pollaczek-Khinchine waiting per
instance, stages summed.  The analytical score makes the search cheap
(~10^5 configurations in well under a second); the winning allocation is
then run in the real simulator by the oracle ablation benchmark.

The paper's prediction, which `bench_oracle_static.py` verifies: under
the steady load the oracle was sized for it is excellent, but under the
fluctuating Figure-11 trace PowerChief's dynamic reallocation beats it.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.analysis.queueing import mg1_mean_wait
from repro.cluster.frequency import FrequencyLadder, HASWELL_LADDER
from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.service.profile import ServiceProfile

__all__ = ["StaticPlan", "predict_mean_latency", "best_static_allocation"]

_INFEASIBLE = math.inf


@dataclass(frozen=True)
class StaticPlan:
    """One candidate static deployment and its analytic score."""

    #: stage name -> (instance count, ladder level)
    allocation: dict[str, tuple[int, int]]
    predicted_latency_s: float
    power_watts: float

    def total_instances(self) -> int:
        return sum(count for count, _ in self.allocation.values())


def predict_mean_latency(
    profiles: Sequence[ServiceProfile],
    allocation: Mapping[str, tuple[int, int]],
    rate_qps: float,
    ladder: FrequencyLadder = HASWELL_LADDER,
) -> float:
    """M/G/1 estimate of the pipeline's mean response time.

    Each stage is modelled as ``count`` parallel M/G/1 queues fed an even
    ``rate/count`` split (what the shortest-queue dispatcher approaches).
    Returns ``inf`` when any stage would be saturated.
    """
    if rate_qps <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate_qps}")
    total = 0.0
    for profile in profiles:
        try:
            count, level = allocation[profile.name]
        except KeyError:
            raise ConfigurationError(
                f"allocation missing stage {profile.name!r}"
            ) from None
        freq = ladder.frequency_of(level)
        service_time = profile.mean_serving_time(freq)
        per_instance_rate = rate_qps / count
        if per_instance_rate * service_time >= 1.0:
            return _INFEASIBLE
        wait = mg1_mean_wait(per_instance_rate, service_time, profile.demand.cv2)
        total += wait + service_time
    return total


def best_static_allocation(
    profiles: Sequence[ServiceProfile],
    rate_qps: float,
    budget_watts: float,
    max_instances_per_stage: int = 4,
    max_total_instances: Optional[int] = None,
    ladder: FrequencyLadder = HASWELL_LADDER,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> StaticPlan:
    """Exhaustively search static deployments; return the analytic best.

    All instances of a stage share one level (per-instance levels would
    be strictly dominated by the shared-level optimum under an even load
    split, and keep the space tractable).  Ties break toward lower power.
    """
    if budget_watts <= 0.0:
        raise ConfigurationError(f"budget must be > 0, got {budget_watts}")
    if max_instances_per_stage < 1:
        raise ConfigurationError(
            f"max instances per stage must be >= 1, got {max_instances_per_stage}"
        )
    # Per stage: every (count, level) with its power cost.
    stage_options: list[list[tuple[int, int, float]]] = []
    for profile in profiles:
        options = []
        for count in range(1, max_instances_per_stage + 1):
            for level in range(ladder.n_levels):
                watts = count * power_model.power_of_level(ladder, level)
                if watts <= budget_watts:
                    options.append((count, level, watts))
        stage_options.append(options)

    best: Optional[StaticPlan] = None
    for combo in itertools.product(*stage_options):
        power = sum(watts for _, _, watts in combo)
        if power > budget_watts + 1e-9:
            continue
        if max_total_instances is not None:
            if sum(count for count, _, _ in combo) > max_total_instances:
                continue
        allocation = {
            profile.name: (count, level)
            for profile, (count, level, _) in zip(profiles, combo)
        }
        latency = predict_mean_latency(profiles, allocation, rate_qps, ladder)
        if latency == _INFEASIBLE:
            continue
        if (
            best is None
            or latency < best.predicted_latency_s - 1e-12
            or (
                abs(latency - best.predicted_latency_s) <= 1e-12
                and power < best.power_watts
            )
        ):
            best = StaticPlan(
                allocation=allocation,
                predicted_latency_s=latency,
                power_watts=power,
            )
    if best is None:
        raise ConfigurationError(
            f"no feasible static allocation exists for rate {rate_qps} qps "
            f"under {budget_watts} W"
        )
    return best
