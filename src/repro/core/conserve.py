"""PowerChief in QoS mode: conserve power while meeting the latency target.

Section 8.4: "The power conservation is the opposite of service boosting,
which identifies the fastest service instance and applies frequency
reduction and instance withdraw to save power without violating the QoS."

The controller watches the windowed end-to-end latency against the QoS
target:

* **above target** — restore performance: the bottleneck (largest latency
  metric) is boosted back to the top level; if it already runs at the top,
  a clone is launched into its stage.
* **inside the guard band** — hold.
* **comfortable slack** — conserve: walk the metric ranking from the
  fastest instance; withdraw it if it is underutilized and not its
  stage's last instance, otherwise step its frequency down one level.

Its advantage over Pegasus is exactly the paper's point: because the
*fastest* instance is chosen per stage-aware latency metrics, slack in
over-provisioned stages is converted to savings without touching the
stage that is actually close to the QoS target.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.cluster.budget import PowerBudget
from repro.cluster.dvfs import DvfsActuator
from repro.core.actions import InstanceWithdrawAction
from repro.core.controller import BaseController, ControllerConfig
from repro.core.withdraw import InstanceWithdrawer
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.sim.engine import Simulator

__all__ = ["PowerChiefConserveController"]


class PowerChiefConserveController(BaseController):
    """Stage-aware power conservation under a latency QoS."""

    name = "powerchief-conserve"

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        budget: PowerBudget,
        dvfs: DvfsActuator,
        qos_target_s: float,
        config: Optional[ControllerConfig] = None,
        conserve_fraction: float = 0.75,
        guard_fraction: float = 0.92,
    ) -> None:
        if qos_target_s <= 0.0:
            raise ConfigurationError(f"QoS target must be > 0, got {qos_target_s}")
        if not 0.0 < conserve_fraction < guard_fraction <= 1.0:
            raise ConfigurationError(
                "fractions must satisfy 0 < conserve < guard <= 1, got "
                f"{conserve_fraction}, {guard_fraction}"
            )
        super().__init__(sim, application, command_center, budget, dvfs, config)
        self.qos_target_s = float(qos_target_s)
        self.conserve_fraction = float(conserve_fraction)
        self.guard_fraction = float(guard_fraction)
        self.withdrawer = InstanceWithdrawer(
            self.identifier,
            utilization_threshold=self.config.withdraw_utilization,
        )

    def adjust(self, now: float) -> None:
        self.withdrawer.observe(self.application, now)
        latency = self.command_center.recent_latency_avg()
        if latency is None:
            self._skip("no recent queries to judge against the QoS target")
            return
        if latency > self.qos_target_s:
            self._restore_performance()
        elif latency > self.guard_fraction * self.qos_target_s:
            # Latency creeping toward the target: pre-emptively give the
            # bottleneck two levels back before the QoS is actually at
            # risk.
            self._soft_boost()
        elif latency > self.conserve_fraction * self.qos_target_s:
            self._skip(
                f"latency {latency:.4f}s inside hold band "
                f"[{self.conserve_fraction:.2f}, {self.guard_fraction:.2f}] x target"
            )
        else:
            self._conserve(now)
        self.withdrawer.checkpoint_all(self.application, now)

    # ------------------------------------------------------------------
    def _soft_boost(self) -> None:
        """Step the bottleneck back up before the target is breached."""
        ladder = self.budget.machine.ladder
        ranked = self.identifier.ranked(self.application)
        bottleneck = ranked[-1].instance
        if bottleneck.level >= ladder.max_level:
            self._skip(
                f"guard band: bottleneck {bottleneck.name} already at max level"
            )
            return
        target = min(ladder.max_level, bottleneck.level + 2)
        self.set_instance_level(bottleneck, target, reason="qos-guard")

    def _restore_performance(self) -> None:
        """QoS at risk: boost the bottleneck back toward full speed."""
        ladder = self.budget.machine.ladder
        ranked = self.identifier.ranked(self.application)
        bottleneck = ranked[-1].instance
        if bottleneck.level < ladder.max_level:
            self.set_instance_level(bottleneck, ladder.max_level, reason="qos-boost")
            return
        if self.budget.machine.free_core_count() > 0:
            model = self.budget.machine.power_model
            clone_cost = model.power_of_level(ladder, ladder.max_level)
            if self.budget.fits(clone_cost):
                self.launch_clone(bottleneck)
                return
        self._skip(
            f"bottleneck {bottleneck.name} at max level and no clone possible"
        )

    def _conserve(self, now: float) -> None:
        """Comfortable slack: squeeze the fastest instance of every stage.

        One conservation action per stage per interval: the stage-aware
        latency metrics make this safe (each stage donates only its own
        slack), and it is what lets PowerChief converge to deep savings
        while Pegasus's single uniform knob cannot.
        """
        ladder = self.budget.machine.ladder
        ranked = self.identifier.ranked(self.application)
        acted = False
        for stage in self.application.stages:
            stage_ranked = [
                entry for entry in ranked if entry.instance.stage_name == stage.name
            ]
            for entry in stage_ranked:
                instance = entry.instance
                can_withdraw = len(stage.running_instances()) > 1
                underutilized = (
                    self.withdrawer.utilization_of(instance, now)
                    < self.withdrawer.utilization_threshold
                )
                if can_withdraw and underutilized:
                    fastest_other = next(
                        other.instance
                        for other in stage_ranked
                        if other.instance is not instance
                        and other.instance.running
                    )
                    redirected = instance.waiting_count
                    stage.withdraw_instance(instance, redirect_to=fastest_other)
                    self._log(
                        InstanceWithdrawAction(
                            time=self.sim.now,
                            controller=self.name,
                            instance_name=instance.name,
                            stage_name=instance.stage_name,
                            redirected_jobs=redirected,
                        )
                    )
                    acted = True
                    break
                if instance.level > ladder.min_level:
                    self.set_instance_level(
                        instance, instance.level - 1, reason="conserve"
                    )
                    acted = True
                    break
        if not acted:
            self._skip("every instance already at the ladder floor")
