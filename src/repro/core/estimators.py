"""Expected-delay estimators for the boosting decision engine (Section 5).

Both estimators predict the *expected delay* of the bottleneck instance —
the time until the last query currently in its queue completes — under a
candidate boosting technique, without applying it:

* **Instance boosting** (Equation 2): a clone takes half the queued
  queries, so the queuing term halves while serving speed is unchanged::

      T_inst = (L - 1) * (q + s) / 2 + s

* **Frequency boosting** (Equation 3): raising the core from ``f_l`` to
  ``f_h`` scales both queuing and serving by the offline-profiled
  execution-time ratio ``alpha_lh``::

      T_freq = alpha_lh * ((L - 1) * (q + s) + s)
"""

from __future__ import annotations

from repro.units import SimTime

__all__ = [
    "unboosted_expected_delay",
    "instance_boost_expected_delay",
    "frequency_boost_expected_delay",
]


def _validate(queue_length: int, avg_queuing: float, avg_serving: float) -> None:
    if queue_length < 1:
        raise ValueError(
            f"expected delay is defined for queue length >= 1, got {queue_length}"
        )
    if avg_queuing < 0.0:
        raise ValueError(f"avg queuing must be >= 0, got {avg_queuing}")
    if avg_serving < 0.0:
        raise ValueError(f"avg serving must be >= 0, got {avg_serving}")


def unboosted_expected_delay(
    queue_length: int, avg_queuing: float, avg_serving: float
) -> SimTime:
    """Delay until the last queued query finishes with no boosting.

    ``(L - 1) * (q + s) + s`` — the baseline both techniques are compared
    against (Section 5.1).
    """
    _validate(queue_length, avg_queuing, avg_serving)
    return SimTime(
        (queue_length - 1) * (avg_queuing + avg_serving) + avg_serving
    )


def instance_boost_expected_delay(
    queue_length: int, avg_queuing: float, avg_serving: float
) -> SimTime:
    """Equation 2: expected delay after cloning the bottleneck instance."""
    _validate(queue_length, avg_queuing, avg_serving)
    return SimTime(
        (queue_length - 1) * (avg_queuing + avg_serving) / 2.0 + avg_serving
    )


def frequency_boost_expected_delay(
    alpha_lh: float, queue_length: int, avg_queuing: float, avg_serving: float
) -> SimTime:
    """Equation 3: expected delay after boosting ``f_l`` to ``f_h``.

    ``alpha_lh`` is the execution-time ratio ``r_h / r_l`` from offline
    profiling (< 1 for a genuine boost; 1 when no higher level exists).
    """
    if not 0.0 < alpha_lh <= 1.0 + 1e-9:
        raise ValueError(
            f"alpha must be in (0, 1] for a boost to a >= frequency, got {alpha_lh}"
        )
    _validate(queue_length, avg_queuing, avg_serving)
    return SimTime(
        alpha_lh
        * unboosted_expected_delay(queue_length, avg_queuing, avg_serving)
    )
