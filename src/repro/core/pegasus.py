"""The Pegasus comparator (Section 8.4).

Pegasus [Lo et al., ISCA'14] "targets reducing power consumption without
violating the QoS" by trading latency slack for lower processing speed.
Like the paper, "we implement the Pegasus power conservation policy
within [our] framework" so both systems see identical workloads, stats
and actuators.

Pegasus's defining limitation in this comparison is that it "treats
service instances indifferently": its controller watches the end-to-end
latency against the SLO and issues one *uniform* action to every
instance — it has no notion of stages, so the stage closest to the QoS
target pins the frequency of every other stage.  Its policy bands follow
the published iso-latency controller:

* latency above the target            → bail out: everyone to max power;
* latency within the guard band       → hold;
* comfortable slack                   → step everyone down one level.

Pegasus never withdraws instances (frequency de-boosting only, Table 3).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.cluster.budget import PowerBudget
from repro.cluster.dvfs import DvfsActuator
from repro.core.controller import BaseController, ControllerConfig
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.sim.engine import Simulator

__all__ = ["PegasusController"]


class PegasusController(BaseController):
    """Stage-agnostic iso-latency power conservation."""

    name = "pegasus"

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        budget: PowerBudget,
        dvfs: DvfsActuator,
        qos_target_s: float,
        config: Optional[ControllerConfig] = None,
        hold_fraction: float = 0.85,
    ) -> None:
        if qos_target_s <= 0.0:
            raise ConfigurationError(f"QoS target must be > 0, got {qos_target_s}")
        if not 0.0 < hold_fraction < 1.0:
            raise ConfigurationError(
                f"hold fraction must be in (0, 1), got {hold_fraction}"
            )
        super().__init__(sim, application, command_center, budget, dvfs, config)
        self.qos_target_s = float(qos_target_s)
        self.hold_fraction = float(hold_fraction)

    def adjust(self, now: float) -> None:
        # Pegasus's published policy acts on the *instantaneous* latency —
        # the worst request observed in the measurement window — which is
        # what makes it conservative: one slow query in the window pins
        # every core at maximum power.
        latency = self.command_center.recent_latency_max()
        if latency is None:
            self._skip("no recent queries to judge against the QoS target")
            return
        ladder = self.budget.machine.ladder
        if latency > self.qos_target_s:
            # Bail out: restore maximum performance everywhere.
            for instance in self.application.running_instances():
                self.set_instance_level(instance, ladder.max_level, reason="qos-max")
            return
        if latency > self.hold_fraction * self.qos_target_s:
            self._skip(
                f"latency {latency:.4f}s inside guard band "
                f"[{self.hold_fraction:.2f}, 1.0] x target"
            )
            return
        # Comfortable slack: uniform one-level step down.
        for instance in self.application.running_instances():
            if instance.level > ladder.min_level:
                self.set_instance_level(
                    instance, instance.level - 1, reason="conserve"
                )
