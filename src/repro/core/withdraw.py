"""Instance withdraw (Section 6.2).

"PowerChief monitors the latency statistics of each service instance
during runtime, it then calculates how much time each instance actually
spends on processing queries during the withdraw interval.  If the
processing time is less than 20% of the withdraw interval, the service
instance is considered underutilized and being withdrew to recycle the
power budget."

Rules implemented exactly as the paper states them:

* utilisation is busy time over the *elapsed interval since the last
  check*, threshold 20 %;
* at most one instance is withdrawn per stage per reallocation interval;
* a stage's last instance is never withdrawn;
* the withdrawn instance's waiting load is redirected to the fastest
  (smallest latency metric) surviving instance of the stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bottleneck import BottleneckIdentifier
from repro.service.application import Application
from repro.service.instance import ServiceInstance

__all__ = ["WithdrawCandidate", "InstanceWithdrawer"]


@dataclass(frozen=True)
class WithdrawCandidate:
    """An instance judged underutilized, with its measured utilisation."""

    instance: ServiceInstance
    utilization: float
    redirected_jobs: int


class InstanceWithdrawer:
    """Applies the 20 %-utilisation withdraw rule across stages."""

    def __init__(
        self,
        identifier: BottleneckIdentifier,
        utilization_threshold: float = 0.2,
    ) -> None:
        if not 0.0 < utilization_threshold < 1.0:
            raise ValueError(
                f"utilization threshold must be in (0, 1), got {utilization_threshold}"
            )
        self.identifier = identifier
        self.utilization_threshold = float(utilization_threshold)
        # instance name -> (checkpoint time, busy seconds at checkpoint)
        self._checkpoints: dict[str, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    def observe(self, application: Application, now: float) -> None:
        """Checkpoint newly seen instances so their first interval is fair.

        Called every controller tick; an instance launched mid-interval is
        measured only from its first observation, never judged on time it
        did not exist.
        """
        for instance in application.running_instances():
            if instance.name not in self._checkpoints:
                self._checkpoints[instance.name] = (now, instance.busy_seconds())

    def utilization_of(self, instance: ServiceInstance, now: float) -> float:
        """Busy fraction since the instance's last checkpoint (1.0 if unknown).

        Unknown instances report full utilisation so they are never
        withdrawn before a complete measurement interval.
        """
        checkpoint = self._checkpoints.get(instance.name)
        if checkpoint is None:
            return 1.0
        check_time, busy_at_check = checkpoint
        elapsed = now - check_time
        if elapsed <= 0.0:
            return 1.0
        busy = instance.busy_seconds() - busy_at_check
        return max(0.0, min(1.0, busy / elapsed))

    def checkpoint_all(self, application: Application, now: float) -> None:
        """Restart the measurement interval for every running instance.

        The QoS-mode conserving controller uses per-tick utilisation, so
        it re-checkpoints after each decision instead of only after a
        withdraw pass.
        """
        self._checkpoints = {
            instance.name: (now, instance.busy_seconds())
            for instance in application.running_instances()
        }

    # ------------------------------------------------------------------
    def run(self, application: Application, now: float) -> list[WithdrawCandidate]:
        """One withdraw pass: per stage, withdraw at most one idle instance.

        Returns the candidates actually withdrawn.  All surviving
        instances are re-checkpointed so the next pass measures a fresh
        interval.
        """
        # Instances can leave the pool outside this loop (QoS-mode
        # conservation, external scripting), and only victims withdrawn
        # here used to pop their entries.  Prune to the running set first:
        # a leaked entry lives forever, and a relaunched instance that
        # reuses a name would inherit a stale (time, busy) pair and be
        # judged on an interval it never existed in.
        running_names = {
            instance.name for instance in application.running_instances()
        }
        for name in list(self._checkpoints):
            if name not in running_names:
                del self._checkpoints[name]
        self.observe(application, now)
        withdrawn: list[WithdrawCandidate] = []
        for stage in application.stages:
            running = stage.running_instances()
            if len(running) < 2:
                continue
            measured = [
                (self.utilization_of(instance, now), instance)
                for instance in running
            ]
            idle = [
                (utilization, instance)
                for utilization, instance in measured
                if utilization < self.utilization_threshold
            ]
            if not idle:
                continue
            # Withdraw the most idle instance; ties break on instance id.
            idle.sort(key=lambda item: (item[0], item[1].iid))
            utilization, victim = idle[0]
            survivors = [inst for inst in running if inst is not victim]
            fastest = min(
                survivors,
                key=lambda inst: (self.identifier.metric_of(inst), inst.iid),
            )
            redirected = victim.waiting_count
            stage.withdraw_instance(victim, redirect_to=fastest)
            self._checkpoints.pop(victim.name, None)
            withdrawn.append(
                WithdrawCandidate(
                    instance=victim,
                    utilization=utilization,
                    redirected_jobs=redirected,
                )
            )
        # Fresh measurement interval for every surviving instance.
        for instance in application.running_instances():
            self._checkpoints[instance.name] = (now, instance.busy_seconds())
        return withdrawn
