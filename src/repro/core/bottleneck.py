"""Bottleneck service identification (Section 4).

The :class:`BottleneckIdentifier` ranks every running instance by its
latency metric.  "The one with the largest latency metric is identified
as the bottleneck instance" (Section 4.2); the sorted list doubles as the
power-recycling victim order (Section 6.1: "power recycling starts from
the fastest service instance within the list").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError
from repro.core.metrics import MetricKind, compute_metric
from repro.units import SimTime
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.instance import ServiceInstance

__all__ = ["RankedInstance", "BottleneckIdentifier"]


@dataclass(frozen=True)
class RankedInstance:
    """An instance paired with its evaluated latency metric."""

    instance: ServiceInstance
    metric: SimTime


class BottleneckIdentifier:
    """Ranks instances fast-to-slow by a configurable latency metric."""

    def __init__(
        self,
        command_center: CommandCenter,
        metric_kind: MetricKind = MetricKind.POWERCHIEF,
    ) -> None:
        self.command_center = command_center
        self.metric_kind = metric_kind

    def metric_of(self, instance: ServiceInstance) -> SimTime:
        """The latency metric of one instance at the current time."""
        return compute_metric(self.command_center, instance, self.metric_kind)

    def is_stale(self, instance: ServiceInstance) -> bool:
        """Whether an instance's metric inputs are untrustworthy.

        A *stale* instance has served queries before, has work queued
        right now, yet produced no record inside the statistics window —
        the signature of a hung or wedged worker whose window drained.
        Its Equation-1 metric would be computed entirely from fallbacks
        and grossly understate its delay.  Fresh clones (never served
        anything) are *not* stale: the fallback chain exists for them.
        """
        return (
            instance.queries_served > 0
            and instance.queue_length > 0
            and not self.command_center.has_fresh_records(instance)
        )

    def ranked(
        self, application: Application, skip_stale: bool = False
    ) -> list[RankedInstance]:
        """All running instances sorted fast (smallest metric) to slow.

        Ties break on instance id so the ordering — and therefore the
        recycling victim order — is deterministic.  With ``skip_stale``
        (the controller's stale-metric guard) instances failing
        :meth:`is_stale` are excluded from the ranking; if that would
        exclude everything, the full pool is ranked anyway — acting on
        doubtful data beats not acting at all when *no* data is trusted.
        """
        instances = application.running_instances()
        if not instances:
            raise ServiceError(
                f"application {application.name} has no running instances"
            )
        if skip_stale:
            trusted = [inst for inst in instances if not self.is_stale(inst)]
            if trusted:
                instances = trusted
        entries = [
            RankedInstance(instance, self.metric_of(instance))
            for instance in instances
        ]
        entries.sort(key=lambda entry: (entry.metric, entry.instance.iid))
        return entries

    def bottleneck(self, application: Application) -> RankedInstance:
        """The instance with the largest latency metric."""
        return self.ranked(application)[-1]

    def spread(self, application: Application) -> SimTime:
        """Metric difference between the slowest and fastest instances.

        Compared against the *balance threshold* (Table 2): when the
        spread is below it the controller skips the interval to avoid
        power-reallocation oscillation (Section 8.1).
        """
        entries = self.ranked(application)
        return SimTime(entries[-1].metric - entries[0].metric)
