"""Power recycling (Section 6.1, Algorithm 2).

"If there is not enough power budget to perform the boosting technique,
PowerChief recycles power allocation from [the fastest instance] first...
This procedure repeats until the available power budget is enough."

The recycler is *plan-based*: :meth:`PowerRecycler.plan` computes the
frequency drops without touching any core, so the boosting decision engine
can weigh alternatives; the controller applies the winning plan.  Per
Algorithm 2's ``RECYCLEFROMINST``, each victim is lowered only as far as
needed — the highest level that still frees enough power — and at most to
the ladder floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.frequency import FrequencyLadder
from repro.cluster.power import PowerModel
from repro.service.instance import ServiceInstance
from repro.units import EPSILON_WATTS, DvfsLevel, Watts

__all__ = ["PlannedDrop", "RecyclePlan", "PowerRecycler"]

_EPSILON_WATTS = EPSILON_WATTS


@dataclass(frozen=True)
class PlannedDrop:
    """One victim's planned frequency reduction."""

    instance: ServiceInstance
    from_level: DvfsLevel
    to_level: DvfsLevel
    watts_freed: Watts


@dataclass
class RecyclePlan:
    """The ordered set of frequency drops a recycle pass would apply."""

    needed_watts: float
    drops: list[PlannedDrop] = field(default_factory=list)

    @property
    def recycled_watts(self) -> Watts:
        """Total power the plan frees."""
        return Watts(sum(drop.watts_freed for drop in self.drops))

    @property
    def satisfied(self) -> bool:
        """Whether the plan frees at least what was asked for."""
        return self.recycled_watts + _EPSILON_WATTS >= self.needed_watts

    @property
    def victim_names(self) -> list[str]:
        return [drop.instance.name for drop in self.drops]

    def __len__(self) -> int:
        return len(self.drops)


class PowerRecycler:
    """Greedy fastest-first power recycling (Algorithm 2).

    "Other power recycling policies ... can be easily plugged into
    PowerChief" (Section 6.1): subclass and override
    :meth:`victim_order` to change the policy; the greedy default takes
    the fastest-first order the bottleneck identifier produced.
    """

    def __init__(self, power_model: PowerModel, ladder: FrequencyLadder) -> None:
        self.power_model = power_model
        self.ladder = ladder

    # ------------------------------------------------------------------
    def victim_order(
        self, victims_fast_to_slow: Sequence[ServiceInstance]
    ) -> list[ServiceInstance]:
        """Order in which instances donate power; greedy = as given."""
        return list(victims_fast_to_slow)

    def plan(
        self,
        needed_watts: float,
        victims_fast_to_slow: Sequence[ServiceInstance],
    ) -> RecyclePlan:
        """Plan drops freeing at least ``needed_watts``, if possible.

        ``victims_fast_to_slow`` is the metric-sorted instance list with
        the boost target excluded.  The plan may come back unsatisfied
        (every victim already at the floor) — the caller decides whether a
        partial boost is still worth applying.
        """
        if needed_watts < 0.0:
            raise ValueError(f"needed_watts must be >= 0, got {needed_watts}")
        plan = RecyclePlan(needed_watts=needed_watts)
        if needed_watts <= _EPSILON_WATTS:
            return plan
        remaining = needed_watts
        for victim in self.victim_order(victims_fast_to_slow):
            drop = self._plan_drop(victim, remaining)
            if drop is None:
                continue
            plan.drops.append(drop)
            remaining -= drop.watts_freed
            if remaining <= _EPSILON_WATTS:
                break
        return plan

    # ------------------------------------------------------------------
    def _plan_drop(
        self, victim: ServiceInstance, needed_watts: float
    ) -> "PlannedDrop | None":
        """Algorithm 2's RECYCLEFROMINST: lower one victim just enough.

        Scans target levels downward from the current one and stops at the
        first (i.e. highest) level that frees ``needed_watts``; if none
        does, the victim goes to the ladder floor and contributes what it
        can.
        """
        current = victim.level
        if current <= self.ladder.min_level:
            return None
        current_power = self.power_model.power_of_level(self.ladder, current)
        chosen = self.ladder.min_level
        for level in range(current - 1, self.ladder.min_level - 1, -1):
            freed = current_power - self.power_model.power_of_level(
                self.ladder, level
            )
            if freed + _EPSILON_WATTS >= needed_watts:
                chosen = DvfsLevel(level)
                break
        freed = current_power - self.power_model.power_of_level(self.ladder, chosen)
        if freed <= _EPSILON_WATTS:
            return None
        return PlannedDrop(
            instance=victim,
            from_level=DvfsLevel(current),
            to_level=chosen,
            watts_freed=Watts(freed),
        )
