"""Typed physical units for the power-management domain.

The controller's arithmetic mixes quantities that are all ``float`` at
runtime — watts, gigahertz, simulated seconds, joules — and the bugs the
paper's Algorithm 1 is most sensitive to (a budget compared against a
frequency, a latency added to a power draw) are invisible to the
interpreter.  This module gives each quantity a :func:`typing.NewType`
wrapper so ``mypy --strict`` and the ``unit-mismatch`` lint rule can see
them, at zero runtime cost (a ``NewType`` call is the identity function).

Conventions
-----------
* ``Watts`` / ``Joules`` — power and energy.
* ``Hz`` / ``Ghz`` — frequency.  The simulator works in GHz throughout
  (the paper's ladder is 1.2–2.4 GHz); ``Hz`` exists for interop.
* ``DvfsLevel`` — an integer index on a
  :class:`~repro.cluster.frequency.FrequencyLadder` (0 is the floor).
* ``SimTime`` — a point on (or duration along) the simulated clock, in
  seconds.

Tolerance helpers
-----------------
Floating-point power/latency values must never be compared with ``==`` —
that is the ``float-equality`` lint rule.  The approved idioms live here:
:func:`approx_eq` for tolerance comparison and :func:`exactly` for the
rare intentional bitwise sentinel check (for example "was this latency
configured to literally ``0.0``?").
"""

from __future__ import annotations

import math
from typing import NewType

__all__ = [
    "Watts",
    "Joules",
    "Hz",
    "Ghz",
    "DvfsLevel",
    "SimTime",
    "EPSILON_WATTS",
    "EPSILON_GHZ",
    "EPSILON_SECONDS",
    "approx_eq",
    "exactly",
    "ghz_to_hz",
    "hz_to_ghz",
]

Watts = NewType("Watts", float)
Joules = NewType("Joules", float)
Hz = NewType("Hz", float)
Ghz = NewType("Ghz", float)
DvfsLevel = NewType("DvfsLevel", int)
SimTime = NewType("SimTime", float)

#: Slack for power comparisons: far below the smallest ladder step's
#: power delta, far above accumulated float noise.
EPSILON_WATTS: Watts = Watts(1e-9)

#: Slack for ladder-frequency matching (the ladder step is 0.1 GHz).
EPSILON_GHZ: Ghz = Ghz(1e-6)

#: Slack for simulated-time comparisons.
EPSILON_SECONDS: SimTime = SimTime(1e-9)

_GHZ_PER_HZ = 1e-9


def ghz_to_hz(value: Ghz) -> Hz:
    """Convert gigahertz to hertz."""
    return Hz(float(value) / _GHZ_PER_HZ)


def hz_to_ghz(value: Hz) -> Ghz:
    """Convert hertz to gigahertz."""
    return Ghz(float(value) * _GHZ_PER_HZ)


def approx_eq(left: float, right: float, tolerance: float = 1e-9) -> bool:
    """Tolerance equality for power/latency floats.

    The approved replacement for ``==`` on computed quantities: absolute
    tolerance, so it behaves sensibly around zero (where
    :func:`math.isclose`'s default relative tolerance collapses).
    """
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    return math.isclose(left, right, rel_tol=0.0, abs_tol=tolerance)


def exactly(value: float, sentinel: float) -> bool:
    """Intentional bitwise-exact float comparison.

    For sentinel checks where the value was *assigned*, never computed —
    "is the configured transition latency literally zero?".  Routing the
    comparison through this helper documents the intent and satisfies the
    ``float-equality`` lint rule.
    """
    return value == sentinel  # repro-lint: disable=float-equality
