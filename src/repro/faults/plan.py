"""Fault plans: the declarative, serialisable schedule of injected faults.

A :class:`FaultPlan` is a named, immutable list of :class:`FaultSpec`
entries, each saying *what* goes wrong, *when* (absolute simulated time)
and *how hard*.  Plans are pure data — JSON round-trippable for the
``repro chaos --plan plan.json`` workflow — and all nondeterminism
(victim choice, noise draws) lives in the injector's dedicated seeded
stream, never in the plan itself.  Identical plan + identical seed ⇒
identical fault event log, the determinism property the acceptance tests
diff on.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "PlanValidationError",
    "named_plans",
    "load_plan",
]


class PlanValidationError(ConfigurationError):
    """A fault-plan document failed validation.

    ``path`` pinpoints the offending key in the JSON document with a
    ``specs[3].kind``-style key path, so a hand-edited plan file's error
    message says exactly which entry to fix.  Subclasses
    :class:`~repro.errors.ConfigurationError`, so existing handlers keep
    working.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = path


class FaultKind(enum.Enum):
    """What the injector can break."""

    INSTANCE_CRASH = "instance-crash"
    INSTANCE_HANG = "instance-hang"
    INSTANCE_DEGRADE = "instance-degrade"
    TELEMETRY_DROPOUT = "telemetry-dropout"
    TELEMETRY_NOISE = "telemetry-noise"
    RPC_DELAY = "rpc-delay"
    RPC_LOSS = "rpc-loss"


#: Kinds whose effect spans a window and therefore need ``duration_s``.
_WINDOWED = frozenset(
    {
        FaultKind.INSTANCE_HANG,
        FaultKind.INSTANCE_DEGRADE,
        FaultKind.TELEMETRY_DROPOUT,
        FaultKind.TELEMETRY_NOISE,
        FaultKind.RPC_DELAY,
        FaultKind.RPC_LOSS,
    }
)

#: Kinds that target a service instance (and accept a ``stage`` filter).
_INSTANCE_TARGETED = frozenset(
    {
        FaultKind.INSTANCE_CRASH,
        FaultKind.INSTANCE_HANG,
        FaultKind.INSTANCE_DEGRADE,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at_s`` is the absolute injection time.  ``stage`` restricts
    instance-targeted faults to one stage (``None`` = any stage; the
    victim is drawn from the injector's seeded stream either way).
    ``duration_s`` is the fault window for windowed kinds (hang until
    repair, degrade until restore, telemetry/RPC windows).
    ``magnitude`` is kind-specific: the degrade work-rate factor in
    ``(0, 1]``, the telemetry noise fraction, the extra RPC delay in
    seconds, or the RPC loss probability in ``[0, 1)``.
    """

    kind: FaultKind
    at_s: float
    stage: Optional[str] = None
    duration_s: float = 0.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.at_s < 0.0:
            raise ConfigurationError(
                f"fault time must be >= 0, got {self.at_s}"
            )
        if self.kind in _WINDOWED and self.duration_s <= 0.0:
            raise ConfigurationError(
                f"{self.kind.value} needs a duration > 0, got {self.duration_s}"
            )
        if self.stage is not None and self.kind not in _INSTANCE_TARGETED:
            raise ConfigurationError(
                f"{self.kind.value} does not target a stage"
            )
        if self.kind is FaultKind.INSTANCE_DEGRADE and not (
            0.0 < self.magnitude <= 1.0
        ):
            raise ConfigurationError(
                f"degrade magnitude must be in (0, 1], got {self.magnitude}"
            )
        if self.kind is FaultKind.TELEMETRY_NOISE and self.magnitude <= 0.0:
            raise ConfigurationError(
                f"noise magnitude must be > 0, got {self.magnitude}"
            )
        if self.kind is FaultKind.RPC_DELAY and self.magnitude <= 0.0:
            raise ConfigurationError(
                f"rpc-delay magnitude (extra seconds) must be > 0, "
                f"got {self.magnitude}"
            )
        if self.kind is FaultKind.RPC_LOSS and not 0.0 < self.magnitude < 1.0:
            raise ConfigurationError(
                f"rpc-loss magnitude (probability) must be in (0, 1), "
                f"got {self.magnitude}"
            )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind.value, "at_s": self.at_s}
        if self.stage is not None:
            data["stage"] = self.stage
        if self.duration_s > 0.0:
            data["duration_s"] = self.duration_s
        if self.magnitude > 0.0:
            data["magnitude"] = self.magnitude
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str = "spec") -> "FaultSpec":
        """Parse one spec; ``path`` prefixes validation-error key paths."""
        if not isinstance(data, Mapping):
            raise PlanValidationError(
                path, f"fault spec must be an object, got {data!r}"
            )
        if "kind" not in data:
            known = ", ".join(k.value for k in FaultKind)
            raise PlanValidationError(
                f"{path}.kind", f"missing; must be one of: {known}"
            )
        try:
            kind = FaultKind(data["kind"])
        except ValueError:
            known = ", ".join(k.value for k in FaultKind)
            raise PlanValidationError(
                f"{path}.kind",
                f"unknown kind {data['kind']!r}; must be one of: {known}",
            ) from None
        if "at_s" not in data:
            raise PlanValidationError(f"{path}.at_s", "missing")
        fields = {"at_s": data["at_s"]}
        for optional in ("duration_s", "magnitude"):
            if optional in data:
                fields[optional] = data[optional]
        numbers = {}
        for field_name, raw in fields.items():
            try:
                numbers[field_name] = float(raw)
            except (TypeError, ValueError):
                raise PlanValidationError(
                    f"{path}.{field_name}", f"must be a number, got {raw!r}"
                ) from None
        try:
            return cls(
                kind=kind,
                at_s=numbers["at_s"],
                stage=data.get("stage"),
                duration_s=numbers.get("duration_s", 0.0),
                magnitude=numbers.get("magnitude", 0.0),
            )
        except ConfigurationError as error:
            raise PlanValidationError(path, str(error)) from None


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered schedule of faults."""

    name: str
    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plan needs a non-empty name")

    def kinds(self) -> set[FaultKind]:
        return {spec.kind for spec in self.specs}

    @property
    def touches_rpc(self) -> bool:
        return bool(
            self.kinds() & {FaultKind.RPC_DELAY, FaultKind.RPC_LOSS}
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise PlanValidationError(
                "$", f"fault plan must be an object, got {data!r}"
            )
        for key in ("name", "specs"):
            if key not in data:
                raise PlanValidationError(
                    key, f"missing (document has: {sorted(data)})"
                )
        if not isinstance(data["name"], str) or not data["name"]:
            raise PlanValidationError(
                "name", f"must be a non-empty string, got {data['name']!r}"
            )
        if isinstance(data["specs"], (str, Mapping)) or not hasattr(
            data["specs"], "__iter__"
        ):
            raise PlanValidationError(
                "specs", f"must be a list of fault specs, got {data['specs']!r}"
            )
        return cls(
            name=data["name"],
            specs=tuple(
                FaultSpec.from_dict(s, path=f"specs[{i}]")
                for i, s in enumerate(data["specs"])
            ),
        )


# ----------------------------------------------------------------------
# Named plans (the chaos cookbook's off-the-shelf scenarios)
# ----------------------------------------------------------------------
def _crash_heavy(duration_s: float) -> FaultPlan:
    """A crash every ~1/8 of the run, starting after warm-up."""
    times = [duration_s * frac for frac in (0.2, 0.35, 0.5, 0.65, 0.8)]
    return FaultPlan(
        name="crash-heavy",
        specs=tuple(
            FaultSpec(kind=FaultKind.INSTANCE_CRASH, at_s=t) for t in times
        ),
    )


def _telemetry_dark(duration_s: float) -> FaultPlan:
    """Power telemetry dark for the middle 40 % of the run, noisy after."""
    return FaultPlan(
        name="telemetry-dark",
        specs=(
            FaultSpec(
                kind=FaultKind.TELEMETRY_DROPOUT,
                at_s=duration_s * 0.3,
                duration_s=duration_s * 0.4,
            ),
            FaultSpec(
                kind=FaultKind.TELEMETRY_NOISE,
                at_s=duration_s * 0.75,
                duration_s=duration_s * 0.2,
                magnitude=0.15,
            ),
        ),
    )


def _slow_instances(duration_s: float) -> FaultPlan:
    """Two degradation windows: one mild, one severe."""
    return FaultPlan(
        name="slow-instances",
        specs=(
            FaultSpec(
                kind=FaultKind.INSTANCE_DEGRADE,
                at_s=duration_s * 0.25,
                duration_s=duration_s * 0.25,
                magnitude=0.5,
            ),
            FaultSpec(
                kind=FaultKind.INSTANCE_DEGRADE,
                at_s=duration_s * 0.6,
                duration_s=duration_s * 0.2,
                magnitude=0.2,
            ),
        ),
    )


def _all_faults(duration_s: float) -> FaultPlan:
    """Every fault kind in one run — the zero-orphan acceptance scenario."""
    return FaultPlan(
        name="all-faults",
        specs=(
            FaultSpec(kind=FaultKind.INSTANCE_CRASH, at_s=duration_s * 0.2),
            FaultSpec(
                kind=FaultKind.INSTANCE_HANG,
                at_s=duration_s * 0.3,
                duration_s=duration_s * 0.15,
            ),
            FaultSpec(
                kind=FaultKind.INSTANCE_DEGRADE,
                at_s=duration_s * 0.4,
                duration_s=duration_s * 0.2,
                magnitude=0.3,
            ),
            FaultSpec(
                kind=FaultKind.TELEMETRY_DROPOUT,
                at_s=duration_s * 0.45,
                duration_s=duration_s * 0.2,
            ),
            FaultSpec(
                kind=FaultKind.TELEMETRY_NOISE,
                at_s=duration_s * 0.7,
                duration_s=duration_s * 0.15,
                magnitude=0.1,
            ),
            FaultSpec(
                kind=FaultKind.RPC_DELAY,
                at_s=duration_s * 0.5,
                duration_s=duration_s * 0.2,
                magnitude=0.05,
            ),
            FaultSpec(
                kind=FaultKind.RPC_LOSS,
                at_s=duration_s * 0.55,
                duration_s=duration_s * 0.2,
                magnitude=0.2,
            ),
            FaultSpec(kind=FaultKind.INSTANCE_CRASH, at_s=duration_s * 0.75),
        ),
    )


#: Plan builders by name; each takes the run duration and lays faults out
#: proportionally, so the same name works for a 2-minute smoke run and a
#: 20-minute campaign cell.
_NAMED_PLANS: dict[str, Callable[[float], FaultPlan]] = {
    "crash-heavy": _crash_heavy,
    "telemetry-dark": _telemetry_dark,
    "slow-instances": _slow_instances,
    "all-faults": _all_faults,
}


def named_plans() -> tuple[str, ...]:
    """The built-in plan names, sorted."""
    return tuple(sorted(_NAMED_PLANS))


def load_plan(name_or_path: Union[str, Path], duration_s: float) -> FaultPlan:
    """Resolve a plan: a built-in name, or a path to a plan JSON file."""
    key = str(name_or_path)
    builder = _NAMED_PLANS.get(key)
    if builder is not None:
        return builder(duration_s)
    path = Path(name_or_path)
    if path.suffix == ".json" and path.exists():
        return FaultPlan.from_dict(json.loads(path.read_text()))
    known = ", ".join(named_plans())
    raise ConfigurationError(
        f"unknown fault plan {key!r}: not a built-in ({known}) and not an "
        f"existing .json file"
    )
