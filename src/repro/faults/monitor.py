"""Health checking, crash detection and respawn.

The :class:`HealthMonitor` is the recovery half of the fault subsystem:
a periodic process that (a) detects hung instances — alive by state,
serving nothing — and recycles them through the crash path so their work
is requeued, and (b) respawns replacements for crashed instances,
re-acquiring a core at the victim's frequency level when the power
budget allows it (stepping down the ladder, then retrying next tick,
when it does not).  Detection is behavioural: the monitor never reads
the injector's ground truth, only what a real watchdog could observe —
service elapsed time and queue movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError, NoCoreAvailable
from repro.obs.audit import ResilienceEntry
from repro.service.application import Application
from repro.service.instance import ServiceInstance
from repro.service.resilience import RetryPolicy
from repro.service.stage import Stage
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.budget import PowerBudget
    from repro.obs import Observability

__all__ = ["ResilienceConfig", "HealthMonitor"]


def _default_retry() -> RetryPolicy:
    """Chaos-grade retry defaults.

    The Table-2 cells run the machine near saturation on purpose, so
    *healthy* end-to-end latencies reach tens of seconds.  A per-attempt
    timeout below that converts slow-but-fine queries into retry storms
    that amplify the very overload they are reacting to; 60 s sits above
    the fault-free P99 of every headline cell.
    """
    return RetryPolicy(timeout_s=60.0, backoff_base_s=1.0, backoff_max_s=10.0)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the recovery side of the fault subsystem.

    ``hang_service_timeout_s`` is the watchdog threshold: a job in
    service longer than this means the instance stopped making progress.
    It must comfortably exceed the slowest plausible serving time (work
    at the bottom ladder level under full contention), or the monitor
    will shoot healthy-but-slow workers.
    """

    retry: RetryPolicy = field(default_factory=_default_retry)
    health_interval_s: float = 5.0
    hang_service_timeout_s: float = 30.0
    respawn: bool = True

    def __post_init__(self) -> None:
        if self.health_interval_s <= 0.0:
            raise ConfigurationError(
                f"health interval must be > 0, got {self.health_interval_s}"
            )
        if self.hang_service_timeout_s <= 0.0:
            raise ConfigurationError(
                f"hang service timeout must be > 0, "
                f"got {self.hang_service_timeout_s}"
            )


class HealthMonitor:
    """Periodic hang detection and crash-replacement respawn."""

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        budget: "PowerBudget",
        config: Optional[ResilienceConfig] = None,
        observability: Optional["Observability"] = None,
    ) -> None:
        self.sim = sim
        self.application = application
        self.budget = budget
        self.config = config if config is not None else ResilienceConfig()
        self.observability = observability
        #: (stage, wanted level, reserved watts) per crash awaiting respawn.
        self._pending_respawns: list[tuple[Stage, int, float]] = []
        self._hangs_detected = 0
        self._crashes_seen = 0
        self._respawns = 0
        self._process = PeriodicProcess(
            sim,
            self.config.health_interval_s,
            self._tick,
            name="health-monitor",
        )
        application.add_crash_listener(self._on_crash)

    # ------------------------------------------------------------------
    @property
    def hangs_detected(self) -> int:
        """Hung instances the watchdog caught and recycled."""
        return self._hangs_detected

    @property
    def crashes_seen(self) -> int:
        """Crash notifications received (injected + watchdog-recycled)."""
        return self._crashes_seen

    @property
    def respawns(self) -> int:
        """Replacement instances launched for crashed ones."""
        return self._respawns

    @property
    def pending_respawns(self) -> int:
        """Replacements still waiting for power headroom."""
        return len(self._pending_respawns)

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    def _on_crash(self, stage: Stage, instance: ServiceInstance) -> None:
        self._crashes_seen += 1
        if not self.config.respawn:
            return
        # Reserve the victim's wattage right now — this listener runs
        # synchronously inside the crash, before the controller can tick
        # and spend the freed power on boosts, which would starve the
        # respawn forever (a crashed single-instance stage would stay
        # dark for the rest of the run).
        machine = stage.machine
        level = (
            instance.crash_level
            if instance.crash_level is not None
            else instance.level
        )
        cost = machine.power_model.power_of_level(machine.ladder, level)
        reserved = min(cost, self.budget.available())
        self.budget.reserve(reserved)
        self._pending_respawns.append((stage, level, reserved))

    def _tick(self, now: float) -> None:
        self._detect_hangs(now)
        self._process_respawns()

    def _detect_hangs(self, now: float) -> None:
        for stage in self.application.stages:
            # Snapshot: crash_instance mutates the pool mid-iteration.
            for instance in list(stage.running_instances()):
                if not self._looks_hung(instance, now):
                    continue
                self._hangs_detected += 1
                self._audit(
                    "hang-detected",
                    instance.name,
                    f"no progress for >= {self.config.hang_service_timeout_s:.0f}s; "
                    f"recycling via crash path",
                )
                stage.crash_instance(instance)  # listener queues the respawn

    def _looks_hung(self, instance: ServiceInstance, now: float) -> bool:
        """Behavioural hang check — what an external watchdog can see.

        Either the job in service has been on the core implausibly long,
        or the instance is idle-by-accounting while work waits in its
        queue (impossible for a healthy instance, which starts the next
        job the moment the core frees up).
        """
        elapsed = instance.current_service_elapsed(now)
        if elapsed is not None and elapsed > self.config.hang_service_timeout_s:
            return True
        return not instance.busy and instance.waiting_count > 0

    def _process_respawns(self) -> None:
        still_pending: list[tuple[Stage, int, float]] = []
        for stage, level, reserved in self._pending_respawns:
            # Hand the reservation back for the duration of the attempt so
            # fits() can see it; re-reserve if the spawn still fails (no
            # event runs in between — this whole tick is synchronous).
            self.budget.release(reserved)
            spawned = self._try_respawn(stage, level)
            if not spawned:
                # The reservation intentionally outlives this method: it
                # is carried in _pending_respawns and handed back at the
                # top of the next tick's attempt.
                # repro-lint: disable=resource-pairing
                self.budget.reserve(reserved)
                still_pending.append((stage, level, reserved))
        self._pending_respawns = still_pending

    def _try_respawn(self, stage: Stage, level: int) -> bool:
        """Launch a replacement at ``level``, stepping down if power is tight."""
        machine = stage.machine
        ladder = machine.ladder
        for candidate in range(level, ladder.min_level - 1, -1):
            cost = machine.power_model.power_of_level(ladder, candidate)
            if not self.budget.fits(cost):
                continue
            try:
                instance = stage.launch_instance(candidate)
            except NoCoreAvailable:
                return False  # no free core either; retry next tick
            self._respawns += 1
            detail = f"replacement at level {candidate}"
            if candidate != level:
                detail += f" (wanted {level}; stepped down for power)"
            self._audit("respawn", instance.name, detail)
            return True
        return False  # no level fits the budget right now

    # ------------------------------------------------------------------
    def _audit(self, action: str, target: str, detail: str) -> None:
        if self.observability is None or self.observability.audit is None:
            return
        self.observability.audit.record(
            ResilienceEntry(
                time=self.sim.now,
                controller="health-monitor",
                action=action,
                target=target,
                detail=detail,
            )
        )
