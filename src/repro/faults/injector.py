"""The fault injector: turns a :class:`FaultPlan` into simulated damage.

Everything the injector does is deterministic given (plan, seed): specs
fire at their absolute times off the sim clock, victims are drawn from a
dedicated seeded stream over the iid-sorted running pool, and every
action (or deliberate no-op, when a spec finds no victim) is appended to
an immutable event log.  The log — not wall-clock prints — is the
interface the determinism tests and the goodput report consume; each
event is also mirrored into the audit log and the
``repro_faults_injected_total`` counter when observability is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.audit import FaultEntry
from repro.service.application import Application
from repro.service.instance import ServiceInstance
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import SeededStream

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.telemetry import PowerTelemetry
    from repro.obs import Observability
    from repro.service.rpc import RpcFabric

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or a spec that found nothing to break)."""

    time: float
    kind: str
    target: str
    detail: str


class FaultInjector:
    """Schedules and fires every spec of one plan."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        stream: SeededStream,
        application: Application,
        telemetry: Optional["PowerTelemetry"] = None,
        fabric: Optional["RpcFabric"] = None,
        observability: Optional["Observability"] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.stream = stream
        self.application = application
        self.telemetry = telemetry
        self.fabric = fabric
        self.observability = observability
        self.events: list[FaultEvent] = []
        self._started = False

    def start(self) -> None:
        """Schedule every spec at its absolute time (CONTROL priority,
        so a fault landing on a completion instant never races ahead of
        the work completing at that same instant)."""
        if self._started:
            return
        self._started = True
        for spec in self.plan.specs:
            delay = spec.at_s - self.sim.now
            if delay < 0.0:
                continue
            self.sim.schedule(
                delay, self._fire, spec, priority=EventPriority.CONTROL
            )

    # ------------------------------------------------------------------
    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind is FaultKind.INSTANCE_CRASH:
            self._fire_crash(spec)
        elif spec.kind is FaultKind.INSTANCE_HANG:
            self._fire_hang(spec)
        elif spec.kind is FaultKind.INSTANCE_DEGRADE:
            self._fire_degrade(spec)
        elif spec.kind is FaultKind.TELEMETRY_DROPOUT:
            self._fire_telemetry_dropout(spec)
        elif spec.kind is FaultKind.TELEMETRY_NOISE:
            self._fire_telemetry_noise(spec)
        else:
            self._fire_rpc(spec)

    def _pick_victim(self, spec: FaultSpec) -> Optional[ServiceInstance]:
        """Draw a victim from the (optionally stage-filtered) running pool.

        The pool is iid-sorted before the draw so the choice depends only
        on which instances exist, never on incidental list order.  A
        stream draw happens even when the filtered pool is empty, keeping
        later draws aligned across runs that differ only in pool state —
        a *running* difference already implies diverged histories, but an
        *empty vs non-empty* race must not cascade.
        """
        pool = [
            inst
            for inst in self.application.running_instances()
            if spec.stage is None or inst.stage_name == spec.stage
        ]
        pool.sort(key=lambda inst: inst.iid)
        index = self.stream.randrange(len(pool)) if pool else self.stream.randrange(1)
        if not pool:
            return None
        return pool[index]

    def _fire_crash(self, spec: FaultSpec) -> None:
        victim = self._pick_victim(spec)
        if victim is None:
            self._record(spec.kind, "none", "no running instance to crash")
            return
        stage = self.application.stage(victim.stage_name)
        orphans = stage.crash_instance(victim)
        self._record(
            spec.kind, victim.name, f"orphaned {orphans} job(s)"
        )

    def _fire_hang(self, spec: FaultSpec) -> None:
        victim = self._pick_victim(spec)
        if victim is None:
            self._record(spec.kind, "none", "no running instance to hang")
            return
        victim.hang()
        self._record(
            spec.kind, victim.name, f"hung for up to {spec.duration_s:.1f}s"
        )
        self.sim.schedule(
            spec.duration_s, self._repair, victim, priority=EventPriority.CONTROL
        )

    def _repair(self, victim: ServiceInstance) -> None:
        # The health monitor may have crash-recycled the hung instance
        # already; ``repair`` is a no-op then (the crash cleared the flag).
        if not victim.hung:
            return
        victim.repair()
        self._record(FaultKind.INSTANCE_HANG, victim.name, "repaired")

    def _fire_degrade(self, spec: FaultSpec) -> None:
        victim = self._pick_victim(spec)
        if victim is None:
            self._record(spec.kind, "none", "no running instance to degrade")
            return
        victim.degrade(spec.magnitude)
        self._record(
            spec.kind,
            victim.name,
            f"work rate x{spec.magnitude:.2f} for {spec.duration_s:.1f}s",
        )
        self.sim.schedule(
            spec.duration_s, self._restore, victim, priority=EventPriority.CONTROL
        )

    def _restore(self, victim: ServiceInstance) -> None:
        if not victim.running:
            return
        victim.degrade(1.0)
        self._record(FaultKind.INSTANCE_DEGRADE, victim.name, "restored")

    def _fire_telemetry_dropout(self, spec: FaultSpec) -> None:
        if self.telemetry is None:
            self._record(spec.kind, "telemetry", "no telemetry attached; no-op")
            return
        until = spec.at_s + spec.duration_s
        self.telemetry.inject_dropout(until)
        self._record(
            spec.kind, "telemetry", f"samples dropped until t={until:.1f}s"
        )

    def _fire_telemetry_noise(self, spec: FaultSpec) -> None:
        if self.telemetry is None:
            self._record(spec.kind, "telemetry", "no telemetry attached; no-op")
            return
        until = spec.at_s + spec.duration_s
        self.telemetry.inject_noise(until, spec.magnitude, self.stream)
        self._record(
            spec.kind,
            "telemetry",
            f"±{spec.magnitude:.2f} noise until t={until:.1f}s",
        )

    def _fire_rpc(self, spec: FaultSpec) -> None:
        if self.fabric is None:
            self._record(spec.kind, "fabric", "no rpc fabric attached; no-op")
            return
        until = spec.at_s + spec.duration_s
        if spec.kind is FaultKind.RPC_DELAY:
            self.fabric.inject_fault(until, extra_delay_s=spec.magnitude)
            detail = f"+{spec.magnitude * 1000:.0f}ms until t={until:.1f}s"
        else:
            self.fabric.inject_fault(
                until, loss_probability=spec.magnitude, stream=self.stream
            )
            detail = f"loss p={spec.magnitude:.2f} until t={until:.1f}s"
        self._record(spec.kind, "fabric", detail)

    # ------------------------------------------------------------------
    def _record(self, kind: FaultKind, target: str, detail: str) -> None:
        self.events.append(
            FaultEvent(time=self.sim.now, kind=kind.value, target=target, detail=detail)
        )
        if self.observability is None:
            return
        if self.observability.audit is not None:
            self.observability.audit.record(
                FaultEntry(
                    time=self.sim.now,
                    controller="fault-injector",
                    fault=kind.value,
                    target=target,
                    detail=detail,
                )
            )
        if self.observability.metrics is not None:
            self.observability.metrics.counter(
                "repro_faults_injected_total",
                "Fault events fired by the injector",
            ).inc(kind=kind.value)
        if self.observability.stream is not None:
            self.observability.stream.mark(
                "fault", kind=kind.value, target=target, detail=detail
            )
