"""Goodput accounting for chaos runs.

The zero-orphan invariant — every admitted query is *completed*,
*retried-then-completed* or *explicitly timed-out*, never silently lost —
is checked here, where all the counters meet: the application's
submitted/completed/timed-out tallies, the per-stage resilience stats,
the stage crash/orphan counts, the health monitor's detections and
respawns, and the injector's event log.  :meth:`GoodputReport.render`
prints the report the ``repro chaos`` subcommand shows, with deltas
against a fault-free baseline when one was run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.controller import BaseController
    from repro.experiments.runner import RunResult
    from repro.faults.injector import FaultInjector
    from repro.faults.monitor import HealthMonitor
    from repro.service.application import Application

__all__ = ["GoodputReport"]


@dataclass(frozen=True)
class GoodputReport:
    """Where every admitted query ended up, plus the recovery ledger."""

    plan: str
    submitted: int
    completed: int
    retried_completed: int
    timed_out: int
    in_flight: int
    orphaned: int
    retries: int
    attempt_timeouts: int
    crash_requeues: int
    crashes: int
    hangs_detected: int
    respawns: int
    faults_injected: int
    degraded_ticks: int
    safety_clamps: int
    p99_s: float
    qps: float
    average_power_watts: float
    #: Guard section (violations, ladder transitions, time in safe mode);
    #: ``None`` when the run was not supervised.
    guard: Optional[dict] = None

    @property
    def goodput_fraction(self) -> float:
        """Fraction of admitted queries that completed."""
        if self.submitted == 0:
            return 0.0
        return self.completed / self.submitted

    @property
    def accounted(self) -> bool:
        """The zero-orphan invariant: every query settled, none lost.

        ``in_flight`` must be zero (the drain window let every retry
        resolve) and no stage recorded a truly lost job.
        """
        return self.in_flight == 0 and self.orphaned == 0

    @classmethod
    def from_run(
        cls,
        plan: str,
        result: "RunResult",
        application: "Application",
        injector: "FaultInjector",
        monitor: "HealthMonitor",
        controller: "BaseController",
    ) -> "GoodputReport":
        # Duck-typed so the report needs no guard import: only the
        # SupervisedController carries a guard_summary() method.
        summarize_guard = getattr(controller, "guard_summary", None)
        guard = None if summarize_guard is None else summarize_guard().to_dict()
        retries = 0
        attempt_timeouts = 0
        crash_requeues = 0
        orphaned = 0
        crashes = 0
        for stage in application.stages:
            orphaned += stage.orphaned_jobs
            crashes += stage.crashes
            resilience = stage.resilience
            if resilience is not None:
                retries += resilience.retries
                attempt_timeouts += resilience.timeouts
                crash_requeues += resilience.crash_requeues
        return cls(
            plan=plan,
            submitted=application.submitted,
            completed=application.completed,
            retried_completed=application.retried_completed,
            timed_out=application.timed_out,
            in_flight=application.in_flight,
            orphaned=orphaned,
            retries=retries,
            attempt_timeouts=attempt_timeouts,
            crash_requeues=crash_requeues,
            crashes=crashes,
            hangs_detected=monitor.hangs_detected,
            respawns=monitor.respawns,
            faults_injected=len(injector.events),
            degraded_ticks=controller.degraded_ticks,
            safety_clamps=controller.safety_clamps,
            p99_s=result.latency.p99,
            qps=result.queries_completed / result.duration_s,
            average_power_watts=result.average_power_watts,
            guard=guard,
        )

    # ------------------------------------------------------------------
    def render(self, baseline: Optional["RunResult"] = None) -> str:
        """Human-readable report, with deltas vs a fault-free baseline."""
        lines = [
            f"chaos plan: {self.plan}",
            "",
            "query accounting",
            f"  submitted          {self.submitted}",
            f"  completed          {self.completed}"
            f" ({self.goodput_fraction:.1%} goodput)",
            f"  retried+completed  {self.retried_completed}",
            f"  timed out          {self.timed_out}",
            f"  in flight at end   {self.in_flight}",
            f"  orphaned (lost)    {self.orphaned}",
            f"  accounted          {'yes' if self.accounted else 'NO'}",
            "",
            "resilience",
            f"  retries            {self.retries}",
            f"  attempt timeouts   {self.attempt_timeouts}",
            f"  crash requeues     {self.crash_requeues}",
            f"  crashes            {self.crashes}",
            f"  hangs detected     {self.hangs_detected}",
            f"  respawns           {self.respawns}",
            f"  faults injected    {self.faults_injected}",
            f"  degraded ticks     {self.degraded_ticks}",
            f"  safety clamps      {self.safety_clamps}",
            "",
            "service under faults",
        ]
        lines.append(self._metric_line("P99 latency", self.p99_s, "s", None))
        lines.append(self._metric_line("throughput", self.qps, "qps", None))
        lines.append(
            self._metric_line("avg power", self.average_power_watts, "W", None)
        )
        if self.guard is not None:
            lines.extend(["", *self._guard_lines(self.guard)])
        if baseline is not None:
            base_qps = baseline.queries_completed / baseline.duration_s
            lines.extend(
                [
                    "",
                    "vs fault-free baseline",
                    self._metric_line(
                        "P99 latency", self.p99_s, "s", baseline.latency.p99
                    ),
                    self._metric_line("throughput", self.qps, "qps", base_qps),
                    self._metric_line(
                        "avg power",
                        self.average_power_watts,
                        "W",
                        baseline.average_power_watts,
                    ),
                ]
            )
        return "\n".join(lines)

    @staticmethod
    def _guard_lines(guard: dict) -> list[str]:
        by_monitor = guard.get("violations_by_monitor", {})
        described = ", ".join(
            f"{monitor} {count}" for monitor, count in sorted(by_monitor.items())
        )
        lines = [
            "controller guard",
            f"  ladder             {' -> '.join(guard.get('modes', ()))}",
            f"  final mode         {guard.get('final_mode', '?')}",
            f"  violations         {guard.get('violations_total', 0)}"
            + (f" ({described})" if described else ""),
            f"  clamped actions    {guard.get('clamped_actions', 0)}",
            f"  enforced stepdowns {guard.get('enforced_step_downs', 0)}",
        ]
        mode_seconds = guard.get("mode_seconds", {})
        for mode, seconds in mode_seconds.items():
            lines.append(f"  time in {mode:<10} {seconds:.1f} s")
        transitions = guard.get("transitions", ())
        lines.append(f"  ladder transitions {len(transitions)}")
        for transition in transitions:
            lines.append(
                f"    t={transition['time']:.1f}s "
                f"{transition['from_mode']} -> {transition['to_mode']} "
                f"({transition['reason']})"
            )
        return lines

    @staticmethod
    def _metric_line(
        label: str, value: float, unit: str, baseline: Optional[float]
    ) -> str:
        line = f"  {label:<18} {value:.3f} {unit}"
        if baseline is None:
            return line
        delta = value - baseline
        if baseline > 0.0:
            return (
                f"{line}  (baseline {baseline:.3f} {unit}, "
                f"{delta:+.3f} / {delta / baseline:+.1%})"
            )
        return f"{line}  (baseline {baseline:.3f} {unit}, {delta:+.3f})"
