"""The chaos harness: one object that arms the whole fault subsystem.

:class:`ChaosHarness` is what :func:`~repro.experiments.runner.run_latency_experiment`
accepts via its ``chaos`` parameter.  It owns the plan and the resilience
config, builds the optional RPC fabric, and at install time wires
together everything the fault subsystem needs: the per-stage retry
layers, the :class:`~repro.faults.injector.FaultInjector`, the
:class:`~repro.faults.monitor.HealthMonitor`, and the controller's
graceful-degradation hooks (metrics, telemetry staleness guard).

:func:`run_chaos_experiment` is the turnkey entry point behind
``repro chaos``: it runs the faulty cell (with a drain window so every
retry settles), optionally the fault-free baseline of the same cell, and
folds both into a :class:`~repro.faults.report.GoodputReport`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.errors import ExperimentError
from repro.obs import Observability
from repro.core.controller import ControllerConfig
from repro.scenario.config import (
    TABLE2_CONTROLLER_CONFIG,
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
)
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.monitor import HealthMonitor, ResilienceConfig
from repro.faults.plan import FaultPlan
from repro.faults.report import GoodputReport
from repro.service.rpc import RpcFabric
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.budget import PowerBudget
    from repro.cluster.machine import Machine
    from repro.cluster.telemetry import PowerTelemetry
    from repro.core.controller import BaseController
    from repro.experiments.runner import RunResult, StageAllocation
    from repro.guard.config import GuardConfig
    from repro.service.application import Application
    from repro.workloads.loadgen import LoadTrace

__all__ = ["ChaosHarness", "ChaosRunResult", "run_chaos_experiment"]

#: Telemetry samples older than this mark the controller's power view dark.
_TELEMETRY_STALENESS_S = 15.0


class ChaosHarness:
    """Plan + resilience config, ready to be threaded into a runner."""

    def __init__(
        self,
        plan: FaultPlan,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self.plan = plan
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.injector: Optional[FaultInjector] = None
        self.monitor: Optional[HealthMonitor] = None
        self.application: Optional["Application"] = None
        self.controller: Optional["BaseController"] = None
        self._fabric: Optional[RpcFabric] = None

    @property
    def fabric(self) -> Optional[RpcFabric]:
        """The zero-latency fabric built for RPC faults, if the plan has any."""
        return self._fabric

    def build_fabric(
        self, sim: Simulator, streams: RandomStreams
    ) -> Optional[RpcFabric]:
        """A fabric to route hops through, only when the plan needs one.

        The fabric is created with zero base latency, so outside fault
        windows it delivers at the same simulated instant as the direct
        path — plans without RPC faults skip it entirely and the
        application wiring stays untouched.
        """
        if not self.plan.touches_rpc:
            return None
        self._fabric = RpcFabric(sim, latency_s=0.0)
        return self._fabric

    def install(
        self,
        sim: Simulator,
        machine: "Machine",
        application: "Application",
        controller: "BaseController",
        budget: "PowerBudget",
        telemetry: Optional["PowerTelemetry"],
        streams: RandomStreams,
        observability: Optional[Observability],
    ) -> None:
        """Wire the fault subsystem into a freshly built run."""
        metrics = None if observability is None else observability.metrics
        application.attach_resilience(self.resilience.retry, streams, metrics)
        self.injector = FaultInjector(
            sim,
            self.plan,
            streams.stream("faults"),
            application,
            telemetry=telemetry,
            fabric=self._fabric,
            observability=observability,
        )
        self.monitor = HealthMonitor(
            sim,
            application,
            budget,
            config=self.resilience,
            observability=observability,
        )
        if metrics is not None:
            controller.attach_metrics(metrics)
        if telemetry is not None:
            controller.attach_telemetry(telemetry, staleness_s=_TELEMETRY_STALENESS_S)
        self.application = application
        self.controller = controller

    def start(self) -> None:
        assert self.injector is not None and self.monitor is not None
        self.injector.start()
        self.monitor.start()

    def stop(self) -> None:
        if self.monitor is not None:
            self.monitor.stop()


@dataclass
class ChaosRunResult:
    """A faulty run, its goodput ledger, and the optional clean twin."""

    plan: FaultPlan
    result: "RunResult"
    report: GoodputReport
    events: tuple[FaultEvent, ...]
    baseline: Optional["RunResult"]
    observability: Observability


def drain_window_s(resilience: ResilienceConfig, n_stages: int) -> float:
    """How long after the last arrival the slowest query can still settle.

    Worst case, a query re-attempts ``max_attempts`` times at *every*
    stage, each attempt burning a full timeout plus the maximum backoff;
    one extra health interval covers a respawn the last retry waits on.
    """
    retry = resilience.retry
    per_stage = retry.max_attempts * (retry.timeout_s + retry.backoff_max_s)
    return n_stages * per_stage + resilience.health_interval_s


def run_chaos_experiment(
    app: str,
    policy: str,
    trace: "LoadTrace",
    duration_s: float,
    plan: FaultPlan,
    seed: int = 1,
    resilience: Optional[ResilienceConfig] = None,
    with_baseline: bool = True,
    budget_watts: float = TABLE2_POWER_BUDGET_WATTS,
    initial_freq_ghz: float = TABLE2_INITIAL_FREQ_GHZ,
    controller_config: ControllerConfig = TABLE2_CONTROLLER_CONFIG,
    allocation: Optional[Mapping[str, "StageAllocation"]] = None,
    n_cores: int = 16,
    guard: Optional["GuardConfig"] = None,
    slo_target_s: Optional[float] = None,
) -> ChaosRunResult:
    """Run one latency cell under a fault plan (plus a clean twin).

    The faulty run gets the full resilience stack and the controller's
    stale-metric guard; the baseline (same app/policy/trace/seed, no
    chaos) goes through the untouched fault-free path, so its numbers are
    bit-identical to a normal :func:`run_latency_experiment` call.

    ``guard`` supervises the faulty run's controller (monitors + the
    degradation ladder; the report grows a guard section).
    ``slo_target_s`` arms an SLO tracker on the faulty run so the
    guard's SLO-storm monitor has a burn-rate gauge to watch.
    """
    from repro.experiments.runner import run_latency_experiment
    from repro.obs.slo import SloTracker
    from repro.scenario.builder import _profiles_for

    config = resilience if resilience is not None else ResilienceConfig()
    harness = ChaosHarness(plan, config)
    observability = Observability.enabled()
    if slo_target_s is not None:
        observability.slo = SloTracker(
            target_s=float(slo_target_s), registry=observability.metrics
        )
    guarded_config = dataclasses.replace(controller_config, stale_metric_guard=True)
    drain_s = drain_window_s(config, len(_profiles_for(app)))
    result = run_latency_experiment(
        app,
        policy,
        trace,
        duration_s,
        seed=seed,
        budget_watts=budget_watts,
        initial_freq_ghz=initial_freq_ghz,
        controller_config=guarded_config,
        allocation=allocation,
        n_cores=n_cores,
        observability=observability,
        chaos=harness,
        drain_s=drain_s,
        guard=guard,
    )
    if (
        harness.application is None
        or harness.injector is None
        or harness.monitor is None
        or harness.controller is None
    ):
        raise ExperimentError("chaos harness was never installed by the runner")
    report = GoodputReport.from_run(
        plan.name,
        result,
        harness.application,
        harness.injector,
        harness.monitor,
        harness.controller,
    )
    baseline: Optional["RunResult"] = None
    if with_baseline:
        baseline = run_latency_experiment(
            app,
            policy,
            trace,
            duration_s,
            seed=seed,
            budget_watts=budget_watts,
            initial_freq_ghz=initial_freq_ghz,
            controller_config=controller_config,
            allocation=allocation,
            n_cores=n_cores,
        )
    return ChaosRunResult(
        plan=plan,
        result=result,
        report=report,
        events=tuple(harness.injector.events),
        baseline=baseline,
        observability=observability,
    )
