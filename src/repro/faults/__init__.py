"""Deterministic fault injection and the resilience harness.

The package splits cleanly into *breaking things* and *surviving them*:

* :mod:`repro.faults.plan` — declarative, JSON round-trippable fault
  schedules (crash, hang, degrade, telemetry dropout/noise, RPC
  delay/loss) with built-in named scenarios;
* :mod:`repro.faults.injector` — fires a plan off the sim clock with a
  dedicated seeded stream, logging every event;
* :mod:`repro.faults.monitor` — behavioural hang detection and
  power-aware respawn of crashed instances;
* :mod:`repro.faults.report` — the goodput ledger that proves the
  zero-orphan invariant;
* :mod:`repro.faults.chaos` — the harness wiring it all into a runner,
  and the turnkey :func:`~repro.faults.chaos.run_chaos_experiment`.

Everything is opt-in: a run without a :class:`ChaosHarness` never
imports this package and stays bit-identical to the pre-fault codebase.
"""

from repro.faults.chaos import ChaosHarness, ChaosRunResult, run_chaos_experiment
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.monitor import HealthMonitor, ResilienceConfig
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    PlanValidationError,
    load_plan,
    named_plans,
)
from repro.faults.report import GoodputReport

__all__ = [
    "ChaosHarness",
    "ChaosRunResult",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "GoodputReport",
    "HealthMonitor",
    "PlanValidationError",
    "ResilienceConfig",
    "load_plan",
    "named_plans",
    "run_chaos_experiment",
]
