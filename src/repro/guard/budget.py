"""Live power-budget governance: the guard path for runtime cap changes.

The ``reprod`` control plane lets an operator move the power budget
while a stack is running.  A raw ``budget.budget_watts = x`` assignment
would be invisible (no audit trail) and unsafe (a cap below the current
draw trips the hard invariant at the next assert without anything
acting to fix it).  :func:`apply_budget_change` is the one sanctioned
path: the request is clamped to the feasible floor — the draw reachable
with every running instance at the ladder minimum — the cap is moved,
and any resulting overdraw is corrected immediately by stepping the
hottest instances down (the same enforcement order the
:class:`~repro.guard.supervisor.SupervisedController` cap monitor
uses), with the whole adjustment recorded as a typed
:class:`~repro.obs.audit.BudgetChangeEntry`.

:func:`retarget_slo` is the analogous sanctioned path for moving a live
SLO target; the attainment window keeps its history, so the burn-rate
gauges react from the next completion on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ClusterError
from repro.units import EPSILON_WATTS
from repro.cluster.budget import PowerBudget
from repro.core.controller import BaseController
from repro.obs.audit import AuditLog, BudgetChangeEntry, SloRetargetEntry
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.service.application import Application
from repro.service.instance import ServiceInstance

__all__ = [
    "BudgetChange",
    "SloRetarget",
    "feasible_floor_watts",
    "apply_budget_change",
    "retarget_slo",
]


@dataclass(frozen=True)
class BudgetChange:
    """What one live budget adjustment actually did."""

    time: float
    requested_watts: float
    applied_watts: float
    previous_watts: float
    floor_watts: float
    clamped: bool
    step_downs: int
    source: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "requested_watts": self.requested_watts,
            "applied_watts": self.applied_watts,
            "previous_watts": self.previous_watts,
            "floor_watts": self.floor_watts,
            "clamped": self.clamped,
            "step_downs": self.step_downs,
            "source": self.source,
        }


@dataclass(frozen=True)
class SloRetarget:
    """What one live SLO retarget did."""

    time: float
    previous_target_s: float
    target_s: float
    source: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "previous_target_s": self.previous_target_s,
            "target_s": self.target_s,
            "source": self.source,
        }


def feasible_floor_watts(
    budget: PowerBudget, application: Application
) -> float:
    """The lowest draw DVFS alone can reach: every running instance at
    the ladder minimum, plus whatever else the budget's scope draws."""
    model = budget.machine.power_model
    reducible = 0.0
    for instance in application.running_instances():
        ladder = instance.core.ladder
        reducible += model.power_of_level(
            ladder, instance.level
        ) - model.power_of_level(ladder, ladder.min_level)
    return max(0.0, float(budget.draw()) - reducible)


def _hottest_running(application: Application) -> Optional[ServiceInstance]:
    """The enforcement victim order the supervisor's cap monitor uses."""
    candidates = [
        instance
        for instance in application.running_instances()
        if instance.level > instance.core.ladder.min_level
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda i: (i.level, i.name))


def apply_budget_change(
    *,
    budget: PowerBudget,
    application: Application,
    controller: BaseController,
    requested_watts: float,
    now: float,
    audit: Optional[AuditLog] = None,
    metrics: Optional[MetricsRegistry] = None,
    source: str = "ctl",
) -> BudgetChange:
    """Move the power cap live, enforcing and auditing the change.

    The request is clamped to :func:`feasible_floor_watts` — a cap no
    amount of stepping down could satisfy is refused rather than left
    to trip the hard invariant — then the hottest running instances are
    stepped down (one rung at a time, each logged as a
    ``budget-change`` frequency action on ``controller``) until the
    draw fits under the new cap.  Raising the cap never touches
    frequencies; the controller spends the new headroom on its own
    schedule.
    """
    if requested_watts <= 0.0:
        raise ClusterError(
            f"budget must be > 0 W, got {requested_watts}"
        )
    previous = float(budget.budget_watts)
    floor = feasible_floor_watts(budget, application)
    applied = max(float(requested_watts), floor)
    clamped = applied > float(requested_watts)
    budget.budget_watts = applied
    step_downs = 0
    while budget.draw() > budget.budget_watts + EPSILON_WATTS:
        victim = _hottest_running(application)
        if victim is None:
            break
        controller.set_instance_level(victim, victim.level - 1, "budget-change")
        step_downs += 1
    budget.assert_within()
    change = BudgetChange(
        time=now,
        requested_watts=float(requested_watts),
        applied_watts=applied,
        previous_watts=previous,
        floor_watts=floor,
        clamped=clamped,
        step_downs=step_downs,
        source=source,
    )
    if audit is not None:
        audit.record(
            BudgetChangeEntry(
                time=now,
                controller=controller.name,
                requested_watts=change.requested_watts,
                applied_watts=change.applied_watts,
                previous_watts=change.previous_watts,
                floor_watts=change.floor_watts,
                clamped=change.clamped,
                step_downs=change.step_downs,
                source=source,
            )
        )
    if metrics is not None:
        metrics.counter(
            "repro_budget_changes_total",
            "Live power-budget adjustments applied through the guard",
        ).inc(source=source)
    return change


def retarget_slo(
    *,
    slo: SloTracker,
    target_s: float,
    now: float,
    controller_name: str = "serve",
    audit: Optional[AuditLog] = None,
    metrics: Optional[MetricsRegistry] = None,
    source: str = "ctl",
) -> SloRetarget:
    """Move a live SLO target, auditing the change.

    Completions already in the attainment window keep the verdicts they
    were scored with; the new target applies from the next completion.
    """
    if target_s <= 0.0:
        raise ClusterError(f"SLO target must be > 0 s, got {target_s}")
    previous = float(slo.target_s)
    slo.target_s = float(target_s)
    retarget = SloRetarget(
        time=now,
        previous_target_s=previous,
        target_s=float(target_s),
        source=source,
    )
    if audit is not None:
        audit.record(
            SloRetargetEntry(
                time=now,
                controller=controller_name,
                previous_target_s=previous,
                target_s=float(target_s),
                source=source,
            )
        )
    if metrics is not None:
        metrics.counter(
            "repro_slo_retargets_total",
            "Live SLO retargets applied through the guard",
        ).inc(source=source)
    return retarget
