"""Action clamping: the guard's last line of defense.

The wrapped policy drives DVFS through a :class:`ClampingActuator`
instead of the raw :class:`~repro.cluster.dvfs.DvfsActuator`.  Feasible
requests pass through byte-identically; an out-of-bounds level is
clipped to the ladder, and a raise that would overdraw the power budget
is capped at the highest level the remaining headroom funds.  Every
clip is counted and recorded — clamping is visible, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.units import EPSILON_WATTS
from repro.cluster.budget import PowerBudget
from repro.cluster.core import Core
from repro.cluster.dvfs import DvfsActuator
from repro.sim.engine import Simulator

__all__ = ["ClampEvent", "ClampingActuator"]


@dataclass(frozen=True)
class ClampEvent:
    """One request clipped to the feasible set."""

    time: float
    core: int
    requested_level: int
    applied_level: int
    reason: str


class ClampingActuator(DvfsActuator):
    """A DVFS actuator that clips infeasible requests instead of erroring."""

    def __init__(
        self,
        sim: Simulator,
        budget: PowerBudget,
        transition_latency_s: float = 0.0,
    ) -> None:
        super().__init__(sim, transition_latency_s)
        self.budget = budget
        self.clamps: List[ClampEvent] = []

    @property
    def clamped_actions(self) -> int:
        return len(self.clamps)

    def set_level(self, core: Core, level: int) -> None:
        ladder = core.ladder
        applied = int(ladder.clamp_level(level))
        reason = "ladder-bounds" if applied != level else ""
        current = int(core.level)
        if applied > current:
            model = self.budget.machine.power_model
            extra = model.power_of_level(ladder, applied) - model.power_of_level(
                ladder, current
            )
            headroom = self.budget.budget_watts - self.budget.draw()
            if extra > headroom + EPSILON_WATTS:
                fundable = model.max_level_within(
                    ladder,
                    model.power_of_level(ladder, current)
                    + max(0.0, float(headroom)),
                )
                applied = current if fundable is None else max(current, fundable)
                reason = "budget-headroom"
        if reason:
            self.clamps.append(
                ClampEvent(
                    time=self.sim.now,
                    core=core.cid,
                    requested_level=level,
                    applied_level=applied,
                    reason=reason,
                )
            )
        if applied == current and reason:
            # Fully clamped to a no-op: nothing to actuate (and no
            # request counted — the raw actuator never saw one).
            return
        super().set_level(core, applied)
