"""Controller supervision: invariant monitors, a graceful-degradation
ladder and safe-mode fallback.

The control plane is the one part of the stack PR 4's resilience work
still trusted blindly: a buggy or oscillating policy (or a future
learned controller) can overshoot the power cap, thrash boost decisions
or rank on garbage estimates with no detection and no fallback.  This
package is the safety shield:

* :mod:`repro.guard.monitors` — cheap read-only invariant checks run
  every control tick (budget cap, ladder bounds, estimate sanity,
  boost/withdraw oscillation, SLO-violation storms);
* :mod:`repro.guard.supervisor` — :class:`SupervisedController`, a
  wrapper implementing the normal controller interface that walks a
  configurable degradation ladder on violations (policy → conserve →
  static uniform-power safe mode) with hysteresis and a probation
  window before re-promotion, every move audited;
* :mod:`repro.guard.actuator` — :class:`ClampingActuator`, the last
  line of defense: out-of-bounds DVFS requests are clipped to the
  feasible set and counted rather than applied raw.

Disabled by default: a scenario without a ``guard`` block builds the
bare policy and pays nothing.
"""

from repro.guard.actuator import ClampEvent, ClampingActuator
from repro.guard.budget import (
    BudgetChange,
    SloRetarget,
    apply_budget_change,
    feasible_floor_watts,
    retarget_slo,
)
from repro.guard.config import GuardConfig, guard_from_spec, guard_to_spec
from repro.guard.ladder import ConserveController, SafeModeController
from repro.guard.monitors import (
    BudgetCapMonitor,
    EstimateSanityMonitor,
    GuardMonitor,
    LadderBoundsMonitor,
    OscillationMonitor,
    SloStormMonitor,
)
from repro.guard.supervisor import GuardSummary, SupervisedController
from repro.guard.violations import GuardTransition, GuardViolation

__all__ = [
    "GuardConfig",
    "guard_to_spec",
    "guard_from_spec",
    "GuardViolation",
    "GuardTransition",
    "GuardMonitor",
    "BudgetCapMonitor",
    "LadderBoundsMonitor",
    "EstimateSanityMonitor",
    "OscillationMonitor",
    "SloStormMonitor",
    "ClampEvent",
    "ClampingActuator",
    "BudgetChange",
    "SloRetarget",
    "apply_budget_change",
    "feasible_floor_watts",
    "retarget_slo",
    "ConserveController",
    "SafeModeController",
    "GuardSummary",
    "SupervisedController",
]
