"""The graceful-degradation rungs below the wrapped policy.

Two fallback controllers, each implementing the normal
:class:`~repro.core.controller.BaseController` interface so the
supervisor can swap them in without touching the stack:

* :class:`ConserveController` — never boosts and never clones; it only
  sheds power, stepping the hottest instance down until draw sits under
  a configurable headroom fraction of the cap.  The rung for "the
  policy misbehaves but the system is basically healthy".
* :class:`SafeModeController` — static uniform power: every running
  instance is pinned to the highest common DVFS level the budget funds
  (net of health-monitor reservations).  No feedback, no estimates, no
  way to oscillate — the rung of last resort.
"""

from __future__ import annotations

from typing import Optional

from repro.units import EPSILON_WATTS
from repro.cluster.budget import PowerBudget
from repro.cluster.dvfs import DvfsActuator
from repro.core.controller import BaseController, ControllerConfig
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.instance import ServiceInstance
from repro.sim.engine import Simulator

__all__ = ["ConserveController", "SafeModeController"]


class ConserveController(BaseController):
    """Shed-only rung: steps the hottest instance down, never boosts."""

    name = "conserve"

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        budget: PowerBudget,
        dvfs: DvfsActuator,
        config: Optional[ControllerConfig] = None,
        headroom: float = 0.9,
    ) -> None:
        super().__init__(sim, application, command_center, budget, dvfs, config)
        self.headroom = float(headroom)

    def _hottest(self) -> Optional[ServiceInstance]:
        candidates = [
            instance
            for instance in self.application.running_instances()
            if instance.level > instance.core.ladder.min_level
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda i: (i.level, i.name))

    def adjust(self, now: float) -> None:
        target = self.budget.budget_watts * self.headroom
        stepped = 0
        while self.budget.draw() > target + EPSILON_WATTS:
            victim = self._hottest()
            if victim is None:
                break
            self.set_instance_level(victim, victim.level - 1, reason="conserve")
            stepped += 1
        if stepped == 0:
            self._skip(
                f"draw {self.budget.draw():.2f} W within conserve target "
                f"{target:.2f} W"
            )


class SafeModeController(BaseController):
    """Static uniform-power rung: one common level, recomputed each tick.

    The level is the highest ``L`` with ``n_running * power(L)`` within
    the budget net of reservations, so crash respawns (which draw on a
    reserved slice) are never starved.  Re-applied every tick because
    respawns and withdraws change the pool under it.
    """

    name = "safe"

    def uniform_level(self) -> Optional[int]:
        running = self.application.running_instances()
        if not running:
            return None
        ladder = self.budget.machine.ladder
        model = self.budget.machine.power_model
        usable = max(
            0.0, float(self.budget.budget_watts - self.budget.reserved_watts)
        )
        per_instance = usable / len(running)
        level = model.max_level_within(ladder, per_instance)
        return int(ladder.min_level) if level is None else int(level)

    def activate(self, now: float) -> None:
        """Apply the uniform level immediately on ladder entry."""
        self._retune(now)

    def adjust(self, now: float) -> None:
        self._retune(now)

    def _retune(self, now: float) -> None:
        level = self.uniform_level()
        if level is None:
            self._skip("no running instances")
            return
        changed = 0
        for instance in sorted(
            self.application.running_instances(), key=lambda i: i.name
        ):
            if instance.level != level:
                self.set_instance_level(instance, level, reason="safe-mode")
                changed += 1
        if changed == 0:
            self._skip(f"uniform safe level {level} already applied")
