"""The supervised controller: policy + monitors + degradation ladder.

:class:`SupervisedController` implements the normal controller
interface, so the stack builder, chaos harness and CLI treat it exactly
like the policy it wraps.  Internally it owns a ladder of rungs — the
wrapped policy first, then the configured fallbacks
(:class:`~repro.guard.ladder.ConserveController`,
:class:`~repro.guard.ladder.SafeModeController`) — and every control
tick it (1) delegates to the active rung, (2) runs the invariant
monitors, (3) corrects any budget-cap breach directly, and (4) walks
the ladder: repeated violations inside the hysteresis window demote one
rung; a violation-free probation period re-promotes one rung.

Only the supervisor's own periodic process is ever started — rung
controllers are driven by delegation, never by their own timers — so a
violation-free supervised run replays the exact event sequence of its
unsupervised twin (the byte-identical golden pins this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.units import EPSILON_WATTS
from repro.cluster.budget import PowerBudget
from repro.cluster.dvfs import DvfsActuator
from repro.cluster.telemetry import PowerTelemetry
from repro.core.controller import BaseController, ControllerConfig
from repro.guard.actuator import ClampingActuator
from repro.guard.config import GuardConfig
from repro.guard.ladder import ConserveController, SafeModeController
from repro.guard.monitors import (
    BudgetCapMonitor,
    EstimateSanityMonitor,
    GuardMonitor,
    LadderBoundsMonitor,
    OscillationMonitor,
    SloStormMonitor,
)
from repro.guard.violations import GuardTransition, GuardViolation
from repro.obs.audit import AuditLog, GuardTransitionEntry, GuardViolationEntry
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.instance import ServiceInstance
from repro.sim.engine import Simulator

__all__ = ["GuardSummary", "SupervisedController"]


@dataclass(frozen=True)
class GuardSummary:
    """What the guard saw and did over one run, for reports and JSON."""

    modes: Tuple[str, ...]
    final_mode: str
    violations_total: int
    violations_by_monitor: Tuple[Tuple[str, int], ...]
    transitions: Tuple[GuardTransition, ...]
    mode_seconds: Tuple[Tuple[str, float], ...]
    clamped_actions: int
    enforced_step_downs: int

    @property
    def safe_mode_engaged(self) -> bool:
        return any(t.to_mode == "safe" for t in self.transitions)

    @property
    def recovered(self) -> bool:
        return self.final_mode == self.modes[0]

    def to_dict(self) -> dict[str, Any]:
        return {
            "modes": list(self.modes),
            "final_mode": self.final_mode,
            "violations_total": self.violations_total,
            "violations_by_monitor": {
                monitor: count
                for monitor, count in self.violations_by_monitor
            },
            "transitions": [t.to_dict() for t in self.transitions],
            "mode_seconds": {mode: secs for mode, secs in self.mode_seconds},
            "clamped_actions": self.clamped_actions,
            "enforced_step_downs": self.enforced_step_downs,
            "safe_mode_engaged": self.safe_mode_engaged,
            "recovered": self.recovered,
        }


class SupervisedController(BaseController):
    """Wraps a policy in invariant monitors and a degradation ladder."""

    name = "supervised"

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        budget: PowerBudget,
        dvfs: DvfsActuator,
        config: Optional[ControllerConfig] = None,
        *,
        policy: Callable[..., BaseController],
        guard: Optional[GuardConfig] = None,
    ) -> None:
        super().__init__(sim, application, command_center, budget, dvfs, config)
        self.guard = guard if guard is not None else GuardConfig()
        #: The clamp shield between the untrusted policy and the cores.
        self.actuator = ClampingActuator(
            sim, budget, transition_latency_s=dvfs.transition_latency_s
        )
        primary = policy(
            sim, application, command_center, budget, self.actuator, self.config
        )
        self._rungs: List[BaseController] = [primary]
        for rung_name in self.guard.rungs():
            if rung_name == "conserve":
                self._rungs.append(
                    ConserveController(
                        sim,
                        application,
                        command_center,
                        budget,
                        dvfs,
                        self.config,
                        headroom=self.guard.conserve_headroom,
                    )
                )
            else:
                self._rungs.append(
                    SafeModeController(
                        sim, application, command_center, budget, dvfs, self.config
                    )
                )
        self.modes: Tuple[str, ...] = tuple(r.name for r in self._rungs)
        # One shared action log: rung actions land in the supervisor's
        # list, so RunResult.actions matches the unsupervised twin.
        for rung in self._rungs:
            rung.actions = self.actions
        self._mode_index = 0
        self._storm = SloStormMonitor(
            self.guard.burn_threshold, self.guard.storm_ticks
        )
        self._monitors: List[GuardMonitor] = [
            BudgetCapMonitor(budget),
            LadderBoundsMonitor(application),
            EstimateSanityMonitor(application, command_center),
            OscillationMonitor(
                self.actions, self.guard.osc_window_s, self.guard.osc_max_flips
            ),
            self._storm,
        ]
        self.violations: List[GuardViolation] = []
        self.transitions: List[GuardTransition] = []
        self.enforced_step_downs = 0
        self._violation_times: Deque[float] = deque()
        self._last_violation_s = float("-inf")
        self._last_transition_s = 0.0
        self.mode_seconds: dict[str, float] = {mode: 0.0 for mode in self.modes}
        self._mode_since = sim.now

    # ------------------------------------------------------------------
    # Controller interface: attach points forward to every rung
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The currently active rung's name."""
        return self.modes[self._mode_index]

    @property
    def active(self) -> BaseController:
        return self._rungs[self._mode_index]

    def attach_audit(self, audit: AuditLog) -> None:
        super().attach_audit(audit)
        for rung in self._rungs:
            rung.attach_audit(audit)

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        super().attach_metrics(registry)
        for rung in self._rungs:
            rung.attach_metrics(registry)

    def attach_telemetry(
        self, telemetry: PowerTelemetry, staleness_s: float = 15.0
    ) -> None:
        super().attach_telemetry(telemetry, staleness_s)
        for rung in self._rungs:
            rung.attach_telemetry(telemetry, staleness_s)

    def attach_slo(self, slo: SloTracker) -> None:
        super().attach_slo(slo)
        self._storm.attach(slo)

    # The base class tallies these as plain attributes; the supervisor
    # aggregates across rungs, so reads go through properties and the
    # base-class writes (init to zero, the occasional own clamp) are
    # folded into a private component.
    @property
    def degraded_ticks(self) -> int:
        return self._own_degraded_ticks + sum(
            r.degraded_ticks for r in self._rungs
        )

    @degraded_ticks.setter
    def degraded_ticks(self, value: int) -> None:
        rung_total = (
            sum(r.degraded_ticks for r in self._rungs)
            if hasattr(self, "_rungs")
            else 0
        )
        self._own_degraded_ticks = value - rung_total

    @property
    def safety_clamps(self) -> int:
        return (
            self._own_safety_clamps
            + sum(r.safety_clamps for r in self._rungs)
            + self.actuator.clamped_actions
        )

    @safety_clamps.setter
    def safety_clamps(self, value: int) -> None:
        other = (
            sum(r.safety_clamps for r in self._rungs)
            + self.actuator.clamped_actions
            if hasattr(self, "_rungs")
            else 0
        )
        self._own_safety_clamps = value - other

    def stop(self) -> None:
        self.mode_seconds[self.mode] += self.sim.now - self._mode_since
        self._mode_since = self.sim.now
        super().stop()

    # ------------------------------------------------------------------
    # The supervised tick
    # ------------------------------------------------------------------
    def adjust(self, now: float) -> None:
        self.active.adjust(now)
        fresh: List[GuardViolation] = []
        for monitor in self._monitors:
            fresh.extend(monitor.check(now))
        for violation in fresh:
            self._record_violation(violation)
        self._enforce_cap(now)
        self._walk_ladder(now, fresh)

    def _record_violation(self, violation: GuardViolation) -> None:
        self.violations.append(violation)
        if self.audit is not None:
            self.audit.record(
                GuardViolationEntry(
                    time=violation.time,
                    controller=self.name,
                    monitor=violation.monitor,
                    severity=violation.severity,
                    message=violation.message,
                    value=violation.value,
                    limit=violation.limit,
                )
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_guard_violations_total",
                "Runtime invariant violations seen by the controller guard",
            ).inc(monitor=violation.monitor)

    def _enforce_cap(self, now: float) -> None:
        """Directly correct a budget-cap breach before the invariant assert.

        The ladder reacts on the next tick; the cap cannot wait for it.
        Steps the hottest instance down until draw fits, each step
        logged as a ``guard-enforce`` frequency change.
        """
        while self.budget.draw() > self.budget.budget_watts + EPSILON_WATTS:
            victim = self._hottest_running()
            if victim is None:
                break
            self.set_instance_level(victim, victim.level - 1, "guard-enforce")
            self.enforced_step_downs += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_guard_enforced_stepdowns_total",
                    "Frequency step-downs forced by the budget-cap guard",
                ).inc(controller=self.name)

    def _hottest_running(self) -> Optional[ServiceInstance]:
        candidates = [
            instance
            for instance in self.application.running_instances()
            if instance.level > instance.core.ladder.min_level
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda i: (i.level, i.name))

    def _walk_ladder(self, now: float, fresh: List[GuardViolation]) -> None:
        if fresh:
            self._last_violation_s = now
            self._violation_times.extend(v.time for v in fresh)
        horizon = now - self.guard.violation_window_s
        while self._violation_times and self._violation_times[0] < horizon:
            self._violation_times.popleft()
        at_bottom = self._mode_index == len(self._rungs) - 1
        if len(self._violation_times) >= self.guard.demote_after and not at_bottom:
            count = len(self._violation_times)
            self._transition(
                now,
                self._mode_index + 1,
                f"{count} violations within "
                f"{self.guard.violation_window_s:.0f}s",
            )
            self._violation_times.clear()
            return
        quiet_since = max(self._last_transition_s, self._last_violation_s)
        if (
            self._mode_index > 0
            and not fresh
            and now - quiet_since >= self.guard.probation_s
        ):
            self._transition(
                now,
                self._mode_index - 1,
                f"violation-free for the {self.guard.probation_s:.0f}s "
                f"probation window",
            )

    def _transition(self, now: float, new_index: int, reason: str) -> None:
        from_mode = self.mode
        to_mode = self.modes[new_index]
        self.mode_seconds[from_mode] += now - self._mode_since
        self._mode_since = now
        self._mode_index = new_index
        self._last_transition_s = now
        transition = GuardTransition(
            time=now, from_mode=from_mode, to_mode=to_mode, reason=reason
        )
        self.transitions.append(transition)
        if self.audit is not None:
            self.audit.record(
                GuardTransitionEntry(
                    time=now,
                    controller=self.name,
                    from_mode=from_mode,
                    to_mode=to_mode,
                    reason=reason,
                )
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_guard_transitions_total",
                "Degradation-ladder transitions taken by the controller guard",
            ).inc(from_mode=from_mode, to_mode=to_mode)
        activate = getattr(self.active, "activate", None)
        if activate is not None:
            activate(now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def guard_summary(self) -> GuardSummary:
        # Fold the still-open mode segment in without mutating state, so
        # the summary is correct mid-run and after stop() alike.
        mode_seconds = dict(self.mode_seconds)
        mode_seconds[self.mode] += self.sim.now - self._mode_since
        by_monitor: dict[str, int] = {}
        for violation in self.violations:
            by_monitor[violation.monitor] = (
                by_monitor.get(violation.monitor, 0) + 1
            )
        return GuardSummary(
            modes=self.modes,
            final_mode=self.mode,
            violations_total=len(self.violations),
            violations_by_monitor=tuple(sorted(by_monitor.items())),
            transitions=tuple(self.transitions),
            mode_seconds=tuple(
                (mode, mode_seconds[mode]) for mode in self.modes
            ),
            clamped_actions=self.actuator.clamped_actions,
            enforced_step_downs=self.enforced_step_downs,
        )
