"""Guard configuration: the degradation ladder and its hysteresis knobs.

Kept import-light (only :mod:`repro.errors`) so :mod:`repro.scenario.spec`
can validate a ``guard`` block without pulling in the controller stack.
Every field is a JSON scalar, mirroring :class:`~repro.core.controller.
ControllerConfig`'s spec round-trip contract.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping, Tuple

from repro.errors import ConfigurationError

__all__ = ["GuardConfig", "RUNG_NAMES", "guard_to_spec", "guard_from_spec"]

#: Fallback rungs the ladder may be built from, in no particular order.
#: The primary policy is always rung zero and is not named here.
RUNG_NAMES = ("conserve", "safe")


@dataclass(frozen=True)
class GuardConfig:
    """Knobs for the supervised-controller degradation ladder.

    ``ladder`` is a comma-separated list of fallback rungs walked on
    repeated violations, after the wrapped policy itself; the default
    is the full PowerChief → conserve → safe chain from the issue.
    Demotion fires when ``demote_after`` violations land within
    ``violation_window_s``; promotion retries one rung after
    ``probation_s`` of violation-free operation (measured from the
    later of the last violation and the last transition — the
    hysteresis that stops flapping).
    """

    ladder: str = "conserve,safe"
    demote_after: int = 2
    violation_window_s: float = 75.0
    probation_s: float = 150.0
    osc_window_s: float = 150.0
    osc_max_flips: int = 4
    burn_threshold: float = 2.0
    storm_ticks: int = 3
    conserve_headroom: float = 0.9

    def __post_init__(self) -> None:
        rungs = self.rungs()
        if not rungs:
            raise ConfigurationError("guard ladder must name at least one rung")
        for rung in rungs:
            if rung not in RUNG_NAMES:
                raise ConfigurationError(
                    f"unknown guard ladder rung {rung!r}; "
                    f"valid rungs: {', '.join(RUNG_NAMES)}"
                )
        if len(set(rungs)) != len(rungs):
            raise ConfigurationError(
                f"guard ladder repeats a rung: {self.ladder!r}"
            )
        if self.demote_after < 1:
            raise ConfigurationError(
                f"demote_after must be >= 1, got {self.demote_after}"
            )
        for name in ("violation_window_s", "probation_s", "osc_window_s"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")
        if self.osc_max_flips < 1:
            raise ConfigurationError(
                f"osc_max_flips must be >= 1, got {self.osc_max_flips}"
            )
        if self.burn_threshold <= 0.0:
            raise ConfigurationError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )
        if self.storm_ticks < 1:
            raise ConfigurationError(
                f"storm_ticks must be >= 1, got {self.storm_ticks}"
            )
        if not 0.0 < self.conserve_headroom <= 1.0:
            raise ConfigurationError(
                f"conserve_headroom must be in (0, 1], got "
                f"{self.conserve_headroom}"
            )

    def rungs(self) -> tuple[str, ...]:
        """The fallback rung names, in demotion order."""
        return tuple(
            part.strip() for part in self.ladder.split(",") if part.strip()
        )


_GUARD_FIELDS = frozenset(f.name for f in fields(GuardConfig))


def guard_to_spec(config: GuardConfig) -> Tuple[Tuple[str, Any], ...]:
    """Canonical sorted-items form for embedding in a scenario spec."""
    return tuple(sorted(asdict(config).items()))


def guard_from_spec(
    items: Tuple[Tuple[str, Any], ...] | Mapping[str, Any]
) -> GuardConfig:
    """Rebuild a :class:`GuardConfig` from its spec tuple (or a mapping)."""
    data = dict(items)
    for key in data:
        if key not in _GUARD_FIELDS:
            raise ConfigurationError(f"unknown guard option {key!r}")
    return GuardConfig(**data)
