"""Typed invariant-violation records emitted by the guard monitors.

A :class:`GuardViolation` is the unit the supervision machinery trades
in: monitors emit them, the :class:`~repro.guard.supervisor.
SupervisedController` counts them against its hysteresis window, and
each one is mirrored into the audit log (as a
:class:`~repro.obs.audit.GuardViolationEntry`) and the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["GuardViolation", "GuardTransition"]

#: Severity levels, mild to severe.  Severity is descriptive — every
#: violation counts equally against the degradation-ladder window — but
#: it survives into the audit log for post-hoc triage.
SEVERITIES = ("warning", "critical")


@dataclass(frozen=True)
class GuardViolation:
    """One invariant violated at one control tick.

    ``value`` is the observed quantity and ``limit`` the bound it
    crossed; monitors without a natural scalar pair (e.g. the NaN
    detector) put the offending reading in ``message`` and report a
    representative pair here.
    """

    time: float
    monitor: str
    severity: str
    message: str
    value: float
    limit: float


@dataclass(frozen=True)
class GuardTransition:
    """One degradation-ladder move (demotion or re-promotion)."""

    time: float
    from_mode: str
    to_mode: str
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "from_mode": self.from_mode,
            "to_mode": self.to_mode,
            "reason": self.reason,
        }
