"""Invariant monitors: cheap read-only checks run every control tick.

Each monitor observes the live stack — budget, instances, estimator
windows, the shared action log, the SLO tracker — and returns zero or
more :class:`~repro.guard.violations.GuardViolation`\\ s.  Monitors never
schedule events or mutate state (the observer-purity lint rule covers
``guard/`` exactly as it covers ``obs/``); acting on what they find is
the supervisor's job.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.units import EPSILON_WATTS
from repro.cluster.budget import PowerBudget
from repro.core.actions import (
    ActionRecord,
    FrequencyChangeAction,
    InstanceLaunchAction,
    InstanceWithdrawAction,
)
from repro.guard.violations import GuardViolation
from repro.obs.slo import SloTracker
from repro.service.application import Application
from repro.service.command_center import CommandCenter

__all__ = [
    "GuardMonitor",
    "BudgetCapMonitor",
    "LadderBoundsMonitor",
    "EstimateSanityMonitor",
    "OscillationMonitor",
    "SloStormMonitor",
]


class GuardMonitor:
    """Base class: a named, stateless-or-incremental invariant check."""

    name = "monitor"

    def check(self, now: float) -> List[GuardViolation]:
        raise NotImplementedError


class BudgetCapMonitor(GuardMonitor):
    """Aggregate allocated power must never exceed the budget cap.

    :meth:`PowerBudget.assert_within` already hard-fails on breach after
    every tick; this monitor is the soft counterpart the supervisor uses
    *before* that assert runs, so a misbehaving policy demotes instead
    of crashing the run.
    """

    name = "budget-cap"

    def __init__(self, budget: PowerBudget) -> None:
        self.budget = budget

    def check(self, now: float) -> List[GuardViolation]:
        draw = self.budget.draw()
        cap = self.budget.budget_watts
        if draw <= cap + EPSILON_WATTS:
            return []
        return [
            GuardViolation(
                time=now,
                monitor=self.name,
                severity="critical",
                message=(
                    f"allocated power {draw:.3f} W exceeds the "
                    f"{cap:.3f} W budget cap"
                ),
                value=float(draw),
                limit=float(cap),
            )
        ]


class LadderBoundsMonitor(GuardMonitor):
    """Every running instance's DVFS level must sit inside its ladder."""

    name = "ladder-bounds"

    def __init__(self, application: Application) -> None:
        self.application = application

    def check(self, now: float) -> List[GuardViolation]:
        violations: List[GuardViolation] = []
        for instance in self.application.running_instances():
            ladder = instance.core.ladder
            level = instance.level
            if ladder.min_level <= level <= ladder.max_level:
                continue
            violations.append(
                GuardViolation(
                    time=now,
                    monitor=self.name,
                    severity="critical",
                    message=(
                        f"{instance.name} sits at DVFS level {level}, "
                        f"outside the ladder bounds "
                        f"[{ladder.min_level}, {ladder.max_level}]"
                    ),
                    value=float(level),
                    limit=float(ladder.max_level),
                )
            )
        return violations


class EstimateSanityMonitor(GuardMonitor):
    """Queue and service-time estimates must be finite and non-negative.

    A NaN or negative estimator output poisons every Equation-1/2/3
    computation downstream of it; the policy would silently rank and
    boost on garbage.
    """

    name = "estimate-sanity"

    def __init__(
        self, application: Application, command_center: CommandCenter
    ) -> None:
        self.application = application
        self.command_center = command_center

    def check(self, now: float) -> List[GuardViolation]:
        violations: List[GuardViolation] = []
        for instance in self.application.running_instances():
            readings: Tuple[Tuple[str, float], ...] = (
                ("queue length", float(instance.queue_length)),
                ("avg queuing", float(self.command_center.avg_queuing(instance))),
                ("avg serving", float(self.command_center.avg_serving(instance))),
            )
            for label, value in readings:
                if not math.isnan(value) and value >= 0.0:
                    continue
                described = "NaN" if math.isnan(value) else f"{value:.4f}"
                violations.append(
                    GuardViolation(
                        time=now,
                        monitor=self.name,
                        severity="critical",
                        message=(
                            f"{instance.name} {label} estimate is "
                            f"{described} — must be finite and >= 0"
                        ),
                        value=value,
                        limit=0.0,
                    )
                )
        return violations


class OscillationMonitor(GuardMonitor):
    """Boost/withdraw thrash detector with a windowed flip counter.

    Reads the shared action log incrementally (a cursor, never a copy)
    and classifies each action as a signed move: frequency raises and
    instance launches are ``+1``, frequency drops and withdraws ``-1``,
    keyed by instance (frequency moves) or stage (pool-size moves).  A
    *flip* is two consecutive moves on the same key with opposite sign;
    when one key accumulates ``max_flips`` flips inside ``window_s`` the
    monitor fires and re-arms that key.
    """

    name = "oscillation"

    def __init__(
        self,
        actions: Sequence[ActionRecord],
        window_s: float,
        max_flips: int,
    ) -> None:
        self.actions = actions
        self.window_s = float(window_s)
        self.max_flips = int(max_flips)
        self._cursor = 0
        self._moves: Deque[Tuple[float, str, int]] = deque()

    @staticmethod
    def _classify(action: ActionRecord) -> Optional[Tuple[str, int]]:
        if isinstance(action, FrequencyChangeAction):
            direction = 1 if action.to_level > action.from_level else -1
            return (f"instance:{action.instance_name}", direction)
        if isinstance(action, InstanceLaunchAction):
            return (f"stage:{action.stage_name}", 1)
        if isinstance(action, InstanceWithdrawAction):
            return (f"stage:{action.stage_name}", -1)
        return None

    def check(self, now: float) -> List[GuardViolation]:
        while self._cursor < len(self.actions):
            action = self.actions[self._cursor]
            self._cursor += 1
            move = self._classify(action)
            if move is not None:
                self._moves.append((action.time, move[0], move[1]))
        horizon = now - self.window_s
        while self._moves and self._moves[0][0] < horizon:
            self._moves.popleft()
        flips: Dict[str, int] = {}
        last: Dict[str, int] = {}
        for _, key, direction in self._moves:
            previous = last.get(key)
            if previous is not None and previous != direction:
                flips[key] = flips.get(key, 0) + 1
            last[key] = direction
        violations: List[GuardViolation] = []
        for key in sorted(flips):
            count = flips[key]
            if count < self.max_flips:
                continue
            violations.append(
                GuardViolation(
                    time=now,
                    monitor=self.name,
                    severity="warning",
                    message=(
                        f"{key} flipped boost/withdraw direction {count} "
                        f"times within {self.window_s:.0f}s "
                        f"(threshold {self.max_flips})"
                    ),
                    value=float(count),
                    limit=float(self.max_flips),
                )
            )
            # Re-arm: forget this key's history so one sustained thrash
            # episode reads as one violation per threshold crossing, not
            # one per tick.
            self._moves = deque(m for m in self._moves if m[1] != key)
        return violations


class SloStormMonitor(GuardMonitor):
    """SLO-violation-storm detector on the burn-rate gauge.

    Late-bound to the tracker: the supervisor arms it via
    :meth:`attach` when the stack builder hands an
    :class:`~repro.obs.slo.SloTracker` to the controller.  Fires once
    the windowed error-budget burn rate exceeds ``burn_threshold`` for
    ``storm_ticks`` consecutive ticks, and keeps firing every tick the
    storm persists (sustained storms must keep demotion pressure on and
    hold off re-promotion).
    """

    name = "slo-storm"

    def __init__(self, burn_threshold: float, storm_ticks: int) -> None:
        self.burn_threshold = float(burn_threshold)
        self.storm_ticks = int(storm_ticks)
        self.tracker: Optional[SloTracker] = None
        self._streak = 0

    def attach(self, tracker: SloTracker) -> None:
        self.tracker = tracker

    def check(self, now: float) -> List[GuardViolation]:
        if self.tracker is None:
            return []
        burn = self.tracker.burn_rate(now)
        if burn <= self.burn_threshold:
            self._streak = 0
            return []
        self._streak += 1
        if self._streak < self.storm_ticks:
            return []
        return [
            GuardViolation(
                time=now,
                monitor=self.name,
                severity="warning",
                message=(
                    f"error-budget burn rate {burn:.2f}x above "
                    f"{self.burn_threshold:.2f}x for {self._streak} "
                    f"consecutive ticks"
                ),
                value=float(burn),
                limit=self.burn_threshold,
            )
        ]
