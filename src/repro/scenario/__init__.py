"""The scenario layer: declarative specs and the one staged assembler.

A :class:`ScenarioSpec` is the frozen, JSON-round-trippable description
of one experiment; :class:`StackBuilder` is the *only* place the repo
turns such a description into a live stack (simulator, machine(s),
application(s), budget, command center, controller, loadgen, chaos,
observability), through an explicit ``build → arm → start → run → drain
→ collect`` lifecycle.  The experiment runners, the parallel cell
engine's cache digests, the sharded deployments and the ``repro run
--scenario`` CLI all sit on top of this package.
"""

from repro.scenario.builder import (
    LATENCY_CONTROLLERS,
    SPLITTERS,
    StackBuilder,
    run_scenario,
)
from repro.scenario.results import (
    QosRunResult,
    RunResult,
    ShardResult,
    ShardedRunResult,
)
from repro.scenario.spec import (
    LATENCY_POLICIES,
    QOS_POLICIES,
    SCENARIO_FORMAT_VERSION,
    ScenarioSpec,
    StageAllocation,
    build_trace,
    chaos_to_spec,
    contention_from_spec,
    contention_to_spec,
    controller_from_spec,
    controller_to_spec,
    trace_to_spec,
)

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "LATENCY_POLICIES",
    "QOS_POLICIES",
    "LATENCY_CONTROLLERS",
    "SPLITTERS",
    "ScenarioSpec",
    "StageAllocation",
    "StackBuilder",
    "run_scenario",
    "RunResult",
    "QosRunResult",
    "ShardResult",
    "ShardedRunResult",
    "trace_to_spec",
    "build_trace",
    "contention_to_spec",
    "contention_from_spec",
    "controller_to_spec",
    "controller_from_spec",
    "chaos_to_spec",
]
