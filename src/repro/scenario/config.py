"""Experiment configurations mirroring the paper's Tables 2 and 3.

Table 2 (latency mitigation under a power constraint): Poisson load at
three levels, one instance per stage at 1.8 GHz, a 13.56 W budget, 25 s
adjust interval, 1 s balance threshold, 150 s withdraw interval.

Table 3 (power conservation under a QoS): over-provisioned deployments at
the maximum frequency — Sirius with 4 ASR + 2 IMM + 5 QA instances, a 2 s
QoS and a 10 s adjust interval; Web Search with 1 aggregation + 10 leaf
services, a 250 ms QoS and a 2 s adjust interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.core.controller import ControllerConfig

__all__ = [
    "TABLE2_POWER_BUDGET_WATTS",
    "TABLE2_INITIAL_FREQ_GHZ",
    "TABLE2_CONTROLLER_CONFIG",
    "Table3Setup",
    "TABLE3_SIRIUS",
    "TABLE3_WEBSEARCH",
    "TABLE3_SETUPS",
]

#: Table 2: "Power Budget 13.56 watts" — three instances at 1.8 GHz under
#: the calibrated power model.
TABLE2_POWER_BUDGET_WATTS = 13.56

#: Table 2: "All services are running at medial frequency (1.8GHz)".
TABLE2_INITIAL_FREQ_GHZ = 1.8

#: Table 2: adjust interval 25 s, withdraw interval 150 s.  The paper's
#: balance threshold is 1 s on its testbed's latency scale; our calibrated
#: demands produce a baseline mean end-to-end latency of ~1.3 s (versus
#: multiple seconds on the real Sirius), so the threshold is scaled to
#: 0.25 s to keep the same threshold-to-baseline-latency ratio.  It plays
#: the identical role: skip the interval when the fastest and slowest
#: instances are already balanced, to avoid power-reallocation
#: oscillation (Section 8.1).
TABLE2_CONTROLLER_CONFIG = ControllerConfig(
    adjust_interval_s=25.0,
    balance_threshold_s=0.25,
    withdraw_interval_s=150.0,
)


@dataclass(frozen=True)
class Table3Setup:
    """One application's QoS-mode deployment (a row of Table 3)."""

    app: str
    instances_per_stage: Mapping[str, int]
    qos_target_s: float
    adjust_interval_s: float
    initial_freq_ghz: float = 2.4

    def controller_config(self) -> ControllerConfig:
        """A controller config with this setup's adjust interval."""
        return ControllerConfig(adjust_interval_s=self.adjust_interval_s)


#: Table 3, Sirius column: "4 ASR services, 2 IM services and 5 QA
#: services", QoS 2 s, adjust interval 10 s.
TABLE3_SIRIUS = Table3Setup(
    app="sirius",
    instances_per_stage=MappingProxyType({"ASR": 4, "IMM": 2, "QA": 5}),
    qos_target_s=2.0,
    adjust_interval_s=10.0,
)

#: Table 3, Web Search column: "1 aggregation service and 10 leaf
#: services", QoS 250 ms, adjust interval 2 s.
TABLE3_WEBSEARCH = Table3Setup(
    app="websearch",
    instances_per_stage=MappingProxyType({"LEAF": 10, "AGG": 1}),
    qos_target_s=0.250,
    adjust_interval_s=2.0,
)

#: The Table-3 deployments by application name — what a QoS scenario's
#: ``app`` field resolves through.
TABLE3_SETUPS: Mapping[str, Table3Setup] = MappingProxyType(
    {
        "sirius": TABLE3_SIRIUS,
        "websearch": TABLE3_WEBSEARCH,
    }
)
