"""Timeline samplers for the runtime-behaviour and QoS figures.

:class:`StateSampler` records what Figure 11 plots — the number of
instances per stage and each instance's frequency over time.
:class:`QosSampler` records what Figures 13/14 plot — end-to-end latency
as a fraction of the QoS target and draw as a fraction of peak power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["StageSnapshot", "StateSample", "StateSampler", "QosSample", "QosSampler"]


@dataclass(frozen=True)
class StageSnapshot:
    """One stage's pool at a sampling instant."""

    stage_name: str
    instance_count: int
    #: (instance name, frequency GHz) for every non-withdrawn instance.
    frequencies: tuple[tuple[str, float], ...]
    queue_length: int


@dataclass(frozen=True)
class StateSample:
    """The whole application's pool state at a sampling instant."""

    time: float
    stages: tuple[StageSnapshot, ...]
    total_power_watts: float

    def stage(self, name: str) -> StageSnapshot:
        for snapshot in self.stages:
            if snapshot.stage_name == name:
                return snapshot
        raise KeyError(name)


class StateSampler:
    """Samples per-stage instance counts and frequencies periodically."""

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        sample_interval_s: float = 5.0,
    ) -> None:
        if sample_interval_s <= 0.0:
            raise ConfigurationError(
                f"sample interval must be > 0, got {sample_interval_s}"
            )
        self.application = application
        self.samples: list[StateSample] = []
        self._process = PeriodicProcess(
            sim, sample_interval_s, self._sample, start_delay=0.0, name="state-sampler"
        )

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def _sample(self, now: float) -> None:
        snapshots = []
        for stage in self.application.stages:
            instances = stage.instances
            snapshots.append(
                StageSnapshot(
                    stage_name=stage.name,
                    instance_count=len(instances),
                    frequencies=tuple(
                        (inst.name, inst.frequency_ghz) for inst in instances
                    ),
                    queue_length=stage.total_queue_length(),
                )
            )
        self.samples.append(
            StateSample(
                time=now,
                stages=tuple(snapshots),
                total_power_watts=self.application.total_power(),
            )
        )

    # ------------------------------------------------------------------
    def max_instances(self, stage_name: str) -> int:
        """Largest sampled pool size of a stage across the run."""
        return max(
            (sample.stage(stage_name).instance_count for sample in self.samples),
            default=0,
        )


@dataclass(frozen=True)
class QosSample:
    """One point on a Figure-13/14 timeline."""

    time: float
    #: Windowed average latency / QoS target; None while no queries landed.
    latency_fraction: Optional[float]
    #: Current draw / reference (the over-provisioned deployment's draw).
    power_fraction: float


class QosSampler:
    """Samples latency-vs-target and power-vs-peak fractions periodically."""

    def __init__(
        self,
        sim: Simulator,
        application: Application,
        command_center: CommandCenter,
        qos_target_s: float,
        reference_power_watts: float,
        sample_interval_s: float = 5.0,
    ) -> None:
        if qos_target_s <= 0.0:
            raise ConfigurationError(f"QoS target must be > 0, got {qos_target_s}")
        if reference_power_watts <= 0.0:
            raise ConfigurationError(
                f"reference power must be > 0, got {reference_power_watts}"
            )
        if sample_interval_s <= 0.0:
            raise ConfigurationError(
                f"sample interval must be > 0, got {sample_interval_s}"
            )
        self.application = application
        self.command_center = command_center
        self.qos_target_s = float(qos_target_s)
        self.reference_power_watts = float(reference_power_watts)
        self.samples: list[QosSample] = []
        self._process = PeriodicProcess(
            sim, sample_interval_s, self._sample, start_delay=0.0, name="qos-sampler"
        )

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def _sample(self, now: float) -> None:
        recent = self.command_center.recent_latency_avg()
        fraction = None if recent is None else recent / self.qos_target_s
        self.samples.append(
            QosSample(
                time=now,
                latency_fraction=fraction,
                power_fraction=self.application.total_power()
                / self.reference_power_watts,
            )
        )

    # ------------------------------------------------------------------
    def average_power_fraction(self, since: float = 0.0) -> float:
        """Mean sampled power fraction from ``since`` onward."""
        values = [s.power_fraction for s in self.samples if s.time >= since]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def violation_fraction(self) -> float:
        """Share of samples whose windowed latency exceeded the target."""
        judged = [s for s in self.samples if s.latency_fraction is not None]
        if not judged:
            return 0.0
        violations = sum(1 for s in judged if s.latency_fraction > 1.0)
        return violations / len(judged)
