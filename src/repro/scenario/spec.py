"""The declarative scenario layer: one spec for every way a stack runs.

A :class:`ScenarioSpec` is the single description of one experiment —
application, policy, load trace, duration/drain, seed, budget and
frequency, allocation, controller configuration, contention, chaos plan,
shard count and splitter, observability switches.  It is frozen,
hashable, built from primitives only, and JSON round-trippable, so the
same value serves three masters at once:

* the experiment runners (:mod:`repro.experiments.runner`), which build
  a spec from their keyword arguments and hand it to the
  :class:`~repro.scenario.builder.StackBuilder`;
* the parallel cell engine, whose content-addressed cache keys on
  :meth:`ScenarioSpec.digest`;
* the CLI (``repro run --scenario spec.json``), which loads a spec
  straight from a file and runs it — sharded, chaos-armed, cached.

Everything non-primitive (a live :class:`~repro.workloads.loadgen.LoadTrace`
subclass, a custom contention model, an :class:`~repro.obs.Observability`
bundle) stays out of the spec and travels as a builder override instead.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.cluster.contention import (
    ContentionModel,
    LinearContention,
    NoContention,
)
from repro.core.controller import ControllerConfig
from repro.core.metrics import MetricKind
from repro.faults.plan import FaultPlan
from repro.guard.config import GuardConfig, guard_from_spec, guard_to_spec
from repro.workloads.loadgen import (
    ConstantLoad,
    DiurnalLoad,
    LoadTrace,
    PiecewiseLoad,
)

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "LATENCY_POLICIES",
    "QOS_POLICIES",
    "StageAllocation",
    "ScenarioSpec",
    "trace_to_spec",
    "build_trace",
    "contention_to_spec",
    "contention_from_spec",
    "controller_to_spec",
    "controller_from_spec",
    "chaos_to_spec",
]

#: Bumped whenever the spec's canonical dict layout changes; part of the
#: digest, so a format change can never alias an old cache entry.
SCENARIO_FORMAT_VERSION = 1

#: Latency-mitigation policies by name (Sections 8.2/8.3).
LATENCY_POLICIES = ("static", "freq-boost", "inst-boost", "powerchief")

#: QoS-mode policies by name (Section 8.4).
QOS_POLICIES = ("baseline", "pegasus", "powerchief")

_KINDS = ("latency", "qos")

_TRACE_KINDS = ("constant", "piecewise", "diurnal", "custom")

_CONTENTION_KINDS = ("none", "linear", "custom")

_SPLITTERS = ("round-robin", "least-in-flight")

_OBSERVE_PILLARS = (
    "trace",
    "metrics",
    "audit",
    "attribution",
    "slo",
    "energy",
    "stream",
)

_SCALAR_TYPES = (bool, int, float, str, type(None))

_CONTROLLER_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ControllerConfig)
)

_GUARD_FIELDS = frozenset(f.name for f in dataclasses.fields(GuardConfig))


@dataclass(frozen=True)
class StageAllocation:
    """A fixed (instance count, ladder level) deployment for one stage."""

    count: int
    level: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")


# ----------------------------------------------------------------------
# Trace specs: load traces as primitive tuples
# ----------------------------------------------------------------------
def trace_to_spec(trace: LoadTrace) -> tuple:
    """A load trace as a hashable tuple of primitives.

    Only the built-in trace families are supported; a custom trace class
    has no stable content address and must travel as a live builder
    override instead.
    """
    if isinstance(trace, ConstantLoad):
        return ("constant", trace.rate_qps)
    if isinstance(trace, PiecewiseLoad):
        return ("piecewise", trace.segments)
    if isinstance(trace, DiurnalLoad):
        return (
            "diurnal",
            trace.base_qps,
            trace.amplitude,
            trace.period_s,
            trace.phase_rad,
        )
    raise ConfigurationError(
        f"cannot describe trace {trace!r} as a scenario spec; use a "
        f"constant, piecewise or diurnal trace"
    )


def build_trace(spec: Sequence) -> LoadTrace:
    """Rebuild the load trace a :func:`trace_to_spec` tuple describes."""
    if not spec:
        raise ConfigurationError("empty trace spec")
    kind = spec[0]
    if kind == "constant":
        return ConstantLoad(spec[1])
    if kind == "piecewise":
        return PiecewiseLoad(tuple((start, rate) for start, rate in spec[1]))
    if kind == "diurnal":
        return DiurnalLoad(*spec[1:])
    if kind == "custom":
        raise ConfigurationError(
            "a 'custom' trace spec carries no parameters; pass the live "
            "trace object to the StackBuilder instead"
        )
    raise ConfigurationError(f"unknown trace spec kind {kind!r}")


# ----------------------------------------------------------------------
# Contention specs
# ----------------------------------------------------------------------
def contention_to_spec(model: Optional[ContentionModel]) -> tuple:
    """A contention model as a primitive tuple (``()`` = no model)."""
    if model is None:
        return ()
    if isinstance(model, NoContention):
        return ("none",)
    if isinstance(model, LinearContention):
        return ("linear", model.intensity)
    return ("custom", type(model).__name__)


def contention_from_spec(spec: Sequence) -> Optional[ContentionModel]:
    """Rebuild the contention model a spec tuple describes."""
    if not spec:
        return None
    kind = spec[0]
    if kind == "none":
        return NoContention()
    if kind == "linear":
        return LinearContention(spec[1])
    if kind == "custom":
        raise ConfigurationError(
            "a 'custom' contention spec carries no parameters; pass the "
            "live model to the StackBuilder instead"
        )
    raise ConfigurationError(f"unknown contention spec kind {kind!r}")


# ----------------------------------------------------------------------
# Controller specs
# ----------------------------------------------------------------------
def controller_to_spec(config: ControllerConfig) -> tuple[tuple[str, Any], ...]:
    """A controller config as a sorted tuple of primitive items."""
    payload = dataclasses.asdict(config)
    payload["metric_kind"] = config.metric_kind.value
    return tuple(sorted(payload.items()))


def controller_from_spec(
    spec: Sequence[tuple[str, Any]],
) -> ControllerConfig:
    """Rebuild the :class:`ControllerConfig` a spec tuple describes."""
    payload = dict(spec)
    if "metric_kind" in payload:
        try:
            payload["metric_kind"] = MetricKind(payload["metric_kind"])
        except ValueError:
            known = ", ".join(kind.value for kind in MetricKind)
            raise ConfigurationError(
                f"unknown metric kind {payload['metric_kind']!r} "
                f"(known: {known})"
            ) from None
    return ControllerConfig(**payload)


# ----------------------------------------------------------------------
# Chaos plan references
# ----------------------------------------------------------------------
def chaos_to_spec(
    plan: Union[None, str, FaultPlan, Mapping[str, Any]],
) -> Optional[str]:
    """Canonicalise a chaos reference: a built-in plan name, or a plan.

    Inline plans (a :class:`~repro.faults.plan.FaultPlan` or its dict
    form) are validated and stored as canonical JSON so two specs with
    the same plan always share a digest; built-in names stay names
    because their fault times scale with the scenario duration.
    """
    if plan is None:
        return None
    if isinstance(plan, FaultPlan):
        return _canonical(plan.to_dict())
    if isinstance(plan, Mapping):
        return _canonical(FaultPlan.from_dict(plan).to_dict())
    text = str(plan)
    if text.lstrip().startswith("{"):
        return _canonical(FaultPlan.from_dict(json.loads(text)).to_dict())
    from repro.faults.plan import named_plans

    if text not in named_plans():
        known = ", ".join(named_plans())
        raise ConfigurationError(
            f"unknown chaos plan {text!r} (built-ins: {known}; or give an "
            f"inline plan object)"
        )
    return text


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _deep_tuple(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_deep_tuple(item) for item in value)
    return value


def _deep_list(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_deep_list(item) for item in value]
    return value


def _sorted_items(
    mapping: Union[Mapping[str, Any], Sequence[tuple[str, Any]]],
) -> tuple[tuple[str, Any], ...]:
    items = mapping.items() if isinstance(mapping, Mapping) else mapping
    return tuple(sorted((str(key), value) for key, value in items))


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment scenario, described entirely by primitives.

    Use the :meth:`latency` and :meth:`qos` constructors for the friendly
    API (live traces, allocation mappings, config objects); the raw
    fields hold only hashable primitives so the spec can be a dict key,
    cross a pickle boundary, and digest canonically.
    """

    kind: str
    app: str
    policy: str
    duration_s: float
    seed: int = 1
    #: Trace spec tuple (latency scenarios; ``("custom", ...)`` means a
    #: live trace override is required at build time).
    trace: tuple = ()
    #: Arrival rate (QoS scenarios only).
    rate_qps: float = 0.0
    #: Power budget; ``None`` keeps the Table-2 default.
    budget_watts: Optional[float] = None
    #: Initial DVFS frequency; ``None`` keeps the Table-2 default.
    initial_freq_ghz: Optional[float] = None
    #: ``((stage, count, level), ...)`` or ``None`` for one-per-stage.
    allocation: Optional[tuple[tuple[str, int, int], ...]] = None
    #: Controller-config overrides; ``()`` keeps the Table-2 config.
    controller: tuple[tuple[str, Any], ...] = ()
    #: Guard-config items; ``()`` disables controller supervision, any
    #: non-empty block wraps the policy in a SupervisedController.
    guard: tuple[tuple[str, Any], ...] = ()
    #: Contention spec tuple (``()`` = perfect isolation).
    contention: tuple = ()
    n_cores: int = 16
    sample_interval_s: float = 5.0
    stats_window_s: float = 60.0
    #: Extra simulated time past the last arrival for retries to settle.
    drain_s: float = 0.0
    #: Chaos plan reference: a built-in name or canonical plan JSON.
    chaos: Optional[str] = None
    #: Replica count; > 1 builds a :class:`~repro.scale.ShardedDeployment`.
    shards: int = 1
    splitter: str = "least-in-flight"
    #: Observability pillars to arm: the core trio (trace/metrics/audit)
    #: plus the accounting plane (attribution/slo/energy/stream).
    observe: tuple[str, ...] = ()
    #: Extra scalar keyword options (QoS conserve fractions and the like).
    options: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r} "
                f"(known: {', '.join(_KINDS)})"
            )
        if not self.app:
            raise ConfigurationError("scenario needs a non-empty app")
        policies = LATENCY_POLICIES if self.kind == "latency" else QOS_POLICIES
        if self.policy not in policies:
            raise ConfigurationError(
                f"unknown policy {self.policy!r} (known: {', '.join(policies)})"
            )
        if self.duration_s <= 0.0:
            raise ConfigurationError(
                f"duration must be > 0, got {self.duration_s}"
            )
        if self.drain_s < 0.0:
            raise ConfigurationError(f"drain must be >= 0, got {self.drain_s}")
        if self.n_cores < 1:
            raise ConfigurationError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.sample_interval_s <= 0.0:
            raise ConfigurationError(
                f"sample interval must be > 0, got {self.sample_interval_s}"
            )
        if self.stats_window_s <= 0.0:
            raise ConfigurationError(
                f"stats window must be > 0, got {self.stats_window_s}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.splitter not in _SPLITTERS:
            raise ConfigurationError(
                f"unknown splitter {self.splitter!r} "
                f"(known: {', '.join(_SPLITTERS)})"
            )
        for pillar in self.observe:
            if pillar not in _OBSERVE_PILLARS:
                raise ConfigurationError(
                    f"unknown observability pillar {pillar!r} "
                    f"(known: {', '.join(_OBSERVE_PILLARS)})"
                )
        if "energy" in self.observe:
            if "metrics" not in self.observe:
                raise ConfigurationError(
                    "the 'energy' pillar needs 'metrics' too: power "
                    "telemetry only runs alongside a metrics registry"
                )
            if self.shards > 1:
                raise ConfigurationError(
                    "the 'energy' pillar is not available on sharded "
                    "scenarios (shards sample no power telemetry)"
                )
        if (
            "slo" in self.observe
            and self.kind == "latency"
            and dict(self.options).get("slo_target_s") is None
        ):
            raise ConfigurationError(
                "the 'slo' pillar on a latency scenario needs an "
                "slo_target_s option (qos scenarios default to the "
                "deployment's QoS target)"
            )
        if self.kind == "latency":
            if not self.trace:
                raise ConfigurationError("latency scenario needs a load trace")
            if self.trace[0] not in _TRACE_KINDS:
                raise ConfigurationError(
                    f"unknown trace spec kind {self.trace[0]!r} "
                    f"(known: {', '.join(_TRACE_KINDS)})"
                )
        else:
            if self.rate_qps <= 0.0:
                raise ConfigurationError(
                    f"rate must be > 0, got {self.rate_qps}"
                )
            for name, value in (
                ("trace", self.trace),
                ("budget_watts", self.budget_watts),
                ("initial_freq_ghz", self.initial_freq_ghz),
                ("allocation", self.allocation),
                ("controller", self.controller),
                ("guard", self.guard),
                ("contention", self.contention),
                ("chaos", self.chaos),
            ):
                if value not in ((), None):
                    raise ConfigurationError(
                        f"qos scenarios do not accept {name!r}"
                    )
            if self.shards != 1:
                raise ConfigurationError("qos scenarios cannot be sharded")
            if self.drain_s > 0.0:
                raise ConfigurationError("qos scenarios have no drain window")
        if self.contention and self.contention[0] not in _CONTENTION_KINDS:
            raise ConfigurationError(
                f"unknown contention spec kind {self.contention[0]!r} "
                f"(known: {', '.join(_CONTENTION_KINDS)})"
            )
        if self.allocation is not None:
            for entry in self.allocation:
                if len(entry) != 3:
                    raise ConfigurationError(
                        f"allocation entries are (stage, count, level), "
                        f"got {entry!r}"
                    )
                StageAllocation(count=entry[1], level=entry[2])
        for key, _ in self.controller:
            if key not in _CONTROLLER_FIELDS:
                known = ", ".join(sorted(_CONTROLLER_FIELDS))
                raise ConfigurationError(
                    f"unknown controller option {key!r} (known: {known})"
                )
        for key, _ in self.guard:
            if key not in _GUARD_FIELDS:
                known = ", ".join(sorted(_GUARD_FIELDS))
                raise ConfigurationError(
                    f"unknown guard option {key!r} (known: {known})"
                )
        if self.guard and self.shards != 1:
            raise ConfigurationError(
                "guard supervision is not available on sharded scenarios"
            )
        if self.guard:
            # Full validation (rung names, threshold ranges) up front, so
            # a bad guard block fails at spec time, not at build time.
            guard_from_spec(self.guard)
        for label, items in (
            ("controller", self.controller),
            ("guard", self.guard),
            ("options", self.options),
        ):
            for key, value in items:
                if not isinstance(value, _SCALAR_TYPES):
                    raise ConfigurationError(
                        f"{label} value {key!r} must be a scalar, got "
                        f"{type(value).__name__}"
                    )

    # ------------------------------------------------------------------
    # Friendly constructors
    # ------------------------------------------------------------------
    @classmethod
    def latency(
        cls,
        app: str,
        policy: str,
        trace: Union[LoadTrace, tuple],
        duration_s: float,
        seed: int = 1,
        budget_watts: Optional[float] = None,
        initial_freq_ghz: Optional[float] = None,
        controller: Union[ControllerConfig, Sequence, None] = None,
        guard: Union[GuardConfig, Mapping[str, Any], Sequence, None] = None,
        allocation: Optional[Mapping[str, StageAllocation]] = None,
        contention: Union[ContentionModel, tuple, None] = None,
        chaos: Union[None, str, FaultPlan, Mapping[str, Any]] = None,
        shards: int = 1,
        splitter: str = "least-in-flight",
        observe: Sequence[str] = (),
        n_cores: int = 16,
        sample_interval_s: float = 5.0,
        stats_window_s: float = 60.0,
        drain_s: float = 0.0,
        **options: Any,
    ) -> "ScenarioSpec":
        """A latency-mitigation scenario (Sections 8.2/8.3)."""
        if isinstance(trace, tuple):
            trace_spec = trace
        else:
            try:
                trace_spec = trace_to_spec(trace)
            except ConfigurationError:
                trace_spec = ("custom", type(trace).__name__)
        if isinstance(contention, tuple) or contention is None:
            contention_spec = contention if contention else ()
        else:
            contention_spec = contention_to_spec(contention)
        if controller is None:
            controller_spec: tuple[tuple[str, Any], ...] = ()
        elif isinstance(controller, ControllerConfig):
            controller_spec = controller_to_spec(controller)
        else:
            controller_spec = _sorted_items(controller)
        if guard is None:
            guard_spec: tuple[tuple[str, Any], ...] = ()
        elif isinstance(guard, GuardConfig):
            guard_spec = guard_to_spec(guard)
        else:
            guard_spec = _sorted_items(guard)
        allocation_spec = None
        if allocation is not None:
            allocation_spec = tuple(
                (name, alloc.count, alloc.level)
                for name, alloc in sorted(allocation.items())
            )
        return cls(
            kind="latency",
            app=app,
            policy=policy,
            duration_s=float(duration_s),
            seed=int(seed),
            trace=_deep_tuple(trace_spec),
            budget_watts=None if budget_watts is None else float(budget_watts),
            initial_freq_ghz=(
                None if initial_freq_ghz is None else float(initial_freq_ghz)
            ),
            allocation=allocation_spec,
            controller=controller_spec,
            guard=guard_spec,
            contention=_deep_tuple(contention_spec),
            n_cores=int(n_cores),
            sample_interval_s=float(sample_interval_s),
            stats_window_s=float(stats_window_s),
            drain_s=float(drain_s),
            chaos=chaos_to_spec(chaos),
            shards=int(shards),
            splitter=splitter,
            observe=tuple(observe),
            options=_sorted_items(options),
        )

    @classmethod
    def qos(
        cls,
        app: str,
        policy: str,
        rate_qps: float,
        duration_s: float,
        seed: int = 1,
        observe: Sequence[str] = (),
        n_cores: int = 16,
        sample_interval_s: float = 5.0,
        **options: Any,
    ) -> "ScenarioSpec":
        """A QoS-mode scenario; ``app`` names a Table-3 deployment."""
        return cls(
            kind="qos",
            app=app,
            policy=policy,
            duration_s=float(duration_s),
            seed=int(seed),
            rate_qps=float(rate_qps),
            n_cores=int(n_cores),
            sample_interval_s=float(sample_interval_s),
            observe=tuple(observe),
            options=_sorted_items(options),
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Short human-readable identity for progress and reports."""
        sharding = f" x{self.shards}" if self.shards > 1 else ""
        return f"{self.kind}:{self.app}/{self.policy}{sharding} seed={self.seed}"

    def allocation_mapping(self) -> Optional[dict[str, StageAllocation]]:
        """The allocation as the mapping the builder consumes."""
        if self.allocation is None:
            return None
        return {
            name: StageAllocation(count=count, level=level)
            for name, count, level in self.allocation
        }

    def controller_config(self) -> Optional[ControllerConfig]:
        """The controller config, or ``None`` when the default applies."""
        if not self.controller:
            return None
        return controller_from_spec(self.controller)

    def guard_config(self) -> Optional[GuardConfig]:
        """The guard config, or ``None`` when supervision is disabled.

        Note the asymmetry with :meth:`controller_config`: an empty
        ``guard`` block means *no supervision at all*, so enabling the
        guard with defaults needs at least one explicit key (the CLI and
        the :class:`~repro.guard.GuardConfig` constructor always emit
        the full block).
        """
        if not self.guard:
            return None
        return guard_from_spec(self.guard)

    def chaos_plan(self) -> Optional[FaultPlan]:
        """Materialise the chaos plan (built-in names scale to duration)."""
        if self.chaos is None:
            return None
        if self.chaos.lstrip().startswith("{"):
            return FaultPlan.from_dict(json.loads(self.chaos))
        from repro.faults.plan import load_plan

        return load_plan(self.chaos, self.duration_s)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The spec as a JSON-serialisable dict (the canonical form)."""
        chaos: Union[None, str, dict[str, Any]] = self.chaos
        if isinstance(chaos, str) and chaos.lstrip().startswith("{"):
            chaos = json.loads(chaos)
        return {
            "version": SCENARIO_FORMAT_VERSION,
            "kind": self.kind,
            "app": self.app,
            "policy": self.policy,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "trace": _deep_list(self.trace),
            "rate_qps": self.rate_qps,
            "budget_watts": self.budget_watts,
            "initial_freq_ghz": self.initial_freq_ghz,
            "allocation": _deep_list(self.allocation),
            "controller": dict(self.controller),
            "guard": dict(self.guard),
            "contention": _deep_list(self.contention),
            "n_cores": self.n_cores,
            "sample_interval_s": self.sample_interval_s,
            "stats_window_s": self.stats_window_s,
            "drain_s": self.drain_s,
            "chaos": chaos,
            "shards": self.shards,
            "splitter": self.splitter,
            "observe": list(self.observe),
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from its dict form.

        Unknown keys are an error (a typoed knob must not silently fall
        back to a default); missing keys take their defaults.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"scenario spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        payload = dict(data)
        version = payload.pop("version", SCENARIO_FORMAT_VERSION)
        if version != SCENARIO_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported scenario format version {version!r} "
                f"(this build speaks {SCENARIO_FORMAT_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs: dict[str, Any] = {}
        for key, value in payload.items():
            if key in ("trace", "contention"):
                kwargs[key] = _deep_tuple(value or ())
            elif key == "allocation":
                kwargs[key] = None if value is None else _deep_tuple(value)
            elif key in ("controller", "guard", "options"):
                kwargs[key] = _sorted_items(value or {})
            elif key == "observe":
                kwargs[key] = tuple(value or ())
            elif key == "chaos":
                kwargs[key] = chaos_to_spec(value)
            else:
                kwargs[key] = value
        for required in ("kind", "app", "policy", "duration_s"):
            if required not in kwargs:
                raise ConfigurationError(
                    f"scenario spec needs a {required!r} key"
                )
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as JSON; canonical (sorted, compact) when unindented."""
        if indent is None:
            return _canonical(self.to_dict())
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ConfigurationError(
                f"scenario spec is not valid JSON: {error}"
            ) from error
        return cls.from_dict(data)

    def digest(self) -> str:
        """Stable SHA-256 content address of this scenario.

        Two specs share a digest exactly when their canonical dict forms
        match under the same :data:`SCENARIO_FORMAT_VERSION`; this is the
        key the content-addressed result cache files cells under.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()
