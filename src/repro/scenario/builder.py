"""The staged stack builder: the only place an experiment is assembled.

:class:`StackBuilder` turns a :class:`~repro.scenario.spec.ScenarioSpec`
into a running stack through an explicit lifecycle::

    build -> arm -> start -> run -> drain -> collect

``build`` constructs the simulator, machine(s), application(s), budget,
command center, controller and load generator; ``arm`` attaches
observability and installs chaos; ``start`` schedules the initial
events; ``run`` advances the simulation through the arrival window;
``drain`` lets retries settle past the last arrival; ``collect``
finalises observability, re-asserts the power budget and returns the
result record.  :meth:`StackBuilder.execute` walks all six phases, and
:func:`run_scenario` is the one-call convenience around it.

The run/drain phases are driven incrementally underneath: once
``start`` has armed the initial events, :meth:`StackBuilder.tick`
advances the stack to any simulated-time deadline an external clock
chooses — the ``reprod`` daemon paces ticks against the wall clock —
and walks the ``run -> drain`` boundary transitions (controller and
sampler stop at the end of the arrival window, chaos teardown at the
end of the drain window) exactly where the batch path does, so a run
split across any sequence of ``tick`` deadlines replays the one-shot
event sequence byte for byte.  ``run``/``drain`` are thin ticks to the
phase boundaries, and :meth:`StackBuilder.abort` releases every live
resource (periodic processes, telemetry listeners, observability
hooks) from any phase when a run must be torn down early.

Anything a spec cannot content-address (a custom load trace, a custom
contention model, a pre-armed chaos harness, an observability bundle the
caller wants to keep) is handed to the builder as a live override.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.faults.chaos import ChaosHarness
    from repro.service.rpc import RpcFabric

from repro.errors import ConfigurationError, ExperimentError
from repro.cluster.budget import PowerBudget
from repro.cluster.contention import ContentionModel
from repro.cluster.dvfs import DvfsActuator
from repro.cluster.frequency import HASWELL_LADDER
from repro.cluster.machine import Machine
from repro.cluster.telemetry import PowerTelemetry
from repro.obs import (
    AttributionCollector,
    AuditLog,
    EnergyAttributor,
    MetricsRegistry,
    Observability,
    SloTracker,
    StreamExporter,
    TraceBuffer,
    bind_simulator,
    unbind_simulator,
)
from repro.core.baselines import (
    FreqBoostController,
    InstBoostController,
    StaticController,
)
from repro.core.conserve import PowerChiefConserveController
from repro.core.controller import BaseController, ControllerConfig, PowerChiefController
from repro.core.pegasus import PegasusController
from repro.guard.supervisor import SupervisedController
from repro.scenario.config import (
    TABLE2_CONTROLLER_CONFIG,
    TABLE2_INITIAL_FREQ_GHZ,
    TABLE2_POWER_BUDGET_WATTS,
    TABLE3_SETUPS,
    Table3Setup,
)
from repro.scenario.sampling import QosSampler, StateSampler
from repro.scale.sharding import (
    LeastInFlightSplitter,
    QuerySplitter,
    RoundRobinSplitter,
    Shard,
    ShardedDeployment,
)
from repro.scenario.results import (
    QosRunResult,
    RunResult,
    ShardResult,
    ShardedRunResult,
)
from repro.scenario.spec import (
    ScenarioSpec,
    StageAllocation,
    build_trace,
    contention_from_spec,
)
from repro.service.application import Application
from repro.service.command_center import CommandCenter
from repro.service.profile import ServiceProfile
from repro.service.stage import StageKind
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.percentile import LatencySummary, summarize
from repro.workloads.loadgen import (
    ConstantLoad,
    LoadTrace,
    PoissonLoadGenerator,
    QueryFactory,
)
from repro.workloads.nlp import nlp_profiles
from repro.workloads.sirius import sirius_profiles
from repro.workloads.websearch import websearch_profiles

__all__ = [
    "StackBuilder",
    "run_scenario",
    "LATENCY_CONTROLLERS",
    "SPLITTERS",
]

_PROFILE_BUILDERS = {
    "sirius": sirius_profiles,
    "nlp": nlp_profiles,
    "websearch": websearch_profiles,
}

_SCATTER_GATHER_STAGES = {"websearch": ("LEAF",)}

#: Latency-policy name -> controller class; the single policy dispatch.
LATENCY_CONTROLLERS: dict[str, type[BaseController]] = {
    "static": StaticController,
    "freq-boost": FreqBoostController,
    "inst-boost": InstBoostController,
    "powerchief": PowerChiefController,
}

#: Splitter name -> factory, for sharded scenarios.
SPLITTERS: dict[str, Callable[[], QuerySplitter]] = {
    "round-robin": RoundRobinSplitter,
    "least-in-flight": LeastInFlightSplitter,
}

_PHASES = ("new", "built", "armed", "started", "ran", "drained", "collected")

#: Phases :meth:`StackBuilder.tick` may be called from: the arrival
#: window ("started") and the drain window ("ran").
_TICKABLE_PHASES = ("started", "ran")


def _profiles_for(app: str) -> list[ServiceProfile]:
    try:
        return _PROFILE_BUILDERS[app]()
    except KeyError:
        known = ", ".join(sorted(_PROFILE_BUILDERS))
        raise ConfigurationError(f"unknown app {app!r} (known: {known})") from None


def _build_app(
    app: str,
    sim: Simulator,
    machine: Machine,
    allocation: Mapping[str, StageAllocation],
    observability: Optional[Observability] = None,
    fabric: Optional["RpcFabric"] = None,
    name: Optional[str] = None,
) -> Application:
    profiles = _profiles_for(app)
    application = Application(
        name if name is not None else app,
        sim,
        machine,
        fabric=fabric,
        observability=observability,
    )
    scatter = _SCATTER_GATHER_STAGES.get(app, ())
    for profile in profiles:
        kind = (
            StageKind.SCATTER_GATHER
            if profile.name in scatter
            else StageKind.PIPELINE
        )
        stage = application.add_stage(profile, kind=kind)
        stage_alloc = allocation.get(profile.name)
        if stage_alloc is None:
            raise ConfigurationError(
                f"no allocation given for stage {profile.name!r}"
            )
        for _ in range(stage_alloc.count):
            stage.launch_instance(stage_alloc.level)
    return application


def _uniform_allocation(
    app: str,
    level: int,
    instances_per_stage: Mapping[str, int] | int,
) -> dict[str, StageAllocation]:
    allocation: dict[str, StageAllocation] = {}
    for profile in _profiles_for(app):
        if isinstance(instances_per_stage, int):
            count = instances_per_stage
        else:
            count = instances_per_stage.get(profile.name, 1)
        allocation[profile.name] = StageAllocation(count=count, level=level)
    return allocation


def _attach_observability(
    sim: Simulator,
    machine: Machine,
    controller: Optional[BaseController],
    observability: Optional[Observability],
    telemetry_interval_s: float,
) -> "tuple[Optional[PowerTelemetry], Callable[[], None]]":
    """Arm every observability hook a run needs; returns a finalizer.

    With ``observability=None`` this is a no-op returning a no-op — the
    standard benchmark path stays exactly as fast as before.
    """
    if observability is None:
        return None, lambda: None
    bind_simulator(lambda: sim.now)
    telemetry: Optional[PowerTelemetry] = None
    hook = None
    if observability.metrics is not None:
        events = observability.metrics.counter(
            "repro_sim_events_total", "Simulation events fired"
        )

        def hook(event) -> None:
            events.inc()

        sim.add_event_hook(hook)
        telemetry = PowerTelemetry(
            sim,
            machine,
            sample_interval_s=telemetry_interval_s,
            registry=observability.metrics,
        )
        telemetry.start()
    if controller is not None and observability.audit is not None:
        controller.attach_audit(observability.audit)
    if controller is not None and observability.slo is not None:
        controller.attach_slo(observability.slo)

    def finalize() -> None:
        if telemetry is not None:
            telemetry.stop()
        if hook is not None:
            sim.remove_event_hook(hook)
        unbind_simulator()

    return telemetry, finalize


def _observability_from_spec(
    spec: ScenarioSpec,
    table3_setup: Optional[Table3Setup] = None,
) -> Optional[Observability]:
    """An observability bundle with exactly the pillars the spec arms.

    The accounting pillars are constructed here but stay unattached; the
    builder's ``arm`` phase binds them to whatever ``build`` produced.
    An SLO pillar resolves its target from the ``slo_target_s`` option
    (mandatory for latency scenarios) or the Table-3 deployment's QoS
    target (the qos default).
    """
    if not spec.observe:
        return None
    observe = set(spec.observe)
    options = dict(spec.options)
    metrics = MetricsRegistry() if "metrics" in observe else None
    slo = None
    if "slo" in observe:
        target = options.get("slo_target_s")
        if target is None:
            setup = table3_setup
            if setup is None:
                try:
                    setup = TABLE3_SETUPS[spec.app]
                except KeyError:
                    known = ", ".join(sorted(TABLE3_SETUPS))
                    raise ConfigurationError(
                        f"unknown QoS deployment {spec.app!r} "
                        f"(known: {known})"
                    ) from None
            target = setup.qos_target_s
        slo = SloTracker(
            target_s=float(target),
            attainment_goal=float(options.get("slo_attainment", 0.99)),
            window_s=float(options.get("slo_window_s", 60.0)),
            registry=metrics,
        )
    stream = None
    if "stream" in observe:
        path = options.get("stream_path")
        stream = StreamExporter(
            path=None if path is None else str(path),
            interval_s=float(options.get("stream_interval_s", 5.0)),
        )
    return Observability(
        tracer=(
            TraceBuffer(max_spans=200_000, registry=metrics)
            if "trace" in observe
            else None
        ),
        metrics=metrics,
        audit=AuditLog(max_entries=100_000) if "audit" in observe else None,
        attribution=(
            AttributionCollector(registry=metrics)
            if "attribution" in observe
            else None
        ),
        slo=slo,
        energy=EnergyAttributor(registry=metrics) if "energy" in observe else None,
        stream=stream,
    )


class _ShardStack:
    """Everything one shard owns beyond its :class:`Shard` record."""

    def __init__(
        self,
        machine: Machine,
        harness: Optional["ChaosHarness"],
        streams: RandomStreams,
    ) -> None:
        self.machine = machine
        self.harness = harness
        self.streams = streams


class StackBuilder:
    """Assemble and drive the stack one scenario describes.

    The phases must be walked in order; calling one out of order raises
    :class:`~repro.errors.ExperimentError`.  :meth:`execute` walks the
    whole lifecycle with the same try/finally discipline the old runners
    had, so observability hooks unwind even when the run raises.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        trace: Optional[LoadTrace] = None,
        contention: Optional[ContentionModel] = None,
        observability: Optional[Observability] = None,
        chaos: Optional["ChaosHarness"] = None,
        table3_setup: Optional[Table3Setup] = None,
    ) -> None:
        self.spec = spec
        self._trace_override = trace
        self._contention_override = contention
        self._observability = (
            observability
            if observability is not None
            else _observability_from_spec(spec, table3_setup)
        )
        self._chaos_override = chaos
        self._table3_override = table3_setup
        self._phase = "new"
        if spec.kind == "qos" and (trace is not None or chaos is not None):
            raise ConfigurationError(
                "qos scenarios take no trace/chaos overrides"
            )
        if chaos is not None and spec.shards > 1:
            raise ConfigurationError(
                "a live chaos harness cannot be shared across shards; "
                "put the plan in the spec's 'chaos' field instead"
            )
        if chaos is not None and spec.chaos is not None:
            raise ConfigurationError(
                "give the chaos plan either in the spec or as a live "
                "harness, not both"
            )
        #: Teardown steps that raised during :meth:`abort`, as
        #: ``(label, exception)`` pairs; abort never raises itself.
        self.abort_errors: list[tuple[str, Exception]] = []
        # Populated by build()/arm():
        self.sim: Optional[Simulator] = None
        self.machine: Optional[Machine] = None
        self.application: Optional[Application] = None
        self.budget: Optional[PowerBudget] = None
        self.command_center: Optional[CommandCenter] = None
        self.controller: Optional[BaseController] = None
        self.generator: Optional[PoissonLoadGenerator] = None
        self.deployment: Optional[ShardedDeployment] = None
        self.chaos: Optional["ChaosHarness"] = None
        self.telemetry: Optional[PowerTelemetry] = None
        self._sampler: Optional[StateSampler] = None
        self._qos_sampler: Optional[QosSampler] = None
        self._setup: Optional[Table3Setup] = None
        self._reference_power = 0.0
        self._streams: Optional[RandomStreams] = None
        self._shard_stacks: list[_ShardStack] = []
        self._finalize_obs: Callable[[], None] = lambda: None

    # ------------------------------------------------------------------
    # Phase bookkeeping
    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        return self._phase

    @property
    def observability(self) -> Optional[Observability]:
        """The bundle this run observes through (None when nothing armed)."""
        return self._observability

    @property
    def end_s(self) -> float:
        """Simulated time at which the drain window closes."""
        return self.spec.duration_s + self.spec.drain_s

    @property
    def finished(self) -> bool:
        """Whether the stack has drained (collect is the only step left)."""
        return self._phase in ("drained", "collected")

    def _require(self, expected: str, to: str) -> None:
        if self._phase != expected:
            raise ExperimentError(
                f"cannot {to} from phase {self._phase!r}; the lifecycle is "
                f"{' -> '.join(_PHASES[1:])}"
            )

    def _advance(self, expected: str, to: str) -> None:
        self._require(expected, to)
        self._phase = to

    # ------------------------------------------------------------------
    # Phase 1: build
    # ------------------------------------------------------------------
    def build(self) -> "StackBuilder":
        """Construct every component the scenario names (no events yet)."""
        self._advance("new", "built")
        if self.spec.kind == "qos":
            self._build_qos()
        elif self.spec.shards > 1:
            self._build_sharded()
        else:
            self._build_latency()
        return self

    def _resolve_trace(self) -> LoadTrace:
        if self._trace_override is not None:
            return self._trace_override
        return build_trace(self.spec.trace)

    def _resolve_contention(self) -> Optional[ContentionModel]:
        if self._contention_override is not None:
            return self._contention_override
        return contention_from_spec(self.spec.contention)

    def _resolve_controller_config(self) -> ControllerConfig:
        config = self.spec.controller_config()
        return config if config is not None else TABLE2_CONTROLLER_CONFIG

    def _build_latency(self) -> None:
        spec = self.spec
        trace = self._resolve_trace()
        contention = self._resolve_contention()
        budget_watts = (
            spec.budget_watts
            if spec.budget_watts is not None
            else TABLE2_POWER_BUDGET_WATTS
        )
        freq = (
            spec.initial_freq_ghz
            if spec.initial_freq_ghz is not None
            else TABLE2_INITIAL_FREQ_GHZ
        )
        sim = Simulator()
        machine = Machine(sim, n_cores=spec.n_cores, contention=contention)
        initial_level = HASWELL_LADDER.level_of(freq)
        allocation = spec.allocation_mapping()
        if allocation is None:
            allocation = _uniform_allocation(spec.app, initial_level, 1)
        # Streams are name-derived (creation order never shifts seeds), so
        # building them early for the chaos fabric is byte-neutral.
        streams = RandomStreams(spec.seed)
        chaos = self._chaos_override
        if chaos is None and spec.chaos is not None:
            from repro.faults.chaos import ChaosHarness

            chaos = ChaosHarness(spec.chaos_plan())
        fabric = None if chaos is None else chaos.build_fabric(sim, streams)
        application = _build_app(
            spec.app,
            sim,
            machine,
            allocation,
            self._observability,
            fabric=fabric,
        )
        budget = PowerBudget(machine, budget_watts)
        budget.assert_within()
        command_center = CommandCenter(
            sim, application, window_s=spec.stats_window_s
        )
        dvfs = DvfsActuator(sim)
        guard = spec.guard_config()
        if guard is not None:
            controller: BaseController = SupervisedController(
                sim,
                application,
                command_center,
                budget,
                dvfs,
                self._resolve_controller_config(),
                policy=LATENCY_CONTROLLERS[spec.policy],
                guard=guard,
            )
        else:
            controller = LATENCY_CONTROLLERS[spec.policy](
                sim,
                application,
                command_center,
                budget,
                dvfs,
                self._resolve_controller_config(),
            )
        factory = QueryFactory(_profiles_for(spec.app), streams)
        generator = PoissonLoadGenerator(
            sim, application, factory, trace, streams, spec.duration_s
        )
        sampler = StateSampler(sim, application, spec.sample_interval_s)
        self.sim = sim
        self.machine = machine
        self.application = application
        self.budget = budget
        self.command_center = command_center
        self.controller = controller
        self.generator = generator
        self.chaos = chaos
        self._sampler = sampler
        self._streams = streams

    def _build_sharded(self) -> None:
        spec = self.spec
        trace = self._resolve_trace()
        budget_watts = (
            spec.budget_watts
            if spec.budget_watts is not None
            else TABLE2_POWER_BUDGET_WATTS
        )
        freq = (
            spec.initial_freq_ghz
            if spec.initial_freq_ghz is not None
            else TABLE2_INITIAL_FREQ_GHZ
        )
        sim = Simulator()
        streams = RandomStreams(spec.seed)
        initial_level = HASWELL_LADDER.level_of(freq)
        allocation = spec.allocation_mapping()
        if allocation is None:
            allocation = _uniform_allocation(spec.app, initial_level, 1)
        config = self._resolve_controller_config()
        observability = self._observability

        def shard_factory(sim: Simulator, index: int) -> Shard:
            # Each shard forks its own stream universe, so shard count
            # never perturbs the shared arrival/demand streams and every
            # shard's faults draw from an independent seeded source.
            shard_streams = streams.fork(f"shard{index}")
            harness: Optional["ChaosHarness"] = None
            if spec.chaos is not None:
                from repro.faults.chaos import ChaosHarness

                harness = ChaosHarness(spec.chaos_plan())
            contention = self._resolve_contention()
            machine = Machine(sim, n_cores=spec.n_cores, contention=contention)
            fabric = (
                None
                if harness is None
                else harness.build_fabric(sim, shard_streams)
            )
            application = _build_app(
                spec.app,
                sim,
                machine,
                allocation,
                observability,
                fabric=fabric,
                name=f"{spec.app}[{index}]",
            )
            budget = PowerBudget(machine, budget_watts)
            budget.assert_within()
            command_center = CommandCenter(
                sim, application, window_s=spec.stats_window_s
            )
            dvfs = DvfsActuator(sim)
            controller = LATENCY_CONTROLLERS[spec.policy](
                sim, application, command_center, budget, dvfs, config
            )
            self._shard_stacks.append(
                _ShardStack(machine, harness, shard_streams)
            )
            return Shard(
                index=index,
                application=application,
                command_center=command_center,
                budget=budget,
                controller=controller,
            )

        deployment = ShardedDeployment(
            sim, spec.shards, shard_factory, splitter=SPLITTERS[spec.splitter]()
        )
        # One shared workload: arrivals and demands are byte-identical
        # regardless of shard count — only the routing differs.
        factory = QueryFactory(_profiles_for(spec.app), streams)
        generator = PoissonLoadGenerator(
            sim, deployment, factory, trace, streams, spec.duration_s
        )
        self.sim = sim
        self.deployment = deployment
        self.generator = generator
        self._streams = streams

    def _build_qos(self) -> None:
        spec = self.spec
        setup = self._table3_override
        if setup is None:
            try:
                setup = TABLE3_SETUPS[spec.app]
            except KeyError:
                known = ", ".join(sorted(TABLE3_SETUPS))
                raise ConfigurationError(
                    f"unknown QoS deployment {spec.app!r} (known: {known})"
                ) from None
        options = dict(spec.options)
        unknown = sorted(
            set(options)
            - {
                "hold_fraction",
                "conserve_fraction",
                "guard_fraction",
                "e2e_window_s",
                # Accounting-plane knobs, consumed by the observability
                # bundle rather than the controller.
                "slo_target_s",
                "slo_attainment",
                "slo_window_s",
                "stream_interval_s",
                "stream_path",
            }
        )
        if unknown:
            raise ConfigurationError(
                f"unknown qos options: {', '.join(unknown)}"
            )
        hold_fraction = float(options.get("hold_fraction", 0.85))
        conserve_fraction = float(options.get("conserve_fraction", 0.75))
        guard_fraction = float(options.get("guard_fraction", 0.92))
        e2e_window_s = options.get("e2e_window_s")
        sim = Simulator()
        machine = Machine(sim, n_cores=spec.n_cores)
        initial_level = HASWELL_LADDER.level_of(setup.initial_freq_ghz)
        allocation = _uniform_allocation(
            setup.app, initial_level, dict(setup.instances_per_stage)
        )
        application = _build_app(
            setup.app, sim, machine, allocation, self._observability
        )
        reference_power = application.total_power()
        # QoS mode has no budget ceiling: the machine's peak is the cap.
        budget = PowerBudget(machine, machine.peak_power())
        window = (
            float(e2e_window_s)
            if e2e_window_s is not None
            else max(3.0 * setup.adjust_interval_s, 10.0)
        )
        command_center = CommandCenter(
            sim, application, window_s=window, e2e_window_s=window
        )
        dvfs = DvfsActuator(sim)
        controller: Optional[BaseController] = None
        config = setup.controller_config()
        if spec.policy == "pegasus":
            controller = PegasusController(
                sim,
                application,
                command_center,
                budget,
                dvfs,
                qos_target_s=setup.qos_target_s,
                config=config,
                hold_fraction=hold_fraction,
            )
        elif spec.policy == "powerchief":
            controller = PowerChiefConserveController(
                sim,
                application,
                command_center,
                budget,
                dvfs,
                qos_target_s=setup.qos_target_s,
                config=config,
                conserve_fraction=conserve_fraction,
                guard_fraction=guard_fraction,
            )
        streams = RandomStreams(spec.seed)
        factory = QueryFactory(_profiles_for(setup.app), streams)
        generator = PoissonLoadGenerator(
            sim,
            application,
            factory,
            ConstantLoad(spec.rate_qps),
            streams,
            spec.duration_s,
        )
        sampler = QosSampler(
            sim,
            application,
            command_center,
            qos_target_s=setup.qos_target_s,
            reference_power_watts=reference_power,
            sample_interval_s=spec.sample_interval_s,
        )
        self.sim = sim
        self.machine = machine
        self.application = application
        self.budget = budget
        self.command_center = command_center
        self.controller = controller
        self.generator = generator
        self._qos_sampler = sampler
        self._setup = setup
        self._reference_power = reference_power
        self._streams = streams

    # ------------------------------------------------------------------
    # Phase 2: arm
    # ------------------------------------------------------------------
    def arm(self) -> "StackBuilder":
        """Attach observability hooks and install the chaos subsystem."""
        self._advance("built", "armed")
        assert self.sim is not None
        if self.deployment is not None:
            self._arm_sharded()
            return self
        assert self.machine is not None
        self.telemetry, self._finalize_obs = _attach_observability(
            self.sim,
            self.machine,
            self.controller,
            self._observability,
            self.spec.sample_interval_s,
        )
        self._arm_accounting()
        if self.chaos is not None:
            assert (
                self.application is not None
                and self.controller is not None
                and self.budget is not None
                and self._streams is not None
            )
            self.chaos.install(
                sim=self.sim,
                machine=self.machine,
                application=self.application,
                controller=self.controller,
                budget=self.budget,
                telemetry=self.telemetry,
                streams=self._streams,
                observability=self._observability,
            )
        return self

    def _arm_accounting(self) -> None:
        """Bind the accounting pillars to the single-stack build.

        Collectors subscribe as listeners; the stream exporter hooks the
        simulator; their teardowns are layered onto the observability
        finalizer so :meth:`collect` (and failing runs) unwind them.
        """
        obs = self._observability
        if obs is None:
            return
        assert self.sim is not None and self.application is not None
        sim = self.sim
        application = self.application
        if obs.metrics is not None and application.fabric is not None:
            application.fabric.attach_registry(obs.metrics)
        if obs.attribution is not None:
            obs.attribution.attach(application)
        if obs.slo is not None:
            obs.slo.attach(application)
        closers: list[Callable[[], None]] = []
        if obs.energy is not None:
            if self.telemetry is None:
                raise ConfigurationError(
                    "the energy attributor needs power telemetry; arm the "
                    "'metrics' pillar alongside 'energy'"
                )
            obs.energy.attach(application.stages, self.telemetry)
            closers.append(obs.energy.detach)
        if obs.stream is not None:
            stream = obs.stream
            machine = self.machine
            stream.add_probe(
                "queries",
                lambda: {
                    "submitted": application.submitted,
                    "completed": application.completed,
                    "timed_out": application.timed_out,
                    "in_flight": application.in_flight,
                },
            )
            if machine is not None:
                stream.add_probe("power_watts", machine.total_power)
            stream.add_probe(
                "stages",
                lambda: {
                    stage.name: stage.snapshot()
                    for stage in application.stages
                },
            )
            if obs.slo is not None:
                slo = obs.slo
                stream.add_probe(
                    "slo",
                    lambda: {
                        "attainment": slo.attainment(),
                        "burn_rate": slo.burn_rate(sim.now),
                    },
                )
            stream.attach(sim)
            closers.append(stream.close)
        if closers:
            inner = self._finalize_obs

            def finalize() -> None:
                for close in closers:
                    close()
                inner()

            self._finalize_obs = finalize

    def _arm_sharded(self) -> None:
        assert self.sim is not None and self.deployment is not None
        observability = self._observability
        finalize: Callable[[], None] = lambda: None
        if observability is not None:
            sim = self.sim
            bind_simulator(lambda: sim.now)
            hook = None
            if observability.metrics is not None:
                events = observability.metrics.counter(
                    "repro_sim_events_total", "Simulation events fired"
                )

                def hook(event) -> None:
                    events.inc()

                sim.add_event_hook(hook)
            if observability.audit is not None:
                for shard in self.deployment.shards:
                    if shard.controller is not None:
                        shard.controller.attach_audit(observability.audit)

            def finalize() -> None:
                if hook is not None:
                    sim.remove_event_hook(hook)
                unbind_simulator()

        self._finalize_obs = finalize
        if observability is not None:
            self._arm_accounting_sharded(observability)
        for shard, stack in zip(self.deployment.shards, self._shard_stacks):
            if stack.harness is None:
                continue
            assert shard.controller is not None
            stack.harness.install(
                sim=self.sim,
                machine=stack.machine,
                application=shard.application,
                controller=shard.controller,
                budget=shard.budget,
                telemetry=None,
                streams=stack.streams,
                observability=observability,
            )

    def _arm_accounting_sharded(self, obs: Observability) -> None:
        """Bind the accounting pillars across every shard.

        Attribution and SLO collectors subscribe to all shard
        applications and aggregate across them; the stream exporter
        snapshots deployment-wide totals.  Energy attribution is
        unsupported here — shards sample no power telemetry.
        """
        assert self.sim is not None and self.deployment is not None
        if obs.energy is not None:
            raise ConfigurationError(
                "energy attribution is not available on sharded scenarios"
            )
        deployment = self.deployment
        for shard in deployment.shards:
            if obs.metrics is not None and shard.application.fabric is not None:
                shard.application.fabric.attach_registry(obs.metrics)
            if obs.attribution is not None:
                obs.attribution.attach(shard.application)
            if obs.slo is not None:
                obs.slo.attach(shard.application)
        if obs.stream is None:
            return
        stream = obs.stream
        sim = self.sim
        stream.add_probe(
            "queries",
            lambda: {
                "completed": deployment.completed,
                "per_shard": {
                    str(shard.index): shard.application.completed
                    for shard in deployment.shards
                },
            },
        )
        if obs.slo is not None:
            slo = obs.slo
            stream.add_probe(
                "slo",
                lambda: {
                    "attainment": slo.attainment(),
                    "burn_rate": slo.burn_rate(sim.now),
                },
            )
        stream.attach(sim)
        inner = self._finalize_obs

        def finalize() -> None:
            stream.close()
            inner()

        self._finalize_obs = finalize

    # ------------------------------------------------------------------
    # Phase 3: start
    # ------------------------------------------------------------------
    def start(self) -> "StackBuilder":
        """Schedule the initial events (controllers, samplers, arrivals)."""
        self._advance("armed", "started")
        assert self.generator is not None
        if self.deployment is not None:
            self.deployment.start()
            for stack in self._shard_stacks:
                if stack.harness is not None:
                    stack.harness.start()
        else:
            if self.controller is not None:
                self.controller.start()
            if self._sampler is not None:
                self._sampler.start()
            if self._qos_sampler is not None:
                self._qos_sampler.start()
            if self.chaos is not None:
                self.chaos.start()
        self.generator.start()
        return self

    # ------------------------------------------------------------------
    # Phases 4+5: run / drain — incremental underneath
    # ------------------------------------------------------------------
    def tick(self, until: float) -> "StackBuilder":
        """Advance the stack to simulated time ``until`` (clamped to
        :attr:`end_s`), walking any window boundary it crosses.

        Legal from the arrival window (phase ``started``) and the drain
        window (phase ``ran``); crossing ``duration_s`` stops the
        controller/samplers exactly as :meth:`run` does, and reaching
        :attr:`end_s` performs the chaos teardown exactly as
        :meth:`drain` does — so any sequence of tick deadlines replays
        the batch path's event sequence byte for byte.  A deadline at or
        before the current clock (after clamping) is a no-op, never a
        replay of already-fired events.
        """
        if self._phase not in _TICKABLE_PHASES:
            raise ExperimentError(
                f"cannot tick from phase {self._phase!r}; tick is legal "
                f"from {' and '.join(repr(p) for p in _TICKABLE_PHASES)}"
            )
        assert self.sim is not None
        if until < self.sim.now:
            raise ExperimentError(
                f"cannot tick to t={until}; the stack is already at "
                f"t={self.sim.now}"
            )
        if self._phase == "started":
            self._tick_run_window(min(until, self.spec.duration_s))
        if self._phase == "ran":
            self._tick_drain_window(min(until, self.end_s))
        return self

    def _tick_run_window(self, target: float) -> None:
        """Advance within the arrival window; stop samplers at its end."""
        assert self.sim is not None
        if target > self.sim.now:
            self.sim.run_until(target)
        if self.sim.now >= self.spec.duration_s:
            self._on_arrivals_complete()

    def _tick_drain_window(self, target: float) -> None:
        """Advance within the drain window; tear chaos down at its end.

        The batch path never touches the simulator when the spec has no
        drain window, so this only runs the clock when the target is
        strictly ahead — events scheduled at exactly ``duration_s`` by
        the stop hooks must not fire here.
        """
        assert self.sim is not None
        if target > self.sim.now:
            # The generator stopped at ``duration_s``; the health monitor
            # keeps respawning while retries settle.
            self.sim.run_until(target)
        if self.sim.now >= self.end_s:
            self._on_drain_complete()

    def _on_arrivals_complete(self) -> None:
        """The arrival window closed: stop the controller and samplers
        (arrivals cease; retries may linger through the drain window)."""
        self._advance("started", "ran")
        if self.deployment is not None:
            self.deployment.stop()
        else:
            if self.controller is not None:
                self.controller.stop()
            if self._sampler is not None:
                self._sampler.stop()
            if self._qos_sampler is not None:
                self._qos_sampler.stop()

    def _on_drain_complete(self) -> None:
        """The drain window closed: tear down the chaos subsystem."""
        self._advance("ran", "drained")
        if self.deployment is not None:
            for stack in self._shard_stacks:
                if stack.harness is not None:
                    stack.harness.stop()
        elif self.chaos is not None:
            self.chaos.stop()

    def run(self) -> "StackBuilder":
        """Advance the simulation through the arrival window, then stop
        the controller and samplers (arrivals cease; retries may linger)."""
        self._require("started", "ran")
        self._tick_run_window(self.spec.duration_s)
        return self

    def drain(self) -> "StackBuilder":
        """Let in-flight retries/timeouts settle past the last arrival.

        A no-op when the spec has no drain window, but the phase is still
        walked so chaos teardown has one well-defined home.
        """
        self._require("ran", "drained")
        self._tick_drain_window(self.end_s)
        return self

    # ------------------------------------------------------------------
    # Abort: off-lifecycle teardown
    # ------------------------------------------------------------------
    def abort(self) -> "StackBuilder":
        """Tear the stack down from whatever phase it is in.

        Releases everything live — periodic processes (controller,
        samplers, chaos, shard harnesses), telemetry listeners, stream
        exporters and the simulator-time binding — so a failed or
        cancelled run never strands global observability state.  Legal
        from any phase; a second call (or a call after ``collect``,
        which already finalised) is a no-op.  Teardown is best-effort:
        a step that raises is recorded in :attr:`abort_errors` rather
        than masking whatever error caused the abort.
        """
        if self._phase in ("collected", "aborted"):
            return self

        def safely(label: str, action: Callable[[], None]) -> None:
            try:
                action()
            except Exception as exc:  # noqa: BLE001 - best-effort teardown
                self.abort_errors.append((label, exc))

        if self._phase == "started":
            # Periodic processes are live; stop() is idempotent on all
            # of them, so over-stopping is safe.
            if self.deployment is not None:
                safely("deployment", self.deployment.stop)
            else:
                if self.controller is not None:
                    safely("controller", self.controller.stop)
                if self._sampler is not None:
                    safely("sampler", self._sampler.stop)
                if self._qos_sampler is not None:
                    safely("qos-sampler", self._qos_sampler.stop)
        if self._phase in ("started", "ran"):
            # Chaos outlives the arrival window; stop it from either.
            if self.deployment is not None:
                for index, stack in enumerate(self._shard_stacks):
                    if stack.harness is not None:
                        safely(f"chaos[shard{index}]", stack.harness.stop)
            elif self.chaos is not None:
                safely("chaos", self.chaos.stop)
        # Armed or later: observability hooks/listeners are attached.
        safely("observability", self._finalize_obs)
        self._finalize_obs = lambda: None
        self._phase = "aborted"
        return self

    def status(self) -> dict[str, object]:
        """A JSON-able snapshot of where the stack is — the control-plane
        daemon's ``status`` answer."""
        submitted = (
            self.generator.queries_submitted
            if self.generator is not None
            else 0
        )
        if self.deployment is not None:
            completed = self.deployment.completed
        elif self.application is not None:
            completed = self.application.completed
        else:
            completed = 0
        return {
            "phase": self._phase,
            "app": self.spec.app,
            "policy": self.spec.policy,
            "digest": self.spec.digest(),
            "now_s": self.sim.now if self.sim is not None else 0.0,
            "duration_s": self.spec.duration_s,
            "end_s": self.end_s,
            "finished": self.finished,
            "queries_submitted": submitted,
            "queries_completed": completed,
        }

    # ------------------------------------------------------------------
    # Phase 6: collect
    # ------------------------------------------------------------------
    def collect(self) -> Union[RunResult, QosRunResult, ShardedRunResult]:
        """Finalise observability, re-check budgets, return the result."""
        self._advance("drained", "collected")
        self._finalize_obs()
        if self.spec.kind == "qos":
            return self._collect_qos()
        if self.deployment is not None:
            return self._collect_sharded()
        return self._collect_latency()

    def _summarize_completed(
        self, latencies: list[float], context: str
    ) -> LatencySummary:
        if not latencies:
            raise ExperimentError(
                f"{context}: no queries completed; extend the duration or "
                f"raise the arrival rate"
            )
        return summarize(latencies)

    def _collect_latency(self) -> RunResult:
        spec = self.spec
        assert (
            self.machine is not None
            and self.budget is not None
            and self.command_center is not None
            and self.generator is not None
            and self.application is not None
            and self.controller is not None
            and self._sampler is not None
        )
        self.budget.assert_within()
        energy = self.machine.total_energy()
        return RunResult(
            app=spec.app,
            policy=spec.policy,
            duration_s=spec.duration_s,
            queries_submitted=self.generator.queries_submitted,
            queries_completed=self.application.completed,
            latency=self._summarize_completed(
                self.command_center.all_latencies,
                f"{spec.app}/{spec.policy} latency run",
            ),
            average_power_watts=energy / (spec.duration_s + spec.drain_s),
            actions=tuple(self.controller.actions),
            state_samples=tuple(self._sampler.samples),
        )

    def _collect_sharded(self) -> ShardedRunResult:
        spec = self.spec
        assert self.deployment is not None and self.generator is not None
        self.deployment.assert_budgets()
        total_s = spec.duration_s + spec.drain_s
        shard_results = []
        for shard, stack in zip(self.deployment.shards, self._shard_stacks):
            latencies = shard.command_center.all_latencies
            assert shard.controller is not None
            shard_results.append(
                ShardResult(
                    index=shard.index,
                    queries_completed=shard.application.completed,
                    latency=summarize(latencies) if latencies else None,
                    average_power_watts=stack.machine.total_energy() / total_s,
                    actions=tuple(shard.controller.actions),
                )
            )
        return ShardedRunResult(
            app=spec.app,
            policy=spec.policy,
            duration_s=spec.duration_s,
            n_shards=spec.shards,
            splitter=spec.splitter,
            queries_submitted=self.generator.queries_submitted,
            queries_completed=self.deployment.completed,
            latency=self._summarize_completed(
                self.deployment.all_latencies(),
                f"{spec.app}/{spec.policy} x{spec.shards} sharded run",
            ),
            average_power_watts=sum(
                result.average_power_watts for result in shard_results
            ),
            shards=tuple(shard_results),
        )

    def _collect_qos(self) -> QosRunResult:
        spec = self.spec
        assert (
            self._setup is not None
            and self.command_center is not None
            and self.generator is not None
            and self.application is not None
            and self._qos_sampler is not None
        )
        setup = self._setup
        sampler = self._qos_sampler
        return QosRunResult(
            app=setup.app,
            policy=spec.policy,
            duration_s=spec.duration_s,
            qos_target_s=setup.qos_target_s,
            reference_power_watts=self._reference_power,
            queries_submitted=self.generator.queries_submitted,
            queries_completed=self.application.completed,
            latency=self._summarize_completed(
                self.command_center.all_latencies,
                f"{setup.app}/{spec.policy} QoS run",
            ),
            average_power_fraction=sampler.average_power_fraction(),
            violation_fraction=sampler.violation_fraction(),
            actions=(
                tuple(self.controller.actions)
                if self.controller is not None
                else ()
            ),
            qos_samples=tuple(sampler.samples),
        )

    # ------------------------------------------------------------------
    def execute(self) -> Union[RunResult, QosRunResult, ShardedRunResult]:
        """Walk the whole lifecycle: build, arm, start, run, drain, collect.

        Observability hooks unwind even when the run raises, exactly as
        the pre-scenario runners guaranteed.
        """
        self.build()
        self.arm()
        try:
            self.start()
            self.run()
            self.drain()
        except BaseException:
            self.abort()
            raise
        return self.collect()


def run_scenario(
    spec: ScenarioSpec,
    *,
    trace: Optional[LoadTrace] = None,
    contention: Optional[ContentionModel] = None,
    observability: Optional[Observability] = None,
    chaos: Optional["ChaosHarness"] = None,
    table3_setup: Optional[Table3Setup] = None,
) -> Union[RunResult, QosRunResult, ShardedRunResult]:
    """Build and run the stack one scenario describes, end to end."""
    return StackBuilder(
        spec,
        trace=trace,
        contention=contention,
        observability=observability,
        chaos=chaos,
        table3_setup=table3_setup,
    ).execute()
