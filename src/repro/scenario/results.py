"""Result records every scenario kind collects into.

:class:`RunResult` and :class:`QosRunResult` are the historical records
the experiment runners have always returned (they live here now so the
scenario layer owns them; :mod:`repro.experiments.runner` re-exports them
for compatibility).  :class:`ShardedRunResult` is new with the scenario
layer: the pooled view of a multi-shard latency run plus a
:class:`ShardResult` per replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.actions import ActionRecord
from repro.scenario.sampling import QosSample, StateSample
from repro.util.percentile import LatencySummary

__all__ = ["RunResult", "QosRunResult", "ShardResult", "ShardedRunResult"]


@dataclass
class RunResult:
    """Everything a latency-mitigation run produced."""

    app: str
    policy: str
    duration_s: float
    queries_submitted: int
    queries_completed: int
    latency: LatencySummary
    average_power_watts: float
    actions: tuple[ActionRecord, ...]
    state_samples: tuple[StateSample, ...]

    @property
    def completion_fraction(self) -> float:
        if self.queries_submitted == 0:
            return 0.0
        return self.queries_completed / self.queries_submitted


@dataclass
class QosRunResult:
    """Everything a QoS-mode run produced."""

    app: str
    policy: str
    duration_s: float
    qos_target_s: float
    reference_power_watts: float
    queries_submitted: int
    queries_completed: int
    latency: LatencySummary
    average_power_fraction: float
    violation_fraction: float
    actions: tuple[ActionRecord, ...]
    qos_samples: tuple[QosSample, ...]

    @property
    def power_saving_fraction(self) -> float:
        """1 - average power fraction: the Figure-13/14 headline number."""
        return 1.0 - self.average_power_fraction


@dataclass
class ShardResult:
    """One replica's share of a sharded run.

    ``latency`` is ``None`` when the splitter routed every completed
    query elsewhere (possible for tiny runs with many shards).
    """

    index: int
    queries_completed: int
    latency: Optional[LatencySummary]
    average_power_watts: float
    actions: tuple[ActionRecord, ...]


@dataclass
class ShardedRunResult:
    """The pooled view of a multi-shard latency run.

    ``latency`` summarises completions across *all* shards — the number
    a client of the whole deployment would measure; ``shards`` keeps the
    per-replica breakdown for balance and blast-radius analysis.
    """

    app: str
    policy: str
    duration_s: float
    n_shards: int
    splitter: str
    queries_submitted: int
    queries_completed: int
    latency: LatencySummary
    average_power_watts: float
    shards: tuple[ShardResult, ...]

    @property
    def completion_fraction(self) -> float:
        if self.queries_submitted == 0:
            return 0.0
        return self.queries_completed / self.queries_submitted
