"""Query tracing: per-visit spans and their exporters.

The service/query joint design already stamps enqueue / start / finish
times into each :class:`~repro.service.records.StageRecord`; the tracer
turns those stamps into :class:`Span` records — one per (query, instance)
visit — collected in a bounded in-memory buffer.  Two export formats:

* **JSONL** — one span object per line, trivially greppable and
  schema-checked by the CI smoke step;
* **Chrome trace-event JSON** — loadable by Perfetto (ui.perfetto.dev)
  or ``chrome://tracing``: each stage renders as a process, each
  instance as a thread, and every visit as a ``queue`` slice followed by
  a ``serve`` slice, so a tail query's time is visually attributable at
  a glance.

Tracing is strictly opt-in: instances hold ``tracer=None`` by default
and guard the emit with one ``is not None`` check, so a run without a
tracer pays nothing.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional, Union

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.metrics import MetricsRegistry
    from repro.service.records import StageRecord

logger = logging.getLogger(__name__)

__all__ = [
    "Span",
    "TraceBuffer",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "spans_to_chrome_trace",
    "spans_from_chrome_trace",
]

#: Chrome trace events use microsecond timestamps.
_US = 1e6


@dataclass(frozen=True)
class Span:
    """One query's visit to one service instance, fully timed.

    ``queue_at_arrival`` is the instance's realtime queue length ``L_i``
    the moment the query arrived (before it joined), and
    ``service_level`` the DVFS ladder level the core ran at when serving
    began — together they reconstruct the Equation-1 view the controller
    had of this instance.
    """

    qid: int
    stage: str
    instance_id: int
    instance: str
    enqueue_time: float
    start_time: float
    finish_time: float
    queue_at_arrival: int
    service_level: int
    work: float

    def __post_init__(self) -> None:
        if not self.enqueue_time <= self.start_time <= self.finish_time:
            raise ConfigurationError(
                f"span for query {self.qid} at {self.instance} is not "
                f"ordered: enqueue={self.enqueue_time} start={self.start_time} "
                f"finish={self.finish_time}"
            )

    @property
    def queuing_time(self) -> float:
        return self.start_time - self.enqueue_time

    @property
    def serving_time(self) -> float:
        return self.finish_time - self.start_time

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(**data)


class TraceBuffer:
    """A bounded in-memory span sink.

    Keeps the **earliest** ``max_spans`` spans and counts the overflow —
    the head of a run is where controller behaviour is most interesting,
    and a silent ring buffer would make "trace looks complete" lies
    cheap.  ``dropped`` says exactly how much is missing.
    """

    def __init__(
        self,
        max_spans: int = 200_000,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if max_spans <= 0:
            raise ConfigurationError(f"max_spans must be > 0, got {max_spans}")
        self.max_spans = int(max_spans)
        self._spans: deque[Span] = deque()
        self.dropped = 0
        self.registry = registry

    # ------------------------------------------------------------------
    def emit(self, span: Span) -> None:
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            if self.registry is not None:
                self.registry.counter(
                    "repro_trace_spans_dropped_total",
                    "Spans discarded because the trace buffer was full",
                ).inc()
            return
        self._spans.append(span)

    def emit_record(self, qid: int, work: float, record: "StageRecord") -> None:
        """Build and emit a span from a completed stage record."""
        assert record.start_time is not None and record.finish_time is not None
        self.emit(
            Span(
                qid=qid,
                stage=record.stage_name,
                instance_id=record.instance_id,
                instance=record.instance_name,
                enqueue_time=record.enqueue_time,
                start_time=record.start_time,
                finish_time=record.finish_time,
                queue_at_arrival=record.queue_at_arrival,
                service_level=(
                    record.service_level if record.service_level is not None else -1
                ),
                work=work,
            )
        )

    # ------------------------------------------------------------------
    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def _warn_if_truncated(self, target: Path) -> None:
        if self.dropped:
            logger.warning(
                "trace written to %s is truncated: %d span(s) were dropped "
                "past the %d-span buffer bound",
                target,
                self.dropped,
                self.max_spans,
            )

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.write_text(spans_to_jsonl(self._spans))
        self._warn_if_truncated(target)
        return target

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        trace = spans_to_chrome_trace(self._spans)
        trace["otherData"]["dropped_spans"] = self.dropped
        target.write_text(json.dumps(trace, indent=None))
        self._warn_if_truncated(target)
        return target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceBuffer({len(self._spans)} spans, {self.dropped} dropped)"


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per line (trailing newline included)."""
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> list[Span]:
    spans = []
    for line in text.splitlines():
        if line.strip():
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event format (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def spans_to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans as a Chrome trace-event JSON object.

    Layout: one *process* per stage, one *thread* per instance, and per
    visit a ``queue`` complete event followed by a ``serve`` complete
    event.  The serve event's ``args`` carries the full span, so
    :func:`spans_from_chrome_trace` round-trips losslessly.
    """
    span_list = list(spans)
    stage_pids: dict[str, int] = {}
    instance_tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in span_list:
        if span.stage not in stage_pids:
            pid = len(stage_pids) + 1
            stage_pids[span.stage] = pid
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"stage:{span.stage}"},
                }
            )
        if span.instance not in instance_tids:
            tid = len(instance_tids) + 1
            instance_tids[span.instance] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": stage_pids[span.stage],
                    "tid": tid,
                    "args": {"name": span.instance},
                }
            )
        pid = stage_pids[span.stage]
        tid = instance_tids[span.instance]
        events.append(
            {
                "name": "queue",
                "cat": "queue",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": span.enqueue_time * _US,
                "dur": span.queuing_time * _US,
                "args": {"qid": span.qid, "queue_at_arrival": span.queue_at_arrival},
            }
        )
        events.append(
            {
                "name": f"serve q{span.qid}",
                "cat": "serve",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": span.start_time * _US,
                "dur": span.serving_time * _US,
                "args": {"span": span.to_dict()},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.trace", "span_count": len(span_list)},
    }


def spans_from_chrome_trace(data: dict[str, Any]) -> list[Span]:
    """Reconstruct the span list a :func:`spans_to_chrome_trace` dump encodes."""
    spans: list[Span] = []
    for event in data.get("traceEvents", []):
        if event.get("cat") == "serve" and "span" in event.get("args", {}):
            spans.append(Span.from_dict(event["args"]["span"]))
    return spans
