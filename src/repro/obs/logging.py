"""Shared logging setup: one format, wall time plus simulated time.

Every CLI subcommand calls :func:`setup_logging` once, so all modules
log through the same handler with the same structured line format::

    2026-08-06 12:00:00,123 INFO    repro.cli [sim=184.250s] boosting IMM_1

The simulated-time column is fed by :func:`bind_simulator`: the runner
binds the active :class:`~repro.sim.engine.Simulator` and every record
logged while it is bound carries the simulation clock.  Records logged
outside a run (argument parsing, artifact writing) show ``-``.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional

from repro.errors import ConfigurationError

__all__ = ["setup_logging", "bind_simulator", "unbind_simulator", "LOG_FORMAT"]

LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s [sim=%(simtime)s] %(message)s"

#: The active simulated-clock provider; ``None`` outside a run.
_clock: Optional[Callable[[], float]] = None


def bind_simulator(clock: Callable[[], float]) -> None:
    """Bind a simulated-clock callable (usually ``lambda: sim.now``)."""
    global _clock
    _clock = clock


def unbind_simulator() -> None:
    global _clock
    _clock = None


class _SimTimeFilter(logging.Filter):
    """Injects the simulated time into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "simtime"):
            record.simtime = f"{_clock():.3f}s" if _clock is not None else "-"
        return True


def setup_logging(level: str = "warning", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root of it.

    Idempotent: re-invocation replaces the handler rather than stacking
    a second one, so tests and repeated CLI calls never double-log.
    """
    try:
        numeric = getattr(logging, level.upper())
        if not isinstance(numeric, int):
            raise AttributeError(level)
    except AttributeError:
        known = "debug, info, warning, error, critical"
        raise ConfigurationError(
            f"unknown log level {level!r} (known: {known})"
        ) from None
    logger = logging.getLogger("repro")
    logger.setLevel(numeric)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.addFilter(_SimTimeFilter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger
