"""Observability: tracing, metrics, auditing and the accounting plane.

Core pillars, one facade:

* :mod:`repro.obs.trace` — per-(query, instance) spans in a bounded
  buffer, exportable as JSONL and Chrome trace-event JSON (Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms behind a registry with a Prometheus text exporter;
* :mod:`repro.obs.audit` — every controller decision recorded with the
  Equation-1/2/3 inputs that produced it.

The attribution-and-accounting plane rides on top of them:

* :mod:`repro.obs.attribution` — every completed query's end-to-end
  latency decomposed into queue / service / hop / retry / fault
  components that sum exactly to the measured total;
* :mod:`repro.obs.slo` — windowed SLO attainment and error-budget burn
  against a latency objective;
* :mod:`repro.obs.energy` — the sampled power integral split per stage,
  reconciling with ``PowerTelemetry.energy_joules()``;
* :mod:`repro.obs.stream` — incremental JSONL snapshots on a simulated
  cadence, tail-able while the run is still going.

:class:`Observability` bundles them so runners thread one object.
Every pillar is optional and every producer guards its emit on ``is not
None`` — a run without observability pays a single attribute check per
potential emit point and nothing else.  The accounting pillars are
late-bound: construct them without a simulator and the stack builder's
``arm`` phase attaches them to whatever it built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.attribution import (
    AttributionCollector,
    AttributionReport,
    QueryAttribution,
    attribute_query,
    cross_reference,
)
from repro.obs.audit import (
    AuditEntry,
    AuditLog,
    BoostEntry,
    BottleneckEntry,
    BudgetChangeEntry,
    GuardTransitionEntry,
    GuardViolationEntry,
    InstanceMetricReading,
    PlannedDropReading,
    RecycleEntry,
    SkipEntry,
    SloRetargetEntry,
    WithdrawEntry,
)
from repro.obs.energy import EnergyAttributor
from repro.obs.explain import build_explain_report, render_explain
from repro.obs.logging import bind_simulator, setup_logging, unbind_simulator
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_POWER_BUCKETS_W,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import SloTracker
from repro.obs.stream import StreamExporter
from repro.obs.trace import (
    Span,
    TraceBuffer,
    spans_from_chrome_trace,
    spans_from_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
)

__all__ = [
    "Observability",
    # trace
    "Span",
    "TraceBuffer",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "spans_to_chrome_trace",
    "spans_from_chrome_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_POWER_BUCKETS_W",
    # audit
    "AuditEntry",
    "AuditLog",
    "BottleneckEntry",
    "BoostEntry",
    "RecycleEntry",
    "WithdrawEntry",
    "SkipEntry",
    "GuardViolationEntry",
    "GuardTransitionEntry",
    "BudgetChangeEntry",
    "SloRetargetEntry",
    "InstanceMetricReading",
    "PlannedDropReading",
    # accounting plane
    "AttributionCollector",
    "AttributionReport",
    "QueryAttribution",
    "attribute_query",
    "cross_reference",
    "SloTracker",
    "EnergyAttributor",
    "StreamExporter",
    "build_explain_report",
    "render_explain",
    # logging
    "setup_logging",
    "bind_simulator",
    "unbind_simulator",
]


@dataclass
class Observability:
    """The bundle a runner threads through the system it builds.

    Any pillar may be ``None``; :meth:`enabled` builds the three core
    pillars with bounded defaults.  The accounting pillars (attribution,
    SLO, energy, stream) default off — set the fields before handing the
    bundle to a runner and the stack builder arms them.
    """

    tracer: Optional[TraceBuffer] = None
    metrics: Optional[MetricsRegistry] = None
    audit: Optional[AuditLog] = None
    attribution: Optional[AttributionCollector] = None
    slo: Optional[SloTracker] = None
    energy: Optional[EnergyAttributor] = None
    stream: Optional[StreamExporter] = None

    @classmethod
    def enabled(
        cls,
        max_spans: int = 200_000,
        max_audit_entries: int = 100_000,
    ) -> "Observability":
        metrics = MetricsRegistry()
        return cls(
            tracer=TraceBuffer(max_spans=max_spans, registry=metrics),
            metrics=metrics,
            audit=AuditLog(max_entries=max_audit_entries),
        )

    @property
    def any_enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.audit is not None
            or self.attribution is not None
            or self.slo is not None
            or self.energy is not None
            or self.stream is not None
        )
