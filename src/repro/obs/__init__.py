"""Observability: tracing, metrics and the controller audit log.

Three pillars, one facade:

* :mod:`repro.obs.trace` — per-(query, instance) spans in a bounded
  buffer, exportable as JSONL and Chrome trace-event JSON (Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms behind a registry with a Prometheus text exporter;
* :mod:`repro.obs.audit` — every controller decision recorded with the
  Equation-1/2/3 inputs that produced it.

:class:`Observability` bundles the three so runners thread one object.
Every pillar is optional and every producer guards its emit on ``is not
None`` — a run without observability pays a single attribute check per
potential emit point and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.audit import (
    AuditEntry,
    AuditLog,
    BoostEntry,
    BottleneckEntry,
    InstanceMetricReading,
    PlannedDropReading,
    RecycleEntry,
    SkipEntry,
    WithdrawEntry,
)
from repro.obs.logging import bind_simulator, setup_logging, unbind_simulator
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_POWER_BUCKETS_W,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    TraceBuffer,
    spans_from_chrome_trace,
    spans_from_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
)

__all__ = [
    "Observability",
    # trace
    "Span",
    "TraceBuffer",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "spans_to_chrome_trace",
    "spans_from_chrome_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_POWER_BUCKETS_W",
    # audit
    "AuditEntry",
    "AuditLog",
    "BottleneckEntry",
    "BoostEntry",
    "RecycleEntry",
    "WithdrawEntry",
    "SkipEntry",
    "InstanceMetricReading",
    "PlannedDropReading",
    # logging
    "setup_logging",
    "bind_simulator",
    "unbind_simulator",
]


@dataclass
class Observability:
    """The bundle a runner threads through the system it builds.

    Any pillar may be ``None``; :meth:`enabled` builds all three with
    bounded defaults.
    """

    tracer: Optional[TraceBuffer] = None
    metrics: Optional[MetricsRegistry] = None
    audit: Optional[AuditLog] = None

    @classmethod
    def enabled(
        cls,
        max_spans: int = 200_000,
        max_audit_entries: int = 100_000,
    ) -> "Observability":
        return cls(
            tracer=TraceBuffer(max_spans=max_spans),
            metrics=MetricsRegistry(),
            audit=AuditLog(max_entries=max_audit_entries),
        )

    @property
    def any_enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.audit is not None
        )
