"""Per-query latency attribution and the critical-path roll-up.

PowerChief's whole argument is attribution — Equation 1 identifies
*where* latency accrues so the budget boosts the true bottleneck.  This
module answers the same question per query, after the fact: every
completed query's end-to-end latency is decomposed over the simulated
timeline into five disjoint components that **sum exactly to the
measured total**:

* ``queue``   — waiting in an instance's queue (StageRecord enqueue→start);
* ``service`` — being processed by an instance (StageRecord start→finish);
* ``fault``   — time inside dispatch attempts that settled badly
  (timed-out / crash-requeue / abandoned): work the query paid for and
  lost, invisible in the StageRecords because abandoned jobs discard
  their record;
* ``retry_backoff`` — deliberate gaps the resilience layer inserted
  between a failed attempt settling and the next dispatch (exponential
  backoff, no-instance re-probe delays);
* ``hop``     — everything else: RPC/fabric transit between stages,
  including injected RPC delay and retransmission stalls.

The decomposition is a sweep over the query's ``[arrival, completion]``
window.  Labelled intervals (clipped to the window) partition it into
elementary segments; each segment takes the highest-priority label
present (service > queue > fault > retry_backoff), which makes the
overlapping records of a scatter-gather stage well-defined.  ``hop`` is
the residual, fixed up so the five components sum bit-exactly to
``Query.end_to_end_latency`` — the invariant the test suite pins.

:class:`AttributionCollector` ingests live queries as an
``Application`` completion listener; :func:`cross_reference` checks the
roll-up's per-stage blame against the controller's Equation-1
bottleneck verdicts from the audit log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Span
    from repro.service.query import Query

__all__ = [
    "COMPONENTS",
    "TRANSIT_STAGE",
    "QueryAttribution",
    "AttributionReport",
    "AttributionCollector",
    "CrossReference",
    "attribute_query",
    "attributions_from_spans",
    "cross_reference",
    "report_from_attributions",
]

#: The five components every end-to-end latency decomposes into.
COMPONENTS = ("queue", "service", "fault", "retry_backoff", "hop")

#: Pseudo-stage that owns ``hop`` time (it belongs to no single stage).
TRANSIT_STAGE = "(transit)"

#: Attempt outcomes whose [dispatched, settled] window is lost time.
_FAULT_OUTCOMES = frozenset({"timed-out", "crash-requeue", "abandoned"})

#: Sweep priority: when intervals overlap, the instant belongs to the
#: highest-priority label.  ``hop`` is never an interval — it is the
#: residual of the window.
_PRIORITY = {"service": 3, "queue": 2, "fault": 1, "retry_backoff": 0}


@dataclass(frozen=True)
class QueryAttribution:
    """One query's end-to-end latency, fully decomposed.

    ``components`` maps each of :data:`COMPONENTS` to seconds and sums
    exactly to ``e2e_latency``; ``per_stage`` splits the same seconds by
    stage name, with ``hop`` time booked to :data:`TRANSIT_STAGE`.
    """

    qid: int
    arrival_time: float
    completion_time: float
    e2e_latency: float
    retried: bool
    components: Mapping[str, float]
    per_stage: Mapping[str, Mapping[str, float]]

    @property
    def blame_stage(self) -> str:
        """The stage (or transit) that owns the most attributed time."""
        return max(
            sorted(self.per_stage),
            key=lambda stage: sum(self.per_stage[stage].values()),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "qid": self.qid,
            "arrival_time": self.arrival_time,
            "completion_time": self.completion_time,
            "e2e_latency": self.e2e_latency,
            "retried": self.retried,
            "components": dict(self.components),
            "per_stage": {
                stage: dict(parts) for stage, parts in self.per_stage.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryAttribution":
        return cls(
            qid=data["qid"],
            arrival_time=data["arrival_time"],
            completion_time=data["completion_time"],
            e2e_latency=data["e2e_latency"],
            retried=data["retried"],
            components=dict(data["components"]),
            per_stage={
                stage: dict(parts)
                for stage, parts in data["per_stage"].items()
            },
        )


def _labelled_intervals(query: "Query") -> list[tuple[float, float, str, str]]:
    """Every (start, end, component, stage) interval the query produced."""
    intervals: list[tuple[float, float, str, str]] = []
    for record in query.records:
        if not record.complete:
            continue
        assert record.start_time is not None and record.finish_time is not None
        intervals.append(
            (record.enqueue_time, record.start_time, "queue", record.stage_name)
        )
        intervals.append(
            (record.start_time, record.finish_time, "service", record.stage_name)
        )
    # Attempts: lost windows and the deliberate gaps between them.  The
    # gap after a failed attempt runs to the next dispatch at the same
    # stage (backoff, crash re-place or no-instance re-probe).
    by_stage: dict[str, list] = {}
    for attempt in query.attempts:
        by_stage.setdefault(attempt.stage_name, []).append(attempt)
    for stage_name, attempts in by_stage.items():
        attempts.sort(key=lambda a: (a.dispatched_time, a.attempt))
        dispatch_times = sorted(a.dispatched_time for a in attempts)
        for attempt in attempts:
            settled = attempt.settled_time
            if settled is None:
                continue
            if attempt.outcome in _FAULT_OUTCOMES and settled > attempt.dispatched_time:
                intervals.append(
                    (attempt.dispatched_time, settled, "fault", stage_name)
                )
            if attempt.outcome != "completed":
                # First re-dispatch at this stage after the settle.
                for later in dispatch_times:
                    if later > settled:
                        intervals.append(
                            (settled, later, "retry_backoff", stage_name)
                        )
                        break
    return intervals


def attribute_query(query: "Query") -> QueryAttribution:
    """Decompose one completed query's latency; see the module docstring."""
    if query.arrival_time is None or query.completion_time is None:
        raise ConfigurationError(
            f"query {query.qid} has not completed; nothing to attribute"
        )
    arrival = query.arrival_time
    completion = query.completion_time
    e2e = query.end_to_end_latency
    components = {name: 0.0 for name in COMPONENTS}
    per_stage: dict[str, dict[str, float]] = {}

    def book(stage: str, component: str, seconds: float) -> None:
        components[component] += seconds
        bucket = per_stage.setdefault(stage, {})
        bucket[component] = bucket.get(component, 0.0) + seconds

    # Clip every labelled interval to the query window, then sweep the
    # elementary segments between boundary points: each segment belongs
    # to the highest-priority label covering it.
    clipped = []
    for start, end, label, stage in _labelled_intervals(query):
        start = max(start, arrival)
        end = min(end, completion)
        if end > start:
            clipped.append((start, end, label, stage))
    if clipped:
        bounds = sorted(
            {point for start, end, _, _ in clipped for point in (start, end)}
        )
        for left, right in zip(bounds, bounds[1:]):
            winner: Optional[tuple[str, str]] = None
            rank = -1
            for start, end, label, stage in clipped:
                if start <= left and end >= right and _PRIORITY[label] > rank:
                    winner = (label, stage)
                    rank = _PRIORITY[label]
            if winner is not None:
                book(winner[1], winner[0], right - left)
    # Hop is the residual; a fix-up pass absorbs float-summation noise
    # so the five components sum *exactly* to the measured latency.
    covered = sum(components[name] for name in COMPONENTS if name != "hop")
    components["hop"] = e2e - covered
    for _ in range(4):
        total = sum(components[name] for name in COMPONENTS)
        if total == e2e:
            break
        components["hop"] += e2e - total
    per_stage.setdefault(TRANSIT_STAGE, {})["hop"] = components["hop"]
    return QueryAttribution(
        qid=query.qid,
        arrival_time=arrival,
        completion_time=completion,
        e2e_latency=e2e,
        retried=query.retried,
        components=components,
        per_stage=per_stage,
    )


def attributions_from_spans(spans: Iterable["Span"]) -> list[QueryAttribution]:
    """Approximate per-query attributions from an exported span trace.

    ``repro explain`` falls back to this when a run archived only the
    span trace: queue/service come from the spans, the residual of each
    query's span envelope is booked as ``hop``, and the fault and
    retry components are zero (failed attempts never produced a span).
    The arrival/completion stamps are approximated by the envelope, so
    the sum-to-e2e invariant holds against that envelope.
    """
    by_qid: dict[int, list["Span"]] = {}
    for span in spans:
        by_qid.setdefault(span.qid, []).append(span)
    out = []
    for qid in sorted(by_qid):
        group = by_qid[qid]
        arrival = min(span.enqueue_time for span in group)
        completion = max(span.finish_time for span in group)
        e2e = completion - arrival
        components = {name: 0.0 for name in COMPONENTS}
        per_stage: dict[str, dict[str, float]] = {}
        intervals = []
        for span in group:
            intervals.append(
                (span.enqueue_time, span.start_time, "queue", span.stage)
            )
            intervals.append(
                (span.start_time, span.finish_time, "service", span.stage)
            )
        bounds = sorted(
            {point for start, end, _, _ in intervals for point in (start, end)}
        )
        for left, right in zip(bounds, bounds[1:]):
            winner: Optional[tuple[str, str]] = None
            rank = -1
            for start, end, label, stage in intervals:
                if start <= left and end >= right and _PRIORITY[label] > rank:
                    winner = (label, stage)
                    rank = _PRIORITY[label]
            if winner is not None:
                label, stage = winner
                components[label] += right - left
                bucket = per_stage.setdefault(stage, {})
                bucket[label] = bucket.get(label, 0.0) + (right - left)
        covered = components["queue"] + components["service"]
        components["hop"] = e2e - covered
        for _ in range(4):
            total = sum(components[name] for name in COMPONENTS)
            if total == e2e:
                break
            components["hop"] += e2e - total
        per_stage.setdefault(TRANSIT_STAGE, {})["hop"] = components["hop"]
        out.append(
            QueryAttribution(
                qid=qid,
                arrival_time=arrival,
                completion_time=completion,
                e2e_latency=e2e,
                retried=False,
                components=components,
                per_stage=per_stage,
            )
        )
    return out


@dataclass
class AttributionReport:
    """The roll-up across every attributed query."""

    count: int
    failed: int
    total_e2e: float
    component_totals: dict[str, float]
    stage_totals: dict[str, dict[str, float]]
    blame_counts: dict[str, int]

    def blame_ranking(self) -> list[tuple[str, float]]:
        """Stages by total attributed seconds, heaviest first.

        Ties break alphabetically so two runs of the same seed rank
        identically.
        """
        return sorted(
            (
                (stage, sum(parts.values()))
                for stage, parts in self.stage_totals.items()
            ),
            key=lambda item: (-item[1], item[0]),
        )

    def component_fractions(self) -> dict[str, float]:
        """Each component's share of the total end-to-end time."""
        if self.total_e2e <= 0.0:
            return {name: 0.0 for name in COMPONENTS}
        return {
            name: self.component_totals.get(name, 0.0) / self.total_e2e
            for name in COMPONENTS
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "failed": self.failed,
            "total_e2e": self.total_e2e,
            "component_totals": dict(self.component_totals),
            "stage_totals": {
                stage: dict(parts)
                for stage, parts in self.stage_totals.items()
            },
            "blame_counts": dict(self.blame_counts),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttributionReport":
        return cls(
            count=data["count"],
            failed=data["failed"],
            total_e2e=data["total_e2e"],
            component_totals=dict(data["component_totals"]),
            stage_totals={
                stage: dict(parts)
                for stage, parts in data["stage_totals"].items()
            },
            blame_counts=dict(data["blame_counts"]),
        )


def report_from_attributions(
    attributions: Iterable[QueryAttribution],
    failed: int = 0,
) -> AttributionReport:
    """Roll a list of attributions (e.g. loaded or span-derived) up."""
    count = 0
    total_e2e = 0.0
    component_totals = {name: 0.0 for name in COMPONENTS}
    stage_totals: dict[str, dict[str, float]] = {}
    blame_counts: dict[str, int] = {}
    for attribution in attributions:
        count += 1
        total_e2e += attribution.e2e_latency
        for name, seconds in attribution.components.items():
            component_totals[name] += seconds
        for stage, parts in attribution.per_stage.items():
            bucket = stage_totals.setdefault(stage, {})
            for name, seconds in parts.items():
                bucket[name] = bucket.get(name, 0.0) + seconds
        blame = attribution.blame_stage
        blame_counts[blame] = blame_counts.get(blame, 0) + 1
    return AttributionReport(
        count=count,
        failed=failed,
        total_e2e=total_e2e,
        component_totals=component_totals,
        stage_totals=stage_totals,
        blame_counts=blame_counts,
    )


class AttributionCollector:
    """Attributes queries live, as an application completion listener.

    Bounded like the other pillars: past ``max_queries`` the per-query
    records stop accumulating (counted in ``dropped``) while the
    aggregate roll-up keeps ingesting every query, so the report stays
    exact even on runs far larger than the buffer.
    """

    def __init__(
        self,
        max_queries: int = 200_000,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if max_queries <= 0:
            raise ConfigurationError(
                f"max_queries must be > 0, got {max_queries}"
            )
        self.max_queries = int(max_queries)
        self.registry = registry
        self.attributions: list[QueryAttribution] = []
        self.dropped = 0
        self._failed = 0
        self._count = 0
        self._total_e2e = 0.0
        self._component_totals = {name: 0.0 for name in COMPONENTS}
        self._stage_totals: dict[str, dict[str, float]] = {}
        self._blame_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def attach(self, application: Any) -> None:
        """Subscribe to an application's completions and failures."""
        application.add_completion_listener(self.observe)
        application.add_failure_listener(self.observe_failure)

    def observe(self, query: "Query") -> QueryAttribution:
        """Ingest one completed query."""
        attribution = attribute_query(query)
        self._count += 1
        self._total_e2e += attribution.e2e_latency
        for name, seconds in attribution.components.items():
            self._component_totals[name] += seconds
        for stage, parts in attribution.per_stage.items():
            bucket = self._stage_totals.setdefault(stage, {})
            for name, seconds in parts.items():
                bucket[name] = bucket.get(name, 0.0) + seconds
        blame = attribution.blame_stage
        self._blame_counts[blame] = self._blame_counts.get(blame, 0) + 1
        if len(self.attributions) < self.max_queries:
            self.attributions.append(attribution)
        else:
            self.dropped += 1
        if self.registry is not None:
            counter = self.registry.counter(
                "repro_attributed_seconds_total",
                "End-to-end latency attributed, by component",
            )
            for name, seconds in attribution.components.items():
                if seconds > 0.0:
                    counter.inc(seconds, component=name)
        return attribution

    def observe_failure(self, query: "Query") -> None:
        """Count a terminal failure (no e2e latency to attribute)."""
        self._failed += 1
        if self.registry is not None:
            self.registry.counter(
                "repro_attribution_failures_total",
                "Queries that failed terminally (nothing to attribute)",
            ).inc()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.attributions)

    def report(self) -> AttributionReport:
        return AttributionReport(
            count=self._count,
            failed=self._failed,
            total_e2e=self._total_e2e,
            component_totals=dict(self._component_totals),
            stage_totals={
                stage: dict(parts)
                for stage, parts in self._stage_totals.items()
            },
            blame_counts=dict(self._blame_counts),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttributionCollector({self._count} queries, "
            f"{self._failed} failed)"
        )


@dataclass(frozen=True)
class CrossReference:
    """Attribution blame vs the controller's Equation-1 verdicts.

    ``verdict_counts`` tallies the audit log's bottleneck verdicts by
    *stage* (the audit names an instance; its reading supplies the
    stage); ``agreement`` is the fraction of verdicts that named the
    attribution roll-up's heaviest *service-owning* stage (transit time
    is no controller's fault, so it never competes for blame here).
    """

    verdicts: int
    verdict_counts: Mapping[str, int]
    attribution_blame: Optional[str]
    agreement: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdicts": self.verdicts,
            "verdict_counts": dict(self.verdict_counts),
            "attribution_blame": self.attribution_blame,
            "agreement": self.agreement,
        }


def cross_reference(
    report: AttributionReport,
    entries: Sequence[Any],
) -> CrossReference:
    """Compare the roll-up's blame against the audit's bottleneck calls.

    ``entries`` may be a whole audit log — anything that is not a
    :class:`~repro.obs.audit.BottleneckEntry` is skipped.
    """
    from repro.obs.audit import BottleneckEntry

    verdict_counts: dict[str, int] = {}
    for entry in entries:
        if not isinstance(entry, BottleneckEntry):
            continue
        stage = entry.bottleneck
        for reading in entry.readings:
            if reading.instance == entry.bottleneck:
                stage = reading.stage
                break
        verdict_counts[stage] = verdict_counts.get(stage, 0) + 1
    blame: Optional[str] = None
    for stage, _seconds in report.blame_ranking():
        if stage != TRANSIT_STAGE:
            blame = stage
            break
    total = sum(verdict_counts.values())
    agreement = (
        verdict_counts.get(blame, 0) / total if total and blame else 0.0
    )
    return CrossReference(
        verdicts=total,
        verdict_counts=verdict_counts,
        attribution_blame=blame,
        agreement=agreement,
    )
