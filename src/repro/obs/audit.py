"""The controller decision audit log.

The existing :mod:`repro.core.actions` log says *what* a controller did;
it never says *why*.  The audit log records the inputs of every decision
the PowerChief runtime makes — each bottleneck identification carries the
per-instance Equation-1 terms (``L_i``, ``q_i``, ``s_i`` and the metric
they produce), each boosting choice carries the Equation-2 ``T_inst`` and
Equation-3 ``T_freq`` estimates and which won, each power-recycling step
its planned drops, each withdraw its measured utilisation — so Algorithm
1/2 behaviour is replayable and diffable across runs: dump two runs'
audit JSONL and ``diff`` them.

Like the tracer, the log is opt-in and bounded; controllers hold
``audit=None`` by default and guard every record call.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional, Type, TypeVar, Union

from repro.errors import ConfigurationError

__all__ = [
    "InstanceMetricReading",
    "PlannedDropReading",
    "AuditEntry",
    "BottleneckEntry",
    "BoostEntry",
    "RecycleEntry",
    "WithdrawEntry",
    "SkipEntry",
    "FaultEntry",
    "ResilienceEntry",
    "GuardViolationEntry",
    "GuardTransitionEntry",
    "BudgetChangeEntry",
    "SloRetargetEntry",
    "AuditLog",
]


@dataclass(frozen=True)
class InstanceMetricReading:
    """One instance's Equation-1 evaluation at a decision instant."""

    instance: str
    stage: str
    metric: float
    queue_length: int
    avg_queuing: float
    avg_serving: float


@dataclass(frozen=True)
class PlannedDropReading:
    """One victim's planned frequency drop inside a recycle plan."""

    instance: str
    from_level: int
    to_level: int
    watts_freed: float


@dataclass(frozen=True)
class AuditEntry:
    """Base entry: when it happened and which controller decided."""

    time: float
    controller: str

    #: Discriminator written into every exported dict.
    kind = "entry"

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["kind"] = self.kind
        return data


@dataclass(frozen=True)
class BottleneckEntry(AuditEntry):
    """One Equation-1 ranking pass over every running instance.

    ``readings`` is fast-to-slow (the recycling victim order);
    ``bottleneck`` names the slowest; ``spread`` is what the balance
    threshold gated on.
    """

    readings: tuple[InstanceMetricReading, ...]
    bottleneck: str
    spread: float

    kind = "bottleneck"


@dataclass(frozen=True)
class BoostEntry(AuditEntry):
    """One Algorithm-1 SELECTBOOSTING verdict with its inputs.

    ``t_inst`` / ``t_freq`` are the Equation-2 / Equation-3 expected
    delays (``None`` when the corresponding branch was never priced);
    ``target_level`` follows :class:`~repro.core.boosting.BoostingDecision`
    semantics.
    """

    decision: str
    bottleneck: str
    queue_length: int
    t_inst: Optional[float]
    t_freq: Optional[float]
    target_level: Optional[int]
    planned_drops: tuple[PlannedDropReading, ...]
    recycled_watts: float
    reason: str

    kind = "boost"


@dataclass(frozen=True)
class RecycleEntry(AuditEntry):
    """A recycle plan actually applied (Algorithm 2 drops executed)."""

    needed_watts: float
    recycled_watts: float
    drops: tuple[PlannedDropReading, ...]

    kind = "recycle"


@dataclass(frozen=True)
class WithdrawEntry(AuditEntry):
    """One instance withdrawn by the 20 %-utilisation rule."""

    instance: str
    stage: str
    utilization: float
    redirected_jobs: int

    kind = "withdraw"


@dataclass(frozen=True)
class SkipEntry(AuditEntry):
    """An interval where the controller deliberately did nothing."""

    reason: str

    kind = "skip"


@dataclass(frozen=True)
class FaultEntry(AuditEntry):
    """One fault the injector fired (``controller`` is the injector).

    ``fault`` is the :class:`~repro.faults.plan.FaultKind` value,
    ``target`` the victim (instance name, stage name, ``telemetry`` or
    ``fabric``), ``detail`` a human-readable parameter summary.  The
    determinism acceptance test diffs these across runs.
    """

    fault: str
    target: str
    detail: str

    kind = "fault"


@dataclass(frozen=True)
class ResilienceEntry(AuditEntry):
    """One recovery action taken by the resilience layer.

    ``action`` names the mechanism (``respawn``, ``hang-detected``,
    ``repair``, ...), ``target`` the instance or stage acted on.
    """

    action: str
    target: str
    detail: str

    kind = "resilience"


@dataclass(frozen=True)
class GuardViolationEntry(AuditEntry):
    """One runtime invariant violated under controller supervision.

    ``monitor`` names the invariant monitor that fired (``budget-cap``,
    ``ladder-bounds``, ``estimate-sanity``, ``oscillation``,
    ``slo-storm``), ``value`` the observed quantity and ``limit`` the
    bound it crossed (``NaN``-free; monitors report the offending value
    through ``message`` when it is not a finite scalar).
    """

    monitor: str
    severity: str
    message: str
    value: float
    limit: float

    kind = "guard-violation"


@dataclass(frozen=True)
class GuardTransitionEntry(AuditEntry):
    """One graceful-degradation ladder transition (demotion or re-promotion)."""

    from_mode: str
    to_mode: str
    reason: str

    kind = "guard-transition"


@dataclass(frozen=True)
class BudgetChangeEntry(AuditEntry):
    """One live power-budget adjustment applied through the guard layer.

    ``requested_watts`` is what the operator asked for, ``applied_watts``
    what the guard actually set (clamped to ``floor_watts``, the draw
    achievable with every running instance at the ladder minimum);
    ``step_downs`` counts the enforced frequency drops needed to bring
    the draw under the new cap.  ``source`` names who asked (``ctl``,
    ``daemon``, a test).
    """

    requested_watts: float
    applied_watts: float
    previous_watts: float
    floor_watts: float
    clamped: bool
    step_downs: int
    source: str

    kind = "budget-change"


@dataclass(frozen=True)
class SloRetargetEntry(AuditEntry):
    """One live SLO retarget (the attainment window keeps its history)."""

    previous_target_s: float
    target_s: float
    source: str

    kind = "slo-retarget"


_E = TypeVar("_E", bound=AuditEntry)


class AuditLog:
    """A bounded, append-only log of typed audit entries."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ConfigurationError(f"max_entries must be > 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: list[AuditEntry] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def record(self, entry: AuditEntry) -> None:
        if len(self._entries) >= self.max_entries:
            self.dropped += 1
            return
        self._entries.append(entry)

    @property
    def entries(self) -> tuple[AuditEntry, ...]:
        return tuple(self._entries)

    def of_kind(self, entry_type: Type[_E]) -> list[_E]:
        """All entries of one type, in record order."""
        return [e for e in self._entries if isinstance(e, entry_type)]

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        return [entry.to_dict() for entry in self._entries]

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        lines = [
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            for entry in self.to_dicts()
        ]
        target.write_text("\n".join(lines) + ("\n" if lines else ""))
        return target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AuditLog({len(self._entries)} entries, {self.dropped} dropped)"
